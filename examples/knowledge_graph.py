"""Scholarly knowledge graph: regular path queries and section IV-C pipelines.

Run:  python examples/knowledge_graph.py

Authors *authored* papers that *cites* papers *published_in* venues.  Shows
regular path queries (citation chains of bounded depth), the co-authorship
and author-citation projections, and how the paper's three methods (ignore
labels / extract one relation / path projection) rank different things.
"""

from repro.algorithms import betweenness_centrality, pagerank
from repro.core.projection import (
    extract_relation,
    ignore_labels,
    project_paths,
)
from repro.datasets import scholarly_graph
from repro.engine import Engine


def top(scores, k=5, keep=None):
    items = ((v, s) for v, s in scores.items()
             if keep is None or str(v).startswith(keep))
    return sorted(items, key=lambda kv: -kv[1])[:k]


def main():
    g = scholarly_graph(num_authors=20, num_papers=40, seed=11)
    print("scholarly graph:", g)
    engine = Engine(g, default_max_length=6)

    # ------------------------------------------------------------------
    # Regular path query: papers reachable from paper30 through 1-3 cites.
    # ------------------------------------------------------------------
    chains = engine.query("[paper30, cites, _] . [_, cites, _]{0,2}")
    print("\ncitation chains from paper30 (depth 1-3):", len(chains), "paths")
    print("reachable papers:", sorted(map(str, chains.heads()))[:8], "...")

    # ------------------------------------------------------------------
    # Venue reachability: author -> paper -> venue in one query.
    # ------------------------------------------------------------------
    venues = engine.query("[author3, authored, _] . [_, published_in, _]")
    print("\nauthor3 publishes in:", sorted(map(str, venues.heads())))

    # ------------------------------------------------------------------
    # Section IV-C, method M3: two derived author-author relations.
    # ------------------------------------------------------------------
    authored = g.edges(label="authored")
    cites = g.edges(label="cites")
    inverse_authored = authored.map(lambda p: p.reversed())

    coauthor = project_paths(authored @ inverse_authored,
                             description="co-authorship")
    author_cites = project_paths(authored @ cites @ inverse_authored,
                                 description="author-level citation")
    print("\nco-authorship pairs:", len(coauthor.pairs))
    print("author-citation pairs:", len(author_cites.pairs))

    print("\ninfluential authors (PageRank over author-level citations):")
    for vertex, score in top(pagerank(author_cites.to_digraph()), keep="author"):
        print("  {:<10} {:.4f}".format(str(vertex), score))

    print("\nbridging authors (betweenness over co-authorship):")
    for vertex, score in top(betweenness_centrality(coauthor.to_digraph())):
        print("  {:<10} {:.4f}".format(str(vertex), score))

    # ------------------------------------------------------------------
    # The three-method comparison the paper motivates (E5).
    # ------------------------------------------------------------------
    print("\n--- method comparison ---")
    m1 = pagerank(ignore_labels(g).to_digraph())
    m2 = pagerank(extract_relation(g, "cites").to_digraph())
    m3 = pagerank(author_cites.to_digraph())
    print("M1 ignore-labels top:", [str(v) for v, _ in top(m1, 3)])
    print("M2 cites-only top:   ", [str(v) for v, _ in top(m2, 3)])
    print("M3 path-derived top: ", [str(v) for v, _ in top(m3, 3)])
    print("\nM1 mixes venues/papers/authors into one murky ranking;")
    print("M2 can only rank papers; M3 ranks exactly what was asked for —")
    print("the paper's argument for path-derived projections.")


if __name__ == "__main__":
    main()
