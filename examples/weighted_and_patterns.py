"""The extension layers: semiring weights, label-level RPQs, graph patterns.

Run:  python examples/weighted_and_patterns.py

Three generalizations of the core algebra on the travel and scholarly
graphs:

1. semiring-weighted projections — one framework, four questions
   (reachability / route count / cheapest cost / widest capacity);
2. the Mendelzon-Wood label-level RPQ baseline vs the paper's edge-level
   formulation (they agree, by construction);
3. basic graph patterns (conjunctive queries) joined with path results.
"""

from repro.datasets import scholarly_graph, travel_network
from repro.pattern import BGPQuery, triple
from repro.rpq import lconcat, lift_to_edge_expression, lstar, rpq_paths, sym
from repro.automata import generate_paths
from repro.semiring import (
    BOOLEAN,
    BOTTLENECK,
    COUNTING,
    TROPICAL,
    label_sequence_weights,
)


def edge_cost(e, g):
    return float(g.edge_properties(e.tail, e.label, e.head)["cost"])


def semiring_section():
    print("=" * 70)
    print("1. Semiring-weighted projections (flight then train)")
    print("=" * 70)
    g = travel_network(num_cities=8, seed=3)

    questions = [
        ("reachable at all?", BOOLEAN, None),
        ("how many routes?", COUNTING, None),
        ("cheapest total cost?", TROPICAL, edge_cost),
        ("widest bottleneck?", BOTTLENECK, edge_cost),
    ]
    for question, semiring, weight in questions:
        relation = label_sequence_weights(g, ["flight", "train"],
                                          semiring, weight)
        sample = sorted(relation.entries().items(), key=repr)[:3]
        print("\n  {} ({} semiring)".format(question, semiring.name))
        for (tail, head), value in sample:
            print("    {} -> {}: {}".format(tail, head, value))


def rpq_section():
    print("\n" + "=" * 70)
    print("2. Label-level RPQ (Mendelzon-Wood) vs the edge-level algebra")
    print("=" * 70)
    g = travel_network(num_cities=8, seed=3)
    label_expr = lconcat(sym("flight"), lstar(sym("train")))
    via_rpq = rpq_paths(g, label_expr, max_length=4)
    via_algebra = generate_paths(g, lift_to_edge_expression(label_expr), 4)
    print("\n  flight . train*  — label-DFA product:", len(via_rpq), "paths")
    print("  lifted to [_, flight, _] . [_, train, _]* — edge NFA:",
          len(via_algebra), "paths")
    print("  identical results:", via_rpq == via_algebra)


def pattern_section():
    print("\n" + "=" * 70)
    print("3. Basic graph patterns joined with path queries")
    print("=" * 70)
    g = scholarly_graph(num_authors=12, num_papers=25, seed=11)

    # Conjunctive query: authors with a paper at venue0 that cites something.
    query = BGPQuery([
        triple("?author", "authored", "?paper"),
        triple("?paper", "published_in", "venue0"),
        triple("?paper", "cites", "?cited"),
    ])
    authors = query.select(g, "author")
    print("\n  authors with a citing paper at venue0:",
          [a for (a,) in authors][:6])

    # Join a pattern with a path traversal: for each such author, the
    # 2-step citation neighbourhood of their venue0 papers.
    from repro.core.fluent import Traversal
    rows = query.select(g, "author", "paper")
    reach = {}
    for author, paper in rows:
        heads = Traversal(g).start(paper).out("cites").out("cites").heads()
        if heads:
            reach.setdefault(author, set()).update(heads)
    for author in sorted(reach)[:4]:
        print("  {} reaches depth-2 citations: {}".format(
            author, sorted(map(str, reach[author]))[:4]))


def main():
    semiring_section()
    rpq_section()
    pattern_section()


if __name__ == "__main__":
    main()
