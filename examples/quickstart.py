"""Quickstart: the path algebra in five minutes.

Run:  python examples/quickstart.py

Builds a small multi-relational graph, walks through each section II
operation, a section III traversal, a PathQL query through the engine, and
a section IV-C projection feeding PageRank.
"""

from repro import MultiRelationalGraph, Path, PathSet
from repro.algorithms import pagerank
from repro.engine import Engine


def main():
    # ------------------------------------------------------------------
    # 1. A multi-relational graph: E is a set of (tail, label, head) triples.
    # ------------------------------------------------------------------
    g = MultiRelationalGraph([
        ("marko", "knows", "josh"),
        ("marko", "knows", "peter"),
        ("josh", "created", "gremlin"),
        ("peter", "created", "gremlin"),
        ("josh", "created", "frames"),
        ("gremlin", "depends_on", "blueprints"),
        ("frames", "depends_on", "blueprints"),
    ], name="tinker")
    print("graph:", g)

    # ------------------------------------------------------------------
    # 2. Paths and the core operations (paper section II).
    # ------------------------------------------------------------------
    p = Path.of(("marko", "knows", "josh"), ("josh", "created", "gremlin"))
    print("\npath:", p)
    print("  length      ||a||      =", len(p))
    print("  tail        gamma-(a)  =", p.tail)
    print("  head        gamma+(a)  =", p.head)
    print("  path label  omega'(a)  =", p.label_path)
    print("  joint?      f(a)       =", p.is_joint)

    # Edge sets via the paper's set-builder notation:
    knows = g.edges(label="knows")          # [_, knows, _]
    created = g.edges(label="created")      # [_, created, _]
    print("\n[_, knows, _]   has", len(knows), "edges")
    print("[_, created, _] has", len(created), "edges")

    # The concatenative join: who do marko's acquaintances create?
    fof_creations = knows @ created
    print("\nknows . created paths:")
    for path in fof_creations:
        print("  ", path)

    # The concatenative product allows teleporting (disjoint paths):
    print("\n|knows x created| =", len(knows * created),
          " vs  |knows . created| =", len(fof_creations))

    # ------------------------------------------------------------------
    # 3. A PathQL query through the traversal engine.
    # ------------------------------------------------------------------
    engine = Engine(g)
    result = engine.query("[marko, knows, _] . [_, created, _] . [_, depends_on, _]")
    print("\nPathQL 3-step query ->", len(result), "paths")
    for path in result:
        print("  ", path)
    print("\nEXPLAIN:")
    print(result.explain())

    # ------------------------------------------------------------------
    # 4. Section IV-C: project paths to a single-relational graph and rank.
    # ------------------------------------------------------------------
    projection = engine.project("[_, knows, _] . [_, created, _]",
                                description="acquaintance-created")
    print("\nprojected binary edges:", sorted(projection.pairs))
    ranks = pagerank(projection.to_digraph())
    top = sorted(ranks.items(), key=lambda kv: -kv[1])[:3]
    print("PageRank over the projection:")
    for vertex, score in top:
        print("  {:<12} {:.4f}".format(str(vertex), score))


if __name__ == "__main__":
    main()
