"""Social network analytics with the fluent traversal DSL.

Run:  python examples/social_network.py

The paper's motivating domain (the authors built Gremlin/Neo4j): a
developer community where people *know* each other and *create* software
that *depends_on* software.  Shows friend-of-friend queries, collaborative
recommendation by path counting, and expertise ranking via a projected
single-relational graph.
"""

from repro import Traversal
from repro.algorithms import pagerank, spreading_activation
from repro.core.projection import project_label_sequence, project_paths
from repro.datasets import software_community
from repro.engine import Engine


def main():
    g = software_community(num_people=14, num_projects=10, seed=7)
    print("community graph:", g)
    print("labels:", sorted(map(str, g.labels())))

    # ------------------------------------------------------------------
    # Friend-of-friend: two knows-steps, excluding self and direct friends.
    # ------------------------------------------------------------------
    person = "person0"
    direct = Traversal(g).start(person).out("knows").heads()
    fof = (Traversal(g).start(person)
           .out("knows").out("knows")
           .filter(lambda p: p.head != person and p.head not in direct)
           .heads())
    print("\n{}'s direct acquaintances: {}".format(person, sorted(direct)))
    print("{}'s friend-of-friend suggestions: {}".format(person, sorted(fof)))

    # ------------------------------------------------------------------
    # Project recommendation: knows . created, ranked by witness paths.
    # The more acquaintances created a project, the stronger the signal.
    # ------------------------------------------------------------------
    recommendations = (Traversal(g).start(person)
                       .out("knows").out("created")
                       .head_histogram())
    mine = Traversal(g).start(person).out("created").heads()
    ranked = sorted(((count, project) for project, count in recommendations.items()
                     if project not in mine), reverse=True)
    print("\nproject recommendations for {} (by witness-path count):".format(person))
    for count, project in ranked[:5]:
        print("  {:<12} {} paths".format(str(project), count))

    # ------------------------------------------------------------------
    # Co-creation graph: created . created^-1 relates collaborators
    # (section IV-C method M3), then PageRank finds central developers.
    # ------------------------------------------------------------------
    created = g.edges(label="created")
    co_creation = project_paths(
        created @ created.map(lambda p: p.reversed()),
        description="co-creation")
    ranks = pagerank(co_creation.to_digraph())
    print("\nmost central developers (PageRank over co-creation):")
    for vertex, score in sorted(ranks.items(), key=lambda kv: -kv[1])[:5]:
        print("  {:<12} {:.4f}".format(str(vertex), score))

    # ------------------------------------------------------------------
    # Expertise spreading: energy from person0 through the knows graph.
    # ------------------------------------------------------------------
    knows_graph = project_label_sequence(g, ["knows"]).to_digraph()
    activation = spreading_activation(knows_graph, {person: 1.0},
                                      steps=3, decay=0.7)
    print("\nspreading activation from {} (3 steps, decay 0.7):".format(person))
    for vertex, energy in sorted(activation.items(), key=lambda kv: -kv[1])[:5]:
        print("  {:<12} {:.4f}".format(str(vertex), energy))

    # ------------------------------------------------------------------
    # The same friend-of-friend question through PathQL + the engine.
    # ------------------------------------------------------------------
    engine = Engine(g)
    result = engine.query("[person0, knows, _] . [_, knows, _]")
    print("\nPathQL friend-of-friend: {} paths, strategy={}, {:.4f}s".format(
        len(result), result.strategy, result.elapsed))


if __name__ == "__main__":
    main()
