"""Route queries over a multi-modal travel network with PathQL.

Run:  python examples/travel_planner.py

Cities linked by *flight*, *train* and *bus* edges (with cost properties).
Regular path expressions encode route policies ("one flight then any number
of trains", "no flights at all"), and edge properties turn matched paths
into priced itineraries.
"""

from repro.core.path import Path
from repro.datasets import travel_network
from repro.engine import Engine


def itinerary_cost(graph, path):
    """Sum the cost property along a matched path."""
    return sum(graph.edge_properties(e.tail, e.label, e.head)["cost"]
               for e in path)


def show_routes(graph, title, paths, limit=5):
    priced = sorted((itinerary_cost(graph, p), p) for p in paths)
    print("\n{} ({} routes):".format(title, len(priced)))
    for cost, path in priced[:limit]:
        hops = " -> ".join("{}[{}]".format(e.head, e.label) for e in path)
        print("  ${:<4} {} {}".format(cost, path.tail, hops))


def main():
    g = travel_network(num_cities=9, seed=3)
    print("travel network:", g)
    engine = Engine(g, default_max_length=5)

    # Policy 1: one flight, then any number of trains.
    fly_then_rail = engine.query(
        "[city2, flight, _] . [_, train, _]*", strategy="automaton")
    show_routes(g, "city2: one flight then trains", fly_then_rail.paths)

    # Policy 2: surface-only travel (no flights) from city1 to city5.
    surface = engine.query(
        "([_, train, _] | [_, bus, _]){1,4}", strategy="automaton")
    from_1_to_5 = surface.paths.starting_in({"city1"}).ending_in({"city5"})
    show_routes(g, "city1 -> city5 without flying", from_1_to_5)

    # Policy 3: the recognizer as a compliance checker — does a proposed
    # itinerary satisfy "exactly one flight, at the start"?
    policy = "[_, flight, _] . ([_, train, _] | [_, bus, _])*"
    proposal_good = Path.of(("city0", "flight", "city3"),
                            ("city3", "train", "city4"))
    proposal_bad = Path.of(("city0", "train", "city1"),
                           ("city0", "flight", "city3"))
    print("\npolicy check '{}':".format(policy))
    print("  flight-first itinerary:", engine.recognize(policy, proposal_good))
    print("  train-first itinerary: ", engine.recognize(policy, proposal_bad))

    # Streaming with a limit: the first few matches without full evaluation.
    quick = engine.query("[city0, _, _] . [_, _, _]",
                         strategy="streaming", limit=4)
    show_routes(g, "any 2-hop trips from city0 (first 4 found)", quick.paths,
                limit=4)

    # EXPLAIN output for the planner-curious.
    print("\nEXPLAIN [city2, flight, _] . [_, train, _] . [_, bus, _]:")
    print(engine.explain("[city2, flight, _] . [_, train, _] . [_, bus, _]"))


if __name__ == "__main__":
    main()
