"""Walk through every inline artifact of the paper, printing each result.

Run:  python examples/paper_walkthrough.py

Covers: the section II join example (E1), the section III traversal idioms
on the same graph (E3), the Figure 1 recognizer/generator (E2/E4) including
the four section IV-B stack evaluations, and the section IV-C E_alphabeta
construction (E5).
"""

from repro.automata import Recognizer, StackAutomaton, generate_paths
from repro.core.traversal import (
    complete_traversal,
    destination_traversal,
    labeled_traversal,
    source_traversal,
)
from repro.core.projection import project_label_sequence
from repro.datasets.paper import (
    ALPHA,
    BETA,
    figure1_expression,
    figure1_graph,
    section2_expected_join,
    section2_graph,
    section2_left_operand,
    section2_right_operand,
)


def banner(title):
    print("\n" + "=" * 70)
    print(title)
    print("=" * 70)


def section2():
    banner("Section II - the concatenative join worked example (E1)")
    a = section2_left_operand()
    b = section2_right_operand()
    print("A =", [str(p) for p in a])
    print("B =", [str(p) for p in b])
    joined = a @ b
    print("\nA join B:")
    for path in joined:
        print("  ", path)
    assert joined == section2_expected_join()
    print("\nmatches the paper's four listed paths: OK")


def section3():
    banner("Section III - traversal idioms on the section II graph (E3)")
    g = section2_graph()
    print("complete, n=2:", len(complete_traversal(g, 2)), "paths")
    src = source_traversal(g, {"i"}, 2)
    print("source from {i}, n=2:", [str(p) for p in src])
    dst = destination_traversal(g, {"k"}, 2)
    print("destination to {k}, n=2:", [str(p) for p in dst])
    lab = labeled_traversal(g, [{ALPHA}, {BETA}])
    print("labeled alpha.beta:", [str(p) for p in lab])


def section4ab():
    banner("Section IV-A/B - the Figure 1 automaton (E2/E4)")
    g = figure1_graph()
    expr = figure1_expression()
    print("expression:", expr)

    generated = generate_paths(g, expr, max_length=6)
    print("\ngenerated paths (bound 6):", len(generated))
    for path in sorted(generated, key=lambda p: (len(p), str(p)))[:8]:
        print("  ", path)
    print("   ...")

    recognizer = Recognizer(expr, g)
    member = next(iter(generated))
    from repro.core.path import Path
    decoy = Path.of(("i", BETA, "m"), ("m", ALPHA, "k"))
    print("\nrecognizer on a member:", recognizer.accepts(member))
    print("recognizer on the wrong-first-label decoy:", recognizer.accepts(decoy))

    stack_result = StackAutomaton(expr, g).run(max_length=6)
    print("\npaper-verbatim stack automaton agrees:",
          stack_result == generated)


def section4c():
    banner("Section IV-C - E_alphabeta projection (E5)")
    g = section2_graph()
    projection = project_label_sequence(g, [ALPHA, BETA])
    print("E_ab = union of (gamma-, gamma+) over alpha.beta paths:")
    for pair in sorted(projection.pairs):
        print("  ", pair, " witnesses:", projection.weights[pair])
    print("\nThis binary edge set can now feed any single-relational")
    print("algorithm (see examples/knowledge_graph.py for a full pipeline).")


def main():
    section2()
    section3()
    section4ab()
    section4c()
    print("\nAll paper artifacts reproduced.")


if __name__ == "__main__":
    main()
