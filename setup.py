"""Legacy setup shim: enables editable installs where `wheel` is unavailable."""

from setuptools import setup

setup()
