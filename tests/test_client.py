"""The ``ReproClient`` SDK: backoff policy in vitro, retries in vivo.

Two halves:

* **Scripted-transport tests** — a canned transport replays exact
  ``(status, headers, body)`` sequences (or raises transport errors)
  while a recording sleeper captures every backoff; this pins down the
  retry policy itself: what is retried, for how long, with which delays,
  and how ``Retry-After`` floors them.
* **Live-server tests** — a real ``repro serve`` subprocess (with
  ``REPRO_FAULTS`` arming server-side faults) proves the client rides
  out 429 shedding, 503 degradation and injected connection drops, and
  that non-idempotent calls are genuinely never retried.
"""

import os
import random
import re
import signal
import subprocess
import sys

import pytest

from repro.errors import (
    ClientError,
    RemoteQueryError,
    RetryBudgetExceededError,
)
from repro.graph.graph import MultiRelationalGraph
from repro.service.client import RETRIABLE_STATUSES, ReproClient
from repro.storage import PersistentGraph

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


class ScriptedTransport:
    """Replays a list of responses; an Exception instance is raised."""

    def __init__(self, script):
        self.script = list(script)
        self.requests = []

    def __call__(self, method, path, body):
        self.requests.append((method, path, body))
        step = self.script.pop(0)
        if isinstance(step, Exception):
            raise step
        return step


def ok(payload):
    import json
    return 200, {}, json.dumps(payload).encode()


def err(status, payload=None, retry_after=None):
    import json
    headers = {}
    if retry_after is not None:
        headers["retry-after"] = str(retry_after)
    return status, headers, json.dumps(
        payload or {"error": "injected"}).encode()


def make_client(script, **kwargs):
    slept = []
    transport = ScriptedTransport(script)
    kwargs.setdefault("jitter_seed", 42)
    kwargs.setdefault("backoff_base", 0.1)
    kwargs.setdefault("backoff_cap", 1.0)
    client = ReproClient("http://127.0.0.1:1", token="t",
                         sleeper=slept.append, transport=transport,
                         **kwargs)
    return client, transport, slept


class TestRetryPolicy:
    def test_success_needs_no_retry(self):
        client, transport, slept = make_client(
            [ok({"pairs": [[0, 1]], "count": 1})])
        assert client.query_pairs("g", "[_, a, _]") == {(0, 1)}
        assert slept == [] and client.retries_performed == 0
        method, path, body = transport.requests[0]
        assert (method, path) == ("POST", "/v1/graphs/g/query")

    @pytest.mark.parametrize("status", sorted(RETRIABLE_STATUSES))
    def test_retriable_statuses_are_retried_to_success(self, status):
        client, transport, slept = make_client(
            [err(status), err(status), ok({"pairs": []})])
        assert client.query_pairs("g", "[_, a, _]") == set()
        assert len(slept) == 2 and client.retries_performed == 2

    def test_backoff_grows_exponentially_with_jitter(self):
        client, _, slept = make_client(
            [err(503)] * 4 + [ok({})],
            backoff_base=0.1, backoff_cap=10.0, jitter_seed=7)
        client.query("g", "[_, a, _]")
        # Equal jitter: attempt n sleeps in [base*2^n / 2, base*2^n].
        for attempt, delay in enumerate(slept):
            full = 0.1 * (2 ** attempt)
            assert full / 2 <= delay <= full
        # And the raw (pre-floor) schedule is reproducible from the seed.
        rng = random.Random(7)
        expected = [0.1 * (2 ** n) / 2 * (1 + rng.random())
                    for n in range(4)]
        assert slept == pytest.approx(expected)

    def test_backoff_respects_cap(self):
        client, _, slept = make_client(
            [err(429)] * 5 + [ok({})],
            backoff_base=1.0, backoff_cap=2.0, max_retries=5)
        client.query("g", "[_, a, _]")
        assert all(delay <= 2.0 for delay in slept)

    def test_retry_after_floors_the_backoff(self):
        client, _, slept = make_client(
            [err(429, retry_after=0.7), ok({})], backoff_base=0.01)
        client.query("g", "[_, a, _]")
        assert len(slept) == 1 and slept[0] >= 0.7

    def test_retry_after_in_body_also_floors(self):
        client, _, slept = make_client(
            [err(503, payload={"error": "degraded", "retry_after": 0.4}),
             ok({})], backoff_base=0.01)
        client.query("g", "[_, a, _]")
        assert slept[0] >= 0.4

    def test_non_retriable_status_raises_immediately(self):
        client, transport, slept = make_client(
            [err(400, payload={"error": "bad pathql"})])
        with pytest.raises(RemoteQueryError) as exc:
            client.query("g", "this is not pathql")
        assert exc.value.status == 400
        assert exc.value.payload["error"] == "bad pathql"
        assert slept == [] and not transport.script

    def test_transport_errors_are_retried_for_idempotent_ops(self):
        client, _, slept = make_client(
            [ConnectionResetError("peer reset"), ok({"graphs": ["g"]})])
        assert client.list_graphs() == ["g"]
        assert len(slept) == 1

    def test_budget_exhaustion_carries_the_attempt_trail(self):
        client, _, slept = make_client(
            [err(503), ConnectionResetError("boom"), err(503)],
            max_retries=2)
        with pytest.raises(RetryBudgetExceededError) as exc:
            client.stats("g")
        trail = exc.value.attempts
        assert [kind for kind, _ in trail] == \
            [503, "ConnectionResetError"]
        assert exc.value.last_status == 503
        assert len(slept) == 2   # no sleep after the final failure

    def test_mutate_is_never_retried_on_status(self):
        client, transport, slept = make_client([err(503)])
        with pytest.raises(RemoteQueryError) as exc:
            client.mutate("g", add_edges=[(0, "a", 1)])
        assert exc.value.status == 503
        assert slept == [] and not transport.script

    def test_mutate_is_never_retried_on_transport_error(self):
        client, transport, slept = make_client(
            [ConnectionResetError("mid-flight"), ok({})])
        with pytest.raises(ClientError, match="non-idempotent"):
            client.mutate("g", add_edges=[(0, "a", 1)])
        assert slept == [] and len(transport.requests) == 1

    def test_checkpoint_is_never_retried(self):
        client, _, slept = make_client([err(429)])
        with pytest.raises(RemoteQueryError):
            client.checkpoint("g")
        assert slept == []

    def test_seeded_clients_sleep_identically(self):
        delays = []
        for _ in range(2):
            client, _, slept = make_client(
                [err(503)] * 3 + [ok({})], jitter_seed=99)
            client.query("g", "[_, a, _]")
            delays.append(tuple(slept))
        assert delays[0] == delays[1]

    def test_rejects_non_http_scheme(self):
        with pytest.raises(ClientError):
            ReproClient("ftp://example:21")


@pytest.fixture
def live_server(tmp_path):
    """A real ``repro serve`` subprocess; yields a factory for clients.

    ``REPRO_FAULTS`` (and other server knobs) come from the test via the
    indirect ``request.param`` -> ``(env_faults, extra_args)`` tuple.
    """
    def start(env_faults=None, extra_args=()):
        root = tmp_path / "graphs"
        if not root.exists():
            root.mkdir()
            graph = MultiRelationalGraph(name="demo")
            for i in range(200):
                graph.add_edge(i, "a", (i + 1) % 200)
                graph.add_edge(i, "b", (i * 7 + 3) % 200)
            PersistentGraph.create(str(root / "demo"), graph,
                                   name="demo").close()
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        if env_faults:
            env["REPRO_FAULTS"] = env_faults
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", str(root),
             "--port", "0", "--token", "sdk=tester", "--workers", "2",
             *extra_args],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env)
        procs.append(proc)
        for _ in range(50):
            line = proc.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", line)
            if match:
                return proc, match.group(1), int(match.group(2))
        raise AssertionError("server never announced its endpoint")

    procs = []
    yield start
    for proc in procs:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


def live_client(host, port, **kwargs):
    kwargs.setdefault("max_retries", 6)
    kwargs.setdefault("backoff_base", 0.05)
    kwargs.setdefault("backoff_cap", 1.0)
    kwargs.setdefault("jitter_seed", 11)
    kwargs.setdefault("timeout", 30.0)
    return ReproClient("http://{}:{}".format(host, port), token="sdk",
                       **kwargs)


class TestAgainstLiveServer:
    def test_rides_out_quota_shedding_with_backoff(self, live_server):
        _, host, port = live_server(extra_args=("--quota", "tester=1"))
        client = live_client(host, port)
        # Hold the single quota slot with slow sweeps from threads while
        # the client under test retries its way through the 429s.
        import threading
        stop = threading.Event()
        blocker = live_client(host, port, max_retries=0)
        heavy = {"query": "[_, a, _]* . [_, b, _]* . [_, a, _]",
                 "max_length": 6}

        def hog():
            while not stop.is_set():
                try:
                    blocker.query("demo", heavy["query"],
                                  max_length=heavy["max_length"])
                except (RemoteQueryError, RetryBudgetExceededError,
                        ClientError, OSError):
                    pass

        thread = threading.Thread(target=hog)
        thread.start()
        try:
            answer = client.query_pairs("demo", "[_, b, _]",
                                        sources=[0])
        finally:
            stop.set()
            thread.join()
        assert answer == {(0, 3)}

    def test_degraded_store_503_heals_by_checkpoint(self, live_server):
        # One injected WAL write error: the batch overflow mid-mutation
        # flips the store into read-only degraded mode server-side.
        _, host, port = live_server(env_faults="wal.write:eio:times=1")
        client = live_client(host, port)
        edges = [("u{}".format(i), "a", "v{}".format(i))
                 for i in range(30)]
        with pytest.raises(RemoteQueryError) as exc:
            client.mutate("demo", add_edges=edges)   # never retried
        assert exc.value.status == 503
        assert exc.value.payload["retriable"] is True
        ready, detail = client.ready()
        assert not ready and detail["degraded"] == ["demo"]
        assert client.health()
        # Queries keep serving while degraded.
        assert client.query_pairs("demo", "[_, b, _]",
                                  sources=[0]) == {(0, 3)}
        # Checkpoint (one shot, not retried) heals; mutations land again.
        client.checkpoint("demo")
        ready, _ = client.ready()
        assert ready
        outcome = client.mutate("demo", add_edges=[("x", "a", "y")])
        assert outcome["added"] == 1

    def test_connection_drops_are_retried_to_success(self, live_server):
        # The server aborts the first two connections mid-response; the
        # (idempotent) query rides the resets to the real answer.
        _, host, port = live_server(
            env_faults="http.connection_drop:drop:times=2")
        client = live_client(host, port)
        assert client.query_pairs("demo", "[_, b, _]",
                                  sources=[0]) == {(0, 3)}
        assert client.retries_performed >= 2
