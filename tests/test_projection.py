"""Tests for section IV-C projections (methods M1/M2/M3)."""

import pytest

from repro.core.pathset import PathSet
from repro.core.path import Path
from repro.core.projection import (
    extract_relation,
    ignore_labels,
    project_label_sequence,
    project_paths,
    project_regular,
)
from repro.errors import LabelNotFoundError
from repro.graph.graph import MultiRelationalGraph
from repro.regex import atom, join, star


@pytest.fixture
def graph():
    return MultiRelationalGraph([
        ("a", "alpha", "b"),
        ("b", "beta", "c"),
        ("a", "alpha", "x"),
        ("x", "beta", "c"),
        ("a", "gamma", "c"),
        ("c", "alpha", "d"),
    ])


class TestIgnoreLabels:
    def test_collapses_everything(self, graph):
        projection = ignore_labels(graph)
        assert ("a", "b") in projection
        assert ("a", "c") in projection
        assert len(projection) == 6

    def test_merges_parallel_relations(self):
        g = MultiRelationalGraph([("a", "r1", "b"), ("a", "r2", "b")])
        assert len(ignore_labels(g)) == 1

    def test_method_tag(self, graph):
        assert ignore_labels(graph).method == "ignore-labels"


class TestExtractRelation:
    def test_single_relation(self, graph):
        projection = extract_relation(graph, "alpha")
        assert projection.pairs == {("a", "b"), ("a", "x"), ("c", "d")}

    def test_missing_label_raises(self, graph):
        with pytest.raises(LabelNotFoundError):
            extract_relation(graph, "nope")


class TestProjectPaths:
    def test_endpoint_projection(self):
        paths = PathSet([
            Path.of(("a", "r", "b"), ("b", "s", "c")),
            Path.of(("a", "r", "x"), ("x", "s", "c")),
        ])
        projection = project_paths(paths)
        assert projection.pairs == {("a", "c")}

    def test_weights_count_witness_paths(self):
        paths = PathSet([
            Path.of(("a", "r", "b"), ("b", "s", "c")),
            Path.of(("a", "r", "x"), ("x", "s", "c")),
            Path.single("a", "r", "d"),
        ])
        projection = project_paths(paths)
        assert projection.weights[("a", "c")] == 2
        assert projection.weights[("a", "d")] == 1

    def test_epsilon_ignored(self):
        from repro.core.path import EPSILON
        projection = project_paths(PathSet([EPSILON]))
        assert len(projection) == 0

    def test_vertices(self):
        projection = project_paths(PathSet([("a", "r", "b")]))
        assert projection.vertices() == {"a", "b"}


class TestProjectLabelSequence:
    def test_paper_e_alpha_beta(self, graph):
        """E_ab = endpoints of A join B with A = alpha edges, B = beta edges."""
        projection = project_label_sequence(graph, ["alpha", "beta"])
        assert projection.pairs == {("a", "c")}
        assert projection.weights[("a", "c")] == 2  # via b and via x

    def test_single_label_sequence_equals_extraction(self, graph):
        via_sequence = project_label_sequence(graph, ["alpha"])
        via_extract = extract_relation(graph, "alpha")
        assert via_sequence.pairs == via_extract.pairs

    def test_empty_sequence_rejected(self, graph):
        with pytest.raises(ValueError):
            project_label_sequence(graph, [])

    def test_impossible_sequence_is_empty(self, graph):
        assert len(project_label_sequence(graph, ["beta", "beta"])) == 0


class TestProjectRegular:
    def test_regular_projection(self, graph):
        expr = join(atom(label="alpha"), star(atom(label="beta")))
        projection = project_regular(graph, expr, max_length=4)
        # alpha alone: (a,b), (a,x), (c,d); alpha.beta: (a,c).
        assert projection.pairs == {("a", "b"), ("a", "x"), ("c", "d"), ("a", "c")}

    def test_to_digraph_carries_weights(self, graph):
        projection = project_label_sequence(graph, ["alpha", "beta"])
        digraph = projection.to_digraph()
        assert digraph.weight("a", "c") == 2.0

    def test_to_networkx(self, graph):
        projection = project_label_sequence(graph, ["alpha", "beta"])
        nxg = projection.to_networkx()
        assert nxg["a"]["c"]["weight"] == 2.0


class TestDownstreamAlgorithms:
    def test_pagerank_over_projection(self, scholarly):
        """The full section IV-C pipeline: project, then rank."""
        from repro.algorithms import pagerank
        coauthor = _coauthorship(scholarly)
        ranks = pagerank(coauthor.to_digraph())
        assert ranks
        assert abs(sum(ranks.values()) - 1.0) < 1e-6

    def test_three_methods_differ(self, scholarly):
        """M1, M2 and M3 genuinely produce different graphs."""
        m1 = ignore_labels(scholarly)
        m2 = extract_relation(scholarly, "cites")
        m3 = _coauthorship(scholarly)
        assert m1.pairs != m2.pairs
        assert m2.pairs != m3.pairs
        # M3 relates authors to authors, which no raw relation does.
        author_pairs = [pair for pair in m3.pairs
                        if str(pair[0]).startswith("author")
                        and str(pair[1]).startswith("author")]
        assert author_pairs


def _coauthorship(graph):
    """authored join authored-reversed: author -> co-author."""
    authored = graph.edges(label="authored")
    reversed_authored = authored.map(lambda p: p.reversed())
    return project_paths(authored @ reversed_authored,
                         description="co-authorship")
