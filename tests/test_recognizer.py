"""Tests for the NFA recognizer (section IV-A), including join/product boundaries."""

import pytest

from repro.automata import Recognizer, build_nfa, recognizes
from repro.core.path import EPSILON as EPSILON_PATH
from repro.core.path import Path
from repro.graph.graph import MultiRelationalGraph
from repro.regex import (
    EMPTY,
    EPSILON,
    atom,
    join,
    literal,
    optional,
    plus,
    power,
    product,
    star,
    union,
)


@pytest.fixture
def graph():
    return MultiRelationalGraph([
        ("a", "x", "b"),
        ("b", "y", "c"),
        ("c", "x", "d"),
        ("p", "y", "q"),
        ("b", "y", "b"),
    ])


class TestBasics:
    def test_empty_language_accepts_nothing(self, graph):
        r = Recognizer(EMPTY, graph)
        assert not r.accepts(EPSILON_PATH)
        assert not r.accepts(Path.single("a", "x", "b"))

    def test_epsilon_language(self, graph):
        r = Recognizer(EPSILON, graph)
        assert r.accepts(EPSILON_PATH)
        assert not r.accepts(Path.single("a", "x", "b"))

    def test_atom_membership(self, graph):
        r = Recognizer(atom(label="x"), graph)
        assert r.accepts(Path.single("a", "x", "b"))
        assert not r.accepts(Path.single("b", "y", "c"))

    def test_atom_requires_graph_membership(self, graph):
        """Pattern atoms denote subsets of E: a non-edge never matches."""
        r = Recognizer(atom(label="x"), graph)
        assert not r.accepts(Path.single("zz", "x", "ww"))

    def test_literal_is_graph_independent(self, graph):
        r = Recognizer(literal(("zz", "x", "ww")), graph)
        assert r.accepts(Path.single("zz", "x", "ww"))

    def test_wrong_length_rejected(self, graph):
        r = Recognizer(atom(label="x"), graph)
        assert not r.accepts(EPSILON_PATH)
        assert not r.accepts(Path.of(("a", "x", "b"), ("b", "y", "c")))

    def test_one_shot_helper(self, graph):
        assert recognizes(atom(label="x"), Path.single("a", "x", "b"), graph)


class TestJoinBoundaries:
    def test_join_accepts_adjacent(self, graph):
        expr = join(atom(label="x"), atom(label="y"))
        assert recognizes(expr, Path.of(("a", "x", "b"), ("b", "y", "c")), graph)

    def test_join_rejects_disjoint(self, graph):
        expr = join(atom(label="x"), atom(label="y"))
        assert not recognizes(expr, Path.of(("a", "x", "b"), ("p", "y", "q")), graph)

    def test_product_accepts_disjoint(self, graph):
        expr = product(atom(label="x"), atom(label="y"))
        assert recognizes(expr, Path.of(("a", "x", "b"), ("p", "y", "q")), graph)

    def test_product_also_accepts_adjacent(self, graph):
        """Footnote 7: the join language is inside the product language."""
        expr = product(atom(label="x"), atom(label="y"))
        assert recognizes(expr, Path.of(("a", "x", "b"), ("b", "y", "c")), graph)

    def test_mixed_product_then_join(self, graph):
        # (x & y) . x : first boundary free, second must be adjacent.
        expr = join(product(atom(label="x"), atom(label="y")), atom(label="x"))
        good = Path.of(("a", "x", "b"), ("b", "y", "c"), ("c", "x", "d"))
        disjoint_first = Path.of(("c", "x", "d"), ("p", "y", "q"), ("q", "x", "r"))
        assert recognizes(expr, good, graph)
        # q -x-> r is not an edge of the graph, so build a valid one:
        assert not recognizes(
            expr, Path.of(("a", "x", "b"), ("p", "y", "q"), ("c", "x", "d")), graph)

    def test_mixed_join_then_product(self, graph):
        # (x . y) & x : first boundary adjacent, second free.
        expr = product(join(atom(label="x"), atom(label="y")), atom(label="x"))
        assert recognizes(
            expr, Path.of(("a", "x", "b"), ("b", "y", "c"), ("a", "x", "b")), graph)
        assert not recognizes(
            expr, Path.of(("a", "x", "b"), ("p", "y", "q"), ("a", "x", "b")), graph)

    def test_epsilon_operand_relaxes_nothing_extra(self, graph):
        # x . eps . y == x . y : adjacency still required across.
        expr = join(atom(label="x"), EPSILON, atom(label="y"))
        assert recognizes(expr, Path.of(("a", "x", "b"), ("b", "y", "c")), graph)
        assert not recognizes(expr, Path.of(("a", "x", "b"), ("p", "y", "q")), graph)

    def test_nullable_left_join_inherits_outer_product(self, graph):
        # x & (y? . y): when the optional y is skipped, the x-to-y boundary
        # is the product's (free); adjacency must not be imposed.
        expr = product(atom(label="x"),
                       join(optional(atom(label="y")), atom(label="y")))
        assert recognizes(expr, Path.of(("a", "x", "b"), ("p", "y", "q")), graph)


class TestClosures:
    def test_star_accepts_epsilon(self, graph):
        assert recognizes(star(atom(label="y")), EPSILON_PATH, graph)

    def test_star_accepts_repetitions(self, graph):
        expr = star(atom(label="y"))
        loop = Path.of(("b", "y", "b"), ("b", "y", "b"), ("b", "y", "c"))
        assert recognizes(expr, loop, graph)

    def test_star_requires_adjacency_between_repetitions(self, graph):
        expr = star(atom(label="y"))
        assert not recognizes(
            expr, Path.of(("b", "y", "c"), ("p", "y", "q")), graph)

    def test_plus_rejects_epsilon(self, graph):
        assert not recognizes(plus(atom(label="y")), EPSILON_PATH, graph)

    def test_power_counts(self, graph):
        expr = power(atom(label="y"), 2)
        assert recognizes(expr, Path.of(("b", "y", "b"), ("b", "y", "c")), graph)
        assert not recognizes(expr, Path.single("b", "y", "c"), graph)


class TestUnionAndLiterals:
    def test_union_branches(self, graph):
        expr = union(atom(label="x"), atom(label="y"))
        assert recognizes(expr, Path.single("a", "x", "b"), graph)
        assert recognizes(expr, Path.single("b", "y", "c"), graph)
        assert not recognizes(expr, Path.single("a", "z", "b"), graph)

    def test_multi_edge_literal_recognized_exactly(self, graph):
        lit = literal(Path.of(("u", "r", "v"), ("w", "r", "z")))  # disjoint!
        assert recognizes(lit, Path.of(("u", "r", "v"), ("w", "r", "z")), graph)
        assert not recognizes(lit, Path.of(("u", "r", "v"), ("v", "r", "z")), graph)

    def test_literal_after_join_requires_adjacency(self, graph):
        expr = join(atom(label="x"), literal(("b", "q", "z")))
        assert recognizes(expr, Path.of(("a", "x", "b"), ("b", "q", "z")), graph)
        expr2 = join(atom(label="x"), literal(("c", "q", "z")))
        assert not recognizes(expr2, Path.of(("a", "x", "b"), ("c", "q", "z")), graph)

    def test_reusable_recognizer(self, graph):
        r = Recognizer(atom(label="x"), graph)
        accepted = r.accepting_subset([
            Path.single("a", "x", "b"),
            Path.single("b", "y", "c"),
            Path.single("c", "x", "d"),
        ])
        assert len(accepted) == 2
        assert r.rejects(Path.single("b", "y", "c"))


class TestNFAStructure:
    def test_thompson_is_linear(self):
        expr = join(atom(), star(atom()), union(atom(), atom()))
        nfa = build_nfa(expr)
        assert nfa.num_states <= 10 * expr.size()

    def test_alive_states_excludes_empty_branches(self):
        nfa = build_nfa(union(atom(label="x"), EMPTY))
        alive = nfa.alive_states()
        assert nfa.start in alive
        assert nfa.accept in alive
        assert len(alive) < nfa.num_states
