"""The paper's literal worked examples, asserted exactly (experiments E1, E2, E4)."""

import pytest

from repro.automata import Recognizer, StackAutomaton, generate_paths
from repro.core.path import Path
from repro.core.pathset import PathSet
from repro.datasets.paper import (
    ALPHA,
    BETA,
    figure1_expression,
    figure1_graph,
    section2_edges,
    section2_expected_join,
    section2_graph,
    section2_left_operand,
    section2_right_operand,
)
from repro.regex import evaluate
from repro.regex.derivatives import matches


class TestSection2JoinExample:
    """E1: the A join B example printed in section II."""

    def test_join_produces_exactly_the_four_listed_paths(self):
        a = section2_left_operand()
        b = section2_right_operand()
        assert a @ b == section2_expected_join()

    def test_each_listed_path_verbatim(self):
        joined = section2_left_operand() @ section2_right_operand()
        listed = [
            "(i, alpha, j, j, beta, j)",
            "(i, alpha, j, j, beta, i, i, alpha, k)",
            "(j, beta, k, k, alpha, j, j, beta, j)",
            "(j, beta, k, k, alpha, j, j, beta, i, i, alpha, k)",
        ]
        assert sorted(str(p) for p in joined) == sorted(listed)

    def test_naive_join_agrees(self):
        a = section2_left_operand()
        b = section2_right_operand()
        assert a.join_naive(b) == section2_expected_join()

    def test_every_mentioned_edge_is_in_e(self):
        """The paper lists the seven edges as members of E."""
        graph = section2_graph()
        for triple in section2_edges():
            assert graph.has_edge(*triple)
        assert graph.size() == 7

    def test_operands_use_only_declared_edges(self):
        graph = section2_graph()
        for operand in (section2_left_operand(), section2_right_operand()):
            for path in operand:
                for e in path:
                    assert graph.has_edge(e.tail, e.label, e.head)

    def test_all_results_are_joint(self):
        for path in section2_expected_join():
            assert path.is_joint

    def test_result_lengths_match_operand_sums(self):
        # A has lengths {1, 2}; B has lengths {1, 2, 1}; the four results
        # pair them as 1+1, 1+2, 2+1, 2+2.
        lengths = sorted(len(p) for p in section2_expected_join())
        assert lengths == [2, 3, 3, 4]


class TestFigure1Automaton:
    """E2/E4: the Figure 1 regular path expression, recognized and generated."""

    @pytest.fixture
    def graph(self):
        return figure1_graph()

    @pytest.fixture
    def expression(self):
        return figure1_expression()

    @pytest.fixture
    def generated(self, graph, expression):
        return generate_paths(graph, expression, max_length=6)

    def test_generation_is_nonempty(self, generated):
        assert len(generated) > 0

    def test_zero_beta_branch_to_k(self, generated):
        """i -alpha-> m -alpha-> k takes the star zero times."""
        assert Path.of(("i", ALPHA, "m"), ("m", ALPHA, "k")) in generated

    def test_zero_beta_branch_to_j_then_i(self, generated):
        p = Path.of(("i", ALPHA, "m"), ("m", ALPHA, "j"), ("j", ALPHA, "i"))
        assert p in generated

    def test_beta_steps_accepted(self, generated):
        p = Path.of(("i", ALPHA, "m"), ("m", BETA, "n"), ("n", ALPHA, "k"))
        assert p in generated

    def test_multi_beta_through_cycle(self, generated):
        p = Path.of(("i", ALPHA, "m"), ("m", BETA, "n"), ("n", BETA, "m"),
                    ("m", ALPHA, "k"))
        assert p in generated

    def test_every_generated_path_structure(self, generated):
        """First label alpha from i; beta middles; an alpha suffix per branch.

        The k-branch ends with one alpha edge; the i-branch ends with two
        (the ``[_, alpha, j]`` step and then the literal ``(j, alpha, i)``).
        """
        for p in generated:
            labels = p.label_path
            assert p.tail == "i"
            assert labels[0] == ALPHA
            assert p.head in ("i", "k")
            if p.head == "k":
                middles = labels[1:-1]
                assert labels[-1] == ALPHA
            else:
                middles = labels[1:-2]
                assert labels[-2] == ALPHA and labels[-1] == ALPHA
            assert all(lab == BETA for lab in middles)

    def test_terminal_vertex_rule(self, generated):
        """Paths end at i (via the (j, alpha, i) literal) or at k."""
        for p in generated:
            if p.head == "i":
                assert p[-1] == ("j", ALPHA, "i")
            else:
                assert p.head == "k"

    def test_wrong_first_label_rejected(self, graph, expression):
        recognizer = Recognizer(expression, graph)
        bad = Path.of(("i", BETA, "m"), ("m", ALPHA, "k"))
        assert not recognizer.accepts(bad)

    def test_alpha_to_j_without_literal_rejected(self, graph, expression):
        recognizer = Recognizer(expression, graph)
        # Ends after [_, alpha, j] without the mandatory (j, alpha, i).
        bad = Path.of(("i", ALPHA, "m"), ("m", ALPHA, "j"))
        assert not recognizer.accepts(bad)

    def test_continuing_past_accept_rejected(self, graph, expression):
        recognizer = Recognizer(expression, graph)
        bad = Path.of(("i", ALPHA, "m"), ("m", ALPHA, "k"), ("k", BETA, "i"))
        assert not recognizer.accepts(bad)

    def test_recognizer_accepts_everything_generated(self, graph, expression, generated):
        recognizer = Recognizer(expression, graph)
        for p in generated:
            assert recognizer.accepts(p)

    def test_derivative_matcher_agrees(self, graph, expression, generated):
        for p in generated:
            assert matches(expression, p, graph)

    def test_reference_evaluator_agrees(self, graph, expression, generated):
        assert evaluate(expression, graph, max_length=6) == generated

    def test_stack_automaton_agrees(self, graph, expression, generated):
        """The paper's section IV-B construction yields the same set."""
        assert StackAutomaton(expression, graph).run(max_length=6) == generated


class TestSection4BStackEvaluations:
    """The four stack-join evaluations the paper lists for Figure 1.

    The paper writes out the branch evaluations:
        {eps} >< [i,a,_] >< [_,a,j] >< {(j,a,i)}
        {eps} >< [i,a,_] >< [_,a,k]
        {eps} >< [i,a,_] >< [_,b,_] ... >< [_,a,j] >< {(j,a,i)}
        {eps} >< [i,a,_] >< [_,b,_] ... >< [_,a,k]
    Their union must be the full generated set.
    """

    def test_union_of_branch_evaluations_equals_generation(self):
        graph = figure1_graph()
        eps = PathSet.epsilon()
        entry = graph.edges(tail="i", label=ALPHA)
        beta = graph.edges(label=BETA)
        into_j = graph.edges(label=ALPHA, head="j")
        into_k = graph.edges(label=ALPHA, head="k")
        literal = PathSet([("j", ALPHA, "i")])

        def bounded(path_set, limit=6):
            return PathSet(p for p in path_set.paths if len(p) <= limit)

        union = PathSet.empty()
        # Zero-beta branches.
        union = union | (eps @ entry @ into_j @ literal)
        union = union | (eps @ entry @ into_k)
        # One-or-more beta branches, bounded so total length <= 6.
        betas = eps
        for _ in range(4):
            betas = betas @ beta
            union = union | bounded(entry @ betas @ into_j @ literal)
            union = union | bounded(entry @ betas @ into_k)

        generated = generate_paths(graph, figure1_expression(), max_length=6)
        assert union == generated
