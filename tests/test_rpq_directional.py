"""Directional RPQ evaluation: kernels, lowering, cost model, engine wiring.

Covers the bidirectional tentpole end to end:

* backward / bidirectional kernel semantics (reflexive pairs, filters,
  missing vertices, empty languages),
* ``lower_to_constrained_query`` — which vertex-bound shapes lower and
  which stay on the bounded fallback,
* the engine's compiled-DFA cache (hits, alphabet-version invalidation),
* version-keyed statistics refresh + per-label degree profiles,
* the planner's direction cost model on symmetric and hub-skewed graphs,
* fast-path vs automaton-fallback parity on vertex-bound queries,
  including nullable reflexive semantics under endpoint filters.
"""

import random

import pytest

from repro.engine import Engine, Planner
from repro.graph.generators import uniform_random
from repro.graph.graph import MultiRelationalGraph
from repro.regex import atom, join, star, union
from repro.regex.builder import literal
from repro.rpq import (
    ConstrainedQuery,
    LabelConcat,
    LabelStar,
    LabelSymbol,
    lconcat,
    lower_to_constrained_query,
    lstar,
    rpq_pairs,
    rpq_pairs_basic,
    rpq_pairs_between,
    rpq_pairs_to_targets,
    sym,
)


@pytest.fixture
def diamond():
    """s -> {m1, m2} -> t plus a b-cycle hanging off m1."""
    return MultiRelationalGraph([
        ("s", "a", "m1"), ("s", "a", "m2"),
        ("m1", "b", "t"), ("m2", "b", "t"),
        ("m1", "b", "m1"),
    ])


class TestBackwardKernel:
    def test_matches_forward_on_all_pairs(self, diamond):
        expression = lconcat(sym("a"), lstar(sym("b")))
        assert rpq_pairs_to_targets(diamond, expression) == \
            rpq_pairs_basic(diamond, expression)

    def test_target_filter_bounds_the_answer(self, diamond):
        expression = lconcat(sym("a"), lstar(sym("b")))
        pairs = rpq_pairs_to_targets(diamond, expression, targets={"t"})
        assert pairs == {("s", "t")}

    def test_nullable_reflexive_pairs(self, diamond):
        expression = lstar(sym("b"))
        pairs = rpq_pairs_to_targets(diamond, expression, targets={"m1"})
        assert ("m1", "m1") in pairs
        assert ("s", "m1") not in pairs  # no b-path from s

    def test_missing_targets_are_skipped(self, diamond):
        expression = lstar(sym("b"))
        assert rpq_pairs_to_targets(diamond, expression,
                                    targets={"ghost"}) == frozenset()


class TestBidirectionalKernel:
    def test_point_to_point_positive_and_negative(self, diamond):
        expression = lconcat(sym("a"), lstar(sym("b")))
        assert rpq_pairs_between(diamond, expression, {"s"}, {"t"}) == \
            {("s", "t")}
        assert rpq_pairs_between(diamond, expression, {"t"}, {"s"}) == \
            frozenset()

    def test_set_to_set_matches_filtered_reference(self, diamond):
        expression = lconcat(sym("a"), lstar(sym("b")))
        reference = rpq_pairs_basic(diamond, expression)
        sources, targets = {"s", "m1"}, {"t", "m1", "m2"}
        expected = frozenset(p for p in reference
                             if p[0] in sources and p[1] in targets)
        assert rpq_pairs_between(diamond, expression, sources,
                                 targets) == expected

    def test_nullable_needs_overlapping_endpoints(self, diamond):
        expression = lstar(sym("b"))
        assert ("s", "s") in rpq_pairs_between(diamond, expression,
                                               {"s"}, {"s"})
        assert rpq_pairs_between(diamond, expression, {"s"},
                                 {"m2"}) == frozenset()

    def test_empty_language_and_missing_endpoints(self, diamond):
        assert rpq_pairs_between(diamond, lconcat(sym("a"), sym("zz")),
                                 {"s"}, {"t"}) == frozenset()
        assert rpq_pairs_between(diamond, lstar(sym("b")), {"ghost"},
                                 {"t"}) == frozenset()

    def test_wide_endpoint_sets_use_bignum_masks(self):
        rng = random.Random(7)
        graph = uniform_random(90, 400, labels=("a", "b"), seed=7)
        vertices = sorted(graph.vertices(), key=repr)
        sources = frozenset(rng.sample(vertices, 80))
        targets = frozenset(rng.sample(vertices, 80))
        expression = lconcat(sym("a"), lstar(sym("b")))
        reference = frozenset(
            p for p in rpq_pairs_basic(graph, expression)
            if p[0] in sources and p[1] in targets)
        assert rpq_pairs_between(graph, expression, sources,
                                 targets) == reference


class TestLowerToConstrainedQuery:
    def test_label_only_passthrough(self):
        lowered = lower_to_constrained_query(
            join(atom(label="a"), star(atom(label="b"))))
        assert lowered == ConstrainedQuery(
            LabelConcat((LabelSymbol("a"), LabelStar(LabelSymbol("b")))))
        assert lowered.label_only

    def test_source_bound_prefix(self):
        lowered = lower_to_constrained_query(
            join(atom(tail="i", label="a"), star(atom(label="b"))))
        assert lowered.source == "i" and lowered.target is None
        assert "source='i'" in lowered.describe()

    def test_target_bound_suffix(self):
        lowered = lower_to_constrained_query(
            join(star(atom(label="a")), atom(label="b", head="j")))
        assert lowered.source is None and lowered.target == "j"

    def test_both_ends_bound(self):
        lowered = lower_to_constrained_query(
            join(atom(tail="i", label="a"), atom(label="b"),
                 atom(label="c", head="j")))
        assert (lowered.source, lowered.target) == ("i", "j")
        assert lowered.label_expression == LabelConcat(
            (LabelSymbol("a"), LabelSymbol("b"), LabelSymbol("c")))

    def test_single_atom_shapes(self):
        assert lower_to_constrained_query(atom(tail="i", label="a")) == \
            ConstrainedQuery(LabelSymbol("a"), "i", None)
        assert lower_to_constrained_query(atom(label="a", head="j")) == \
            ConstrainedQuery(LabelSymbol("a"), None, "j")
        assert lower_to_constrained_query(atom(tail="i", label="a", head="j")) \
            == ConstrainedQuery(LabelSymbol("a"), "i", "j")

    def test_rejected_shapes(self):
        # Interior bindings, missing labels, unions over bound atoms,
        # literals: all genuinely need the edge-set algebra.
        assert lower_to_constrained_query(
            join(atom(label="a"), atom(tail="i", label="b"))) is None
        assert lower_to_constrained_query(
            join(atom(tail="i", label="a", head="j"),
                 atom(label="b"))) is None
        assert lower_to_constrained_query(atom(tail="i")) is None
        assert lower_to_constrained_query(
            union(atom(tail="i", label="a"), atom(label="b"))) is None
        assert lower_to_constrained_query(
            star(atom(tail="i", label="a"))) is None


class TestCompiledDfaCache:
    def test_repeat_queries_hit_the_cache(self, diamond):
        engine = Engine(diamond)
        query = "[_, a, _] . [_, b, _]*"
        engine.pairs(query)
        hits0, misses0, size0 = engine.dfa_cache_info()
        assert (misses0, size0) == (1, 1)
        engine.pairs(query)
        engine.pairs(query)
        hits1, misses1, _ = engine.dfa_cache_info()
        assert misses1 == misses0
        assert hits1 == hits0 + 2

    def test_alphabet_change_invalidates(self, diamond):
        engine = Engine(diamond)
        query = "[_, a, _]*"
        engine.pairs(query)
        diamond.add_edge("t", "c", "s")  # new label -> new alphabet
        engine.pairs(query)
        _, misses, size = engine.dfa_cache_info()
        assert misses == 2 and size == 2

    def test_label_preserving_mutation_keeps_the_entry(self, diamond):
        engine = Engine(diamond)
        query = "[_, a, _]*"
        engine.pairs(query)
        diamond.add_edge("t", "a", "s")  # alphabet unchanged
        engine.pairs(query)
        hits, misses, _ = engine.dfa_cache_info()
        assert misses == 1 and hits == 1

    def test_cache_is_lru_bounded(self, diamond):
        engine = Engine(diamond)
        engine._DFA_CACHE_CAP = 4
        for i in range(10):
            engine.compiled_dfa(lconcat(*[sym("a")] * (i + 1)))
        assert engine.dfa_cache_info()[2] == 4


class TestStatisticsRefresh:
    def test_version_keyed_invalidation_catches_same_size_churn(self, diamond):
        engine = Engine(diamond)
        first = engine.statistics()
        assert engine.statistics() is first  # no mutation: cached
        # remove+add keeps size() constant but shifts the histogram — the
        # old size-keyed cache served stale statistics here.
        diamond.remove_edge("m1", "b", "m1")
        diamond.add_edge("m1", "a", "m1")
        refreshed = engine.statistics()
        assert refreshed is not first
        assert refreshed.label_histogram["a"] == 3

    def test_degree_profiles(self):
        graph = MultiRelationalGraph([
            ("hub", "a", "x"), ("hub", "a", "y"), ("hub", "a", "z"),
            ("u", "b", "hub"), ("v", "b", "hub"),
        ])
        stats = Engine(graph).statistics()
        a = stats.degree_profile("a")
        assert (a.edges, a.distinct_tails, a.distinct_heads) == (3, 1, 3)
        assert (a.avg_out, a.avg_in, a.max_out) == (3.0, 1.0, 3)
        assert a.out_histogram == {3: 1} and a.in_histogram == {1: 3}
        b = stats.degree_profile("b")
        assert (b.avg_out, b.avg_in) == (1.0, 2.0)
        missing = stats.degree_profile("nope")
        assert missing.edges == 0
        # Growth factors feed the direction model: 'a' fans out, 'b'
        # fans in.
        assert stats.forward_growth(["a"]) > stats.backward_growth(["a"])
        assert stats.backward_growth(["b"]) > stats.forward_growth(["b"])


class TestDirectionChoice:
    def _planner(self, graph, max_length=8):
        return Planner(Engine(graph).statistics(), max_length=max_length)

    def test_unfiltered_symmetric_graph_stays_forward(self):
        graph = uniform_random(40, 160, labels=("a", "b"), seed=3)
        choice = self._planner(graph).choose_rpq_direction(
            lconcat(sym("a"), lstar(sym("b"))))
        assert choice.direction == "forward"
        assert choice.bidirectional_cost is None  # needs both ends bound

    def test_selective_targets_go_backward(self):
        graph = uniform_random(40, 160, labels=("a", "b"), seed=3)
        choice = self._planner(graph).choose_rpq_direction(
            lstar(sym("a")), num_sources=None, num_targets=1)
        assert choice.direction == "backward"
        assert choice.backward_cost < choice.forward_cost

    def test_point_to_point_goes_bidirectional(self):
        graph = uniform_random(40, 160, labels=("a", "b"), seed=3)
        choice = self._planner(graph).choose_rpq_direction(
            lstar(sym("a")), num_sources=1, num_targets=1)
        assert choice.direction == "bidirectional"
        assert "bidirectional" in choice.describe()

    def test_hub_skew_prefers_the_converging_direction(self):
        # All 'a' edges fan out of one hub: backward steps converge onto
        # it (avg_in = 1) while forward steps explode (avg_out = |E|).
        graph = MultiRelationalGraph(
            [("hub", "a", "v{}".format(i)) for i in range(50)])
        planner = self._planner(graph)
        stats = planner.statistics
        assert stats.forward_growth(["a"]) > stats.backward_growth(["a"])
        choice = planner.choose_rpq_direction(lstar(sym("a")))
        assert choice.direction == "backward"

    def test_oversized_endpoint_sets_disable_bidirectional(self):
        graph = uniform_random(40, 160, labels=("a",), seed=3)
        choice = self._planner(graph).choose_rpq_direction(
            lstar(sym("a")), num_sources=100, num_targets=100)
        assert choice.bidirectional_cost is None


class TestEnginePairsDirectional:
    @pytest.fixture
    def dag_engine(self):
        """A random DAG so the bounded automaton fallback is exhaustive."""
        rng = random.Random(41)
        graph = MultiRelationalGraph()
        for v in range(12):
            graph.add_vertex(v)
        while graph.size() < 22:
            tail, head = sorted(rng.sample(range(12), 2))
            graph.add_edge(tail, rng.choice(("a", "b")), head)
        return Engine(graph, default_max_length=12)

    QUERIES = [
        "[3, a, _] . [_, b, _]*",
        "[_, a, _]* . [_, b, 9]",
        "[3, a, _] . [_, a, _]* . [_, b, 9]",
        "[3, a, 5]",
        "[_, a, _]*",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_fast_path_matches_automaton_fallback(self, dag_engine, query):
        # max_length routes through the bounded automaton strategy; on a
        # DAG with bound >= |V| that enumeration is exhaustive, so the
        # unbounded kernels must agree exactly.
        assert dag_engine.pairs(query) == \
            dag_engine.pairs(query, max_length=12), query

    @pytest.mark.parametrize("query", QUERIES)
    def test_parity_under_endpoint_filters(self, dag_engine, query):
        sources = frozenset({0, 3, 4, "ghost"})
        targets = frozenset({5, 9, 11, "ghost"})
        fast = dag_engine.pairs(query, sources=sources, targets=targets)
        slow = dag_engine.pairs(query, sources=sources, targets=targets,
                                max_length=12)
        assert fast == slow, query

    def test_nullable_reflexive_parity_with_filters(self, dag_engine):
        query = "[_, a, _]*"
        sources = frozenset({1, 2, "ghost"})
        fast = dag_engine.pairs(query, sources=sources)
        slow = dag_engine.pairs(query, sources=sources, max_length=12)
        assert fast == slow
        assert ("ghost", "ghost") not in fast
        assert (1, 1) in fast
        # Reflexive pairs must clear the *target* filter too, on both paths.
        assert dag_engine.pairs(query, sources=frozenset({1}),
                                targets=frozenset({2})) == \
            dag_engine.pairs(query, sources=frozenset({1}),
                             targets=frozenset({2}), max_length=12)

    def test_bound_vertex_conflicting_filter_is_empty(self, dag_engine):
        assert dag_engine.pairs("[3, a, _]",
                                sources=frozenset({4})) == frozenset()
        assert dag_engine.pairs("[3, a, _]", sources=frozenset({4}),
                                max_length=12) == frozenset()

    def test_vertex_bound_query_matches_reference_kernel(self):
        graph = uniform_random(40, 200, labels=("a", "b"), seed=13)
        engine = Engine(graph)
        source = sorted(graph.vertices(), key=repr)[0]
        fast = engine.pairs("[{}, a, _] . [_, b, _]*".format(source))
        reference = rpq_pairs_basic(
            graph, lconcat(sym("a"), lstar(sym("b"))),
            sources=frozenset({source}))
        assert fast == reference

    def test_ineligible_expression_still_falls_back(self, dag_engine):
        # A literal needs the edge-set algebra; pairs() must still answer.
        graph = dag_engine.graph
        edge = sorted(graph.edge_set(), key=repr)[0]
        expression = join(
            literal((edge.tail, edge.label, edge.head)),
            atom(label="a"))
        pairs = dag_engine.pairs(expression)
        assert all(s == edge.tail for s, _ in pairs)

    def test_explain_reports_direction_for_filters(self, dag_engine):
        text = dag_engine.explain("[3, a, _] . [_, b, 9]")
        assert "vertex-bound lowering (source=3, target=9)" in text
        assert "pairs direction: direction=bidirectional" in text
        conflicting = dag_engine.explain("[3, a, _]",
                                         sources=frozenset({4}))
        assert "endpoint filters exclude the bound vertex" in conflicting
