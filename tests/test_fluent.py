"""Tests for the fluent Gremlin-style Traversal DSL."""

import pytest

from repro.core.fluent import Traversal
from repro.core.path import Path
from repro.errors import VertexNotFoundError
from repro.graph.graph import MultiRelationalGraph


@pytest.fixture
def graph():
    return MultiRelationalGraph([
        ("marko", "knows", "josh"),
        ("marko", "knows", "peter"),
        ("josh", "created", "gremlin"),
        ("peter", "created", "gremlin"),
        ("josh", "created", "frames"),
        ("marko", "created", "blueprints"),
    ])


class TestStarting:
    def test_must_start_before_stepping(self, graph):
        with pytest.raises(ValueError):
            Traversal(graph).out("knows")

    def test_start_validates_vertices(self, graph):
        with pytest.raises(VertexNotFoundError):
            Traversal(graph).start("nobody")

    def test_start_everywhere(self, graph):
        t = Traversal(graph).start().out("created")
        assert t.count() == 4

    def test_start_is_immutable_branching(self, graph):
        base = Traversal(graph).start("marko")
        knows = base.out("knows")
        created = base.out("created")
        assert knows.heads() == {"josh", "peter"}
        assert created.heads() == {"blueprints"}


class TestOutSteps:
    def test_single_out(self, graph):
        t = Traversal(graph).start("marko").out("knows")
        assert t.heads() == {"josh", "peter"}

    def test_out_without_label_follows_everything(self, graph):
        t = Traversal(graph).start("marko").out()
        assert t.heads() == {"josh", "peter", "blueprints"}

    def test_chained_out(self, graph):
        t = Traversal(graph).start("marko").out("knows").out("created")
        assert t.heads() == {"gremlin", "frames"}

    def test_multiple_labels_in_one_step(self, graph):
        t = Traversal(graph).start("marko").out("knows", "created")
        assert t.heads() == {"josh", "peter", "blueprints"}

    def test_paths_record_full_history(self, graph):
        t = Traversal(graph).start("marko").out("knows").out("created")
        assert Path.of(("marko", "knows", "josh"),
                       ("josh", "created", "gremlin")) in t.paths()

    def test_dead_end_gives_empty(self, graph):
        t = Traversal(graph).start("gremlin").out("created")
        assert t.count() == 0

    def test_repeat(self, graph):
        direct = Traversal(graph).start("marko").out("knows").out("created")
        repeated = Traversal(graph).start("marko").repeat(
            lambda s: s.out(), 2)
        assert direct.paths() <= repeated.paths()


class TestInAndBoth:
    def test_in_traverses_against_direction(self, graph):
        t = Traversal(graph).start("gremlin").in_("created")
        assert t.heads() == {"josh", "peter"}

    def test_in_records_inverted_edges(self, graph):
        t = Traversal(graph).start("gremlin").in_("created")
        assert Path.single("gremlin", "created", "josh") in t.paths()

    def test_both(self, graph):
        t = Traversal(graph).start("josh").both("knows")
        assert t.heads() == {"marko"}

    def test_co_creator_pattern(self, graph):
        """Who created something marko's acquaintances created?"""
        t = (Traversal(graph).start("marko")
             .out("knows").out("created").in_("created"))
        assert "peter" in t.heads()


class TestFilters:
    def test_filter_predicate(self, graph):
        t = Traversal(graph).start("marko").out().filter(
            lambda p: p.head.startswith("b"))
        assert t.heads() == {"blueprints"}

    def test_simple_filter_removes_revisits(self, graph):
        t = (Traversal(graph).start("marko")
             .out("knows").in_("knows").simple())
        # marko -> josh -> marko revisits marko.
        assert t.count() == 0

    def test_where_head(self, graph):
        t = Traversal(graph).start("marko").out("knows").where_head("josh")
        assert t.heads() == {"josh"}

    def test_where_head_has_property(self):
        g = MultiRelationalGraph()
        g.add_vertex("x", kind="software")
        g.add_vertex("y", kind="person")
        g.add_edge("a", "r", "x")
        g.add_edge("a", "r", "y")
        t = Traversal(g).start("a").out().where_head_has("kind", "software")
        assert t.heads() == {"x"}

    def test_dedup_heads(self, graph):
        t = Traversal(graph).start("josh", "peter").out("created").dedup_heads()
        assert t.count() == len(t.heads())


class TestTerminals:
    def test_count_and_len(self, graph):
        t = Traversal(graph).start("marko").out("knows")
        assert t.count() == len(t) == 2

    def test_iteration(self, graph):
        t = Traversal(graph).start("marko").out("knows")
        assert len(list(t)) == 2

    def test_tails(self, graph):
        t = Traversal(graph).start("marko").out("knows")
        assert t.tails() == {"marko"}

    def test_head_histogram_counts_witness_paths(self, graph):
        t = Traversal(graph).start("marko").out("knows").out("created")
        histogram = t.head_histogram()
        assert histogram["gremlin"] == 2  # via josh and via peter
        assert histogram["frames"] == 1

    def test_start_from_paths_resumes(self, graph):
        first = Traversal(graph).start("marko").out("knows")
        resumed = Traversal(graph).start_from_paths(first.paths()).out("created")
        assert resumed.heads() == {"gremlin", "frames"}
