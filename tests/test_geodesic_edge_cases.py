"""Geodesic edge-case semantics: disconnected graphs, self-loops, singletons.

These pin the dict implementations' behavior — diameter and average path
length range over *reachable ordered pairs only*, self-loops never
contribute distance, and graphs where nothing reaches anything raise
:class:`AlgorithmError` — and then assert the compact CSR sweep reproduces
every case bit for bit, so the port can never silently redefine the
semantics on the boundaries.
"""

import pytest

from repro.algorithms.components import is_weakly_connected
from repro.algorithms.digraph import DiGraph
from repro.algorithms.geodesics import (
    all_pairs_shortest_lengths,
    average_path_length,
    diameter,
    eccentricity,
    shortest_path,
    shortest_path_lengths,
)
from repro.errors import AlgorithmError
from repro.graph.compact import HAVE_NUMPY


@pytest.fixture
def force_compact(monkeypatch):
    monkeypatch.setattr(DiGraph, "_COMPACT_MIN_ORDER", 0)


class TestSingleVertex:
    @pytest.fixture
    def graph(self):
        g = DiGraph()
        g.add_vertex("only")
        return g

    def test_bfs_reaches_only_itself(self, graph):
        assert shortest_path_lengths(graph, "only") == {"only": 0}

    def test_eccentricity_undefined(self, graph):
        with pytest.raises(AlgorithmError):
            eccentricity(graph, "only")

    def test_diameter_undefined(self, graph):
        with pytest.raises(AlgorithmError):
            diameter(graph)

    def test_average_path_length_undefined(self, graph):
        with pytest.raises(AlgorithmError):
            average_path_length(graph)


class TestEdgelessGraph:
    @pytest.fixture
    def graph(self):
        g = DiGraph()
        for v in ("a", "b", "c"):
            g.add_vertex(v)
        return g

    def test_all_pairs_is_reflexive_only(self, graph):
        assert all_pairs_shortest_lengths(graph) == {
            "a": {"a": 0}, "b": {"b": 0}, "c": {"c": 0}}

    def test_diameter_and_average_undefined(self, graph):
        with pytest.raises(AlgorithmError):
            diameter(graph)
        with pytest.raises(AlgorithmError):
            average_path_length(graph)


class TestSelfLoops:
    def test_pure_self_loop_reaches_no_other_vertex(self):
        g = DiGraph([("v", "v")])
        assert shortest_path_lengths(g, "v") == {"v": 0}
        with pytest.raises(AlgorithmError):
            eccentricity(g, "v")
        # The loop edge exists but connects no *pair*: still undefined.
        with pytest.raises(AlgorithmError):
            diameter(g)
        with pytest.raises(AlgorithmError):
            average_path_length(g)

    def test_self_loop_never_inflates_distances(self):
        g = DiGraph([("a", "a"), ("a", "b"), ("b", "c")])
        assert shortest_path_lengths(g, "a") == {"a": 0, "b": 1, "c": 2}
        assert eccentricity(g, "a") == 2
        assert diameter(g) == 2
        # Reachable pairs: a->b (1), a->c (2), b->c (1).
        assert average_path_length(g) == pytest.approx(4.0 / 3.0)


class TestDisconnectedGraphs:
    @pytest.fixture
    def graph(self):
        # Two islands: a 3-chain and a 2-chain.
        return DiGraph([("a1", "a2"), ("a2", "a3"), ("b1", "b2")])

    def test_not_weakly_connected(self, graph):
        assert not is_weakly_connected(graph)

    def test_diameter_ranges_over_reachable_pairs_only(self, graph):
        assert diameter(graph) == 2

    def test_average_over_reachable_pairs_only(self, graph):
        # Pairs: a1->a2 (1), a1->a3 (2), a2->a3 (1), b1->b2 (1).
        assert average_path_length(graph) == pytest.approx(5.0 / 4.0)

    def test_cross_island_paths_do_not_exist(self, graph):
        assert shortest_path(graph, "a1", "b2") is None
        assert "b2" not in shortest_path_lengths(graph, "a1")

    def test_sink_vertex_has_undefined_eccentricity(self, graph):
        with pytest.raises(AlgorithmError):
            eccentricity(graph, "a3")


@pytest.mark.skipif(not HAVE_NUMPY, reason="compact geodesic sweep needs numpy")
class TestCompactParityOnEdgeCases:
    """The CSR sweep must agree with the dict semantics on every boundary."""

    CASES = [
        lambda: DiGraph([("v", "v")]),
        lambda: DiGraph([("a", "a"), ("a", "b"), ("b", "c")]),
        lambda: DiGraph([("a1", "a2"), ("a2", "a3"), ("b1", "b2")]),
    ]

    @pytest.mark.parametrize("build", CASES)
    def test_compact_matches_dict_semantics(self, build, force_compact,
                                            monkeypatch):
        compact_graph = build()
        reference_graph = build()
        monkeypatch.setattr(DiGraph, "_COMPACT_MIN_ORDER", 0)
        results = {}
        for name, graph, threshold in (("compact", compact_graph, 0),
                                       ("dict", reference_graph, 10 ** 9)):
            monkeypatch.setattr(DiGraph, "_COMPACT_MIN_ORDER", threshold)
            try:
                result = (diameter(graph), average_path_length(graph))
            except AlgorithmError:
                result = "undefined"
            results[name] = result
        assert results["compact"] == results["dict"]

    def test_single_vertex_compact_path_raises_too(self, force_compact):
        g = DiGraph()
        g.add_vertex("only")
        with pytest.raises(AlgorithmError):
            diameter(g)
        with pytest.raises(AlgorithmError):
            average_path_length(g)
