"""Equivalence and lifecycle tests for the compact adjacency backend.

Every compact kernel must agree exactly with its seed (hash-index / dict)
reference implementation on random generated graphs — the compact backend
is a performance representation, never a semantic change.
"""

import random

import pytest

from repro.algorithms.components import (
    _weakly_connected_components_unionfind,
    weakly_connected_components,
)
from repro.algorithms.digraph import DiGraph
from repro.algorithms.pagerank import pagerank
from repro.graph.compact import (
    HAVE_NUMPY,
    CompactAdjacency,
    adjacency_snapshot,
    digraph_snapshot,
)
from repro.graph.generators import (
    cycle_graph,
    layered_graph,
    preferential_attachment,
    uniform_random,
)
from repro.rpq import (
    lconcat,
    lstar,
    lunion,
    rpq_pairs,
    rpq_pairs_basic,
    rpq_paths,
    sym,
)

EXPRESSIONS = [
    lconcat(sym("alpha"), sym("beta")),
    lconcat(sym("alpha"), lstar(sym("beta"))),
    lunion(lconcat(sym("alpha"), sym("beta")), lstar(sym("gamma"))),
    lstar(lunion(sym("alpha"), sym("beta"))),
]

GRAPHS = [
    uniform_random(40, 200, seed=3),
    uniform_random(80, 240, seed=11),
    preferential_attachment(60, edges_per_vertex=3, seed=7),
    layered_graph(4, 6, seed=9, connection_probability=0.5),
    cycle_graph(12, labels=("alpha",)),
]


class TestCompactAdjacencySnapshot:
    def test_neighbors_match_graph_indices(self):
        graph = uniform_random(30, 150, seed=1)
        snapshot = adjacency_snapshot(graph)
        for vertex in graph.vertices():
            vid = snapshot.vertex_ids[vertex]
            for label in graph.labels():
                lid = snapshot.label_ids[label]
                out = {snapshot.vertex_of[n]
                       for n in snapshot.out_neighbors(vid, lid)}
                assert out == set(graph.successors(vertex, label))
                into = {snapshot.vertex_of[n]
                        for n in snapshot.in_neighbors(vid, lid)}
                assert into == set(graph.predecessors(vertex, label))

    def test_snapshot_is_cached_until_mutation(self):
        graph = uniform_random(20, 60, seed=2)
        first = adjacency_snapshot(graph)
        assert adjacency_snapshot(graph) is first
        graph.add_edge("fresh", "alpha", "fresh2")
        second = adjacency_snapshot(graph)
        assert second is not first
        assert second.version == graph.version()
        assert "fresh" in second.vertex_ids

    def test_snapshot_covers_isolated_vertices(self):
        graph = uniform_random(10, 20, seed=4)
        graph.add_vertex("loner")
        snapshot = adjacency_snapshot(graph)
        assert "loner" in snapshot.vertex_ids
        assert snapshot.num_vertices == graph.order()

    def test_snapshot_reflects_removals(self):
        graph = cycle_graph(5, labels=("alpha",))
        adjacency_snapshot(graph)
        graph.remove_vertex(0)
        snapshot = adjacency_snapshot(graph)
        assert 0 not in snapshot.vertex_ids
        assert snapshot.num_edges == graph.size()


class TestRpqPairsEquivalence:
    @pytest.mark.parametrize("index", range(len(GRAPHS)))
    def test_all_sources_agree_with_reference(self, index):
        graph = GRAPHS[index]
        for expression in EXPRESSIONS:
            assert rpq_pairs(graph, expression) == \
                rpq_pairs_basic(graph, expression)

    def test_source_subsets_agree_with_reference(self):
        graph = uniform_random(50, 250, seed=21)
        rng = random.Random(0)
        vertices = sorted(graph.vertices(), key=repr)
        for expression in EXPRESSIONS:
            sources = frozenset(rng.sample(vertices, 12))
            assert rpq_pairs(graph, expression, sources=sources) == \
                rpq_pairs_basic(graph, expression, sources=sources)

    def test_unknown_sources_are_skipped(self):
        graph = uniform_random(20, 60, seed=5)
        sources = frozenset({"not-a-vertex", 0, 1})
        for expression in EXPRESSIONS:
            assert rpq_pairs(graph, expression, sources=sources) == \
                rpq_pairs_basic(graph, expression, sources=sources)

    def test_unknown_labels_never_fire(self):
        graph = uniform_random(15, 40, labels=("alpha",), seed=6)
        expression = lconcat(sym("alpha"), sym("no_such_label"))
        assert rpq_pairs(graph, expression) == \
            rpq_pairs_basic(graph, expression) == frozenset()

    def test_empty_graph(self):
        graph = uniform_random(3, 0, seed=0)
        assert rpq_pairs(graph, lstar(sym("alpha"))) == \
            rpq_pairs_basic(graph, lstar(sym("alpha")))

    def test_mutation_between_queries_is_respected(self):
        graph = cycle_graph(6, labels=("alpha",))
        expression = lstar(sym("alpha"))
        before = rpq_pairs(graph, expression)
        graph.remove_vertex(0)
        after = rpq_pairs(graph, expression)
        assert after == rpq_pairs_basic(graph, expression)
        assert after != before


def _rpq_paths_reference(graph, expression, max_length, sources=None):
    """The seed rpq_paths, with its (redundant) path-carrying seen set."""
    from collections import deque

    from repro.core.path import EPSILON, Path
    from repro.core.pathset import PathSet
    from repro.rpq.evaluation import compile_rpq

    dfa = compile_rpq(expression, graph)
    start_vertices = graph.vertices() if sources is None else sources
    out = set()
    queue = deque()
    seen = set()
    for source in start_vertices:
        if not graph.has_vertex(source):
            continue
        config = (source, dfa.start, EPSILON)
        seen.add(config)
        queue.append(config)
        if dfa.start in dfa.accepting:
            out.add(EPSILON)
    while queue:
        vertex, state, path = queue.popleft()
        if len(path) >= max_length:
            continue
        for e in graph.match(tail=vertex):
            next_state = dfa.step(state, e.label)
            if next_state is None:
                continue
            grown = path.concat(Path((e,)))
            config = (e.head, next_state, grown)
            if config in seen:
                continue
            seen.add(config)
            if next_state in dfa.accepting:
                out.add(grown)
            queue.append(config)
    return PathSet(out)


class TestRpqPathsNoSeenSet:
    """The seen set was pure memory overhead: results must be unchanged."""

    @pytest.mark.parametrize("index", range(len(GRAPHS)))
    def test_results_match_seed_reference(self, index):
        graph = GRAPHS[index]
        for expression in EXPRESSIONS:
            assert rpq_paths(graph, expression, 4) == \
                _rpq_paths_reference(graph, expression, 4)

    def test_diamond_fanout_counts_every_witness_once(self):
        # k stacked diamonds: exactly 2^k distinct witness paths, and the
        # BFS (with no dedup set at all) must enumerate each exactly once.
        from repro.graph.graph import MultiRelationalGraph
        k = 6
        g = MultiRelationalGraph()
        for layer in range(k):
            g.add_edge(("v", layer), "alpha", ("u", layer, 0))
            g.add_edge(("v", layer), "alpha", ("u", layer, 1))
            g.add_edge(("u", layer, 0), "alpha", ("v", layer + 1))
            g.add_edge(("u", layer, 1), "alpha", ("v", layer + 1))
        paths = rpq_paths(g, lstar(sym("alpha")), 2 * k,
                          sources=frozenset({("v", 0)}))
        full = [p for p in paths if len(p) == 2 * k]
        assert len(full) == 2 ** k


@pytest.mark.skipif(not HAVE_NUMPY, reason="vectorized kernels need numpy")
class TestCompactDiGraphKernels:
    @pytest.fixture(scope="class")
    def digraph(self):
        rng = random.Random(99)
        graph = DiGraph()
        for v in range(300):
            graph.add_vertex(v)
        while graph.size() < 1500:
            graph.add_edge(rng.randrange(300), rng.randrange(300),
                           rng.choice((0.5, 1.0, 2.0)))
        # A detached island plus isolated vertices exercise multi-component
        # code paths.
        graph.add_edge("island-a", "island-b")
        graph.add_edge("island-b", "island-c")
        graph.add_vertex("alone")
        return graph

    def test_digraph_is_above_fast_path_threshold(self, digraph):
        assert digraph.order() >= DiGraph._COMPACT_MIN_ORDER

    def test_bfs_distances_matches_dict_bfs(self, digraph):
        for source in [0, 17, 123, "island-a", "alone"]:
            assert digraph.bfs_distances(source) == \
                digraph._bfs_distances_dict(source)

    def test_components_match_union_find(self, digraph):
        assert weakly_connected_components(digraph) == \
            _weakly_connected_components_unionfind(digraph)

    def test_pagerank_matches_dict_fallback(self, digraph):
        fast = pagerank(digraph)
        original = DiGraph._COMPACT_MIN_ORDER
        DiGraph._COMPACT_MIN_ORDER = digraph.order() + 1
        try:
            slow = pagerank(digraph)
        finally:
            DiGraph._COMPACT_MIN_ORDER = original
        assert set(fast) == set(slow)
        assert max(abs(fast[v] - slow[v]) for v in fast) < 1.0e-9

    def test_pagerank_personalized_matches_dict_fallback(self, digraph):
        seeds = {0: 2.0, 17: 1.0, "missing-vertex": 1.0}
        fast = pagerank(digraph, personalization=seeds)
        original = DiGraph._COMPACT_MIN_ORDER
        DiGraph._COMPACT_MIN_ORDER = digraph.order() + 1
        try:
            slow = pagerank(digraph, personalization=seeds)
        finally:
            DiGraph._COMPACT_MIN_ORDER = original
        assert max(abs(fast[v] - slow[v]) for v in fast) < 1.0e-9

    def test_digraph_snapshot_invalidated_by_mutation(self):
        graph = DiGraph((i, i + 1) for i in range(10))
        first = digraph_snapshot(graph)
        assert digraph_snapshot(graph) is first
        graph.add_edge(3, 9)
        second = digraph_snapshot(graph)
        assert second is not first
        assert second.version == graph.version()


class TestEnginePairsFastPath:
    @pytest.fixture(scope="class")
    def engine(self):
        from repro.engine import Engine
        return Engine(uniform_random(40, 200, seed=33))

    def test_label_only_query_matches_reference(self, engine):
        query = "[_, alpha, _] . [_, beta, _]*"
        expected = rpq_pairs_basic(
            engine.graph, lconcat(sym("alpha"), lstar(sym("beta"))))
        assert engine.pairs(query) == expected

    def test_sources_filter(self, engine):
        sources = frozenset(list(engine.graph.vertices())[:7])
        query = "[_, alpha, _]*"
        expected = rpq_pairs_basic(engine.graph, lstar(sym("alpha")),
                                   sources=sources)
        assert engine.pairs(query, sources=sources) == expected

    def test_fallback_for_vertex_bound_atoms(self, engine):
        vertex = next(iter(engine.graph.vertices()))
        query_pairs = engine.pairs("[{}, alpha, _]".format(vertex))
        assert all(tail == vertex for tail, _ in query_pairs)
        expected = {(e.tail, e.head)
                    for e in engine.graph.match(tail=vertex, label="alpha")}
        assert query_pairs == frozenset(expected)

    def test_explicit_max_length_bounds_even_label_only_queries(self):
        from repro.engine import Engine
        from repro.graph.graph import MultiRelationalGraph
        chain = MultiRelationalGraph([("v1", "a", "v2"), ("v2", "a", "v3")])
        engine = Engine(chain)
        unbounded = engine.pairs("[_, a, _] . [_, a, _]*")
        assert ("v1", "v3") in unbounded
        bounded = engine.pairs("[_, a, _] . [_, a, _]*", max_length=1)
        assert ("v1", "v3") not in bounded
        assert ("v1", "v2") in bounded

    def test_explain_reports_eligibility(self, engine):
        eligible = engine.explain("[_, alpha, _] . [_, beta, _]")
        assert "pairs fast path: eligible" in eligible
        assert "pairs direction:" in eligible
        bound = engine.explain("[3, alpha, _]")
        assert "pairs fast path: eligible" in bound
        assert "vertex-bound lowering (source=3)" in bound
        # An interior-bound vertex still needs the edge-set algebra.
        ineligible = engine.explain("[_, alpha, 3] . [_, beta, _]")
        assert "pairs fast path: not eligible" in ineligible


class TestLowerToLabelExpression:
    def test_round_trip_with_lift(self):
        from repro.rpq import lift_to_edge_expression, lower_to_label_expression
        for expression in EXPRESSIONS:
            lifted = lift_to_edge_expression(expression)
            lowered = lower_to_label_expression(lifted)
            assert lowered is not None
            # Equivalent by construction: identical pair answers everywhere.
            for graph in GRAPHS[:2]:
                assert rpq_pairs(graph, lowered) == rpq_pairs(graph, expression)

    def test_rejects_vertex_bound_atoms_literals_products(self):
        from repro.regex import atom, join, literal, star
        from repro.rpq import lower_to_label_expression
        assert lower_to_label_expression(atom(tail="i", label="a")) is None
        assert lower_to_label_expression(atom()) is None
        assert lower_to_label_expression(
            join(atom(label="a"), atom(head="j"))) is None
        assert lower_to_label_expression(
            literal([("i", "a", "j")])) is None
        assert lower_to_label_expression(
            atom(label="a") * atom(label="b")) is None

    def test_bounded_repeat_expansion(self):
        from repro.regex import atom
        from repro.rpq import lower_to_label_expression
        from repro.rpq.labelregex import accepts_label_word
        lowered = lower_to_label_expression(atom(label="a").repeat(1, 3))
        assert lowered is not None
        assert not accepts_label_word(lowered, [])
        assert accepts_label_word(lowered, ["a"])
        assert accepts_label_word(lowered, ["a", "a", "a"])
        assert not accepts_label_word(lowered, ["a", "a", "a", "a"])

    def test_unbounded_repeat_becomes_star_tail(self):
        from repro.regex import atom
        from repro.rpq import lower_to_label_expression
        from repro.rpq.labelregex import accepts_label_word
        lowered = lower_to_label_expression(atom(label="a").repeat(2, None))
        assert lowered is not None
        assert not accepts_label_word(lowered, ["a"])
        assert accepts_label_word(lowered, ["a"] * 2)
        assert accepts_label_word(lowered, ["a"] * 7)
