"""Graph statistics tests."""

import pytest

from repro.graph import statistics
from repro.graph.generators import star_graph
from repro.graph.graph import MultiRelationalGraph


@pytest.fixture
def graph():
    return MultiRelationalGraph([
        ("a", "r", "b"),
        ("b", "r", "a"),
        ("a", "s", "b"),
        ("b", "s", "c"),
        ("c", "s", "c"),
    ])


class TestDistributions:
    def test_degree_distribution_out(self, graph):
        dist = statistics.degree_distribution(graph, "out")
        assert dist == {2: 2, 1: 1}  # a and b emit 2 edges, c emits 1

    def test_degree_distribution_in(self, graph):
        dist = statistics.degree_distribution(graph, "in")
        assert dist == {1: 1, 2: 2}

    def test_degree_distribution_total(self, graph):
        dist = statistics.degree_distribution(graph, "total")
        assert sum(k * v for k, v in dist.items()) == 2 * graph.size()

    def test_invalid_direction(self, graph):
        with pytest.raises(ValueError):
            statistics.degree_distribution(graph, "sideways")

    def test_label_distribution_sums_to_one(self, graph):
        dist = statistics.label_distribution(graph)
        assert abs(sum(dist.values()) - 1.0) < 1e-12
        assert dist["s"] == 0.6

    def test_label_distribution_empty_graph(self):
        assert statistics.label_distribution(MultiRelationalGraph()) == {}


class TestScalars:
    def test_mean_out_degree(self, graph):
        assert statistics.mean_out_degree(graph) == pytest.approx(5 / 3)

    def test_mean_out_degree_by_label(self, graph):
        per_label = statistics.mean_out_degree_by_label(graph)
        assert per_label["r"] == pytest.approx(2 / 3)
        assert per_label["s"] == pytest.approx(1.0)

    def test_fan_out_ignores_vertices_without_label(self):
        g = star_graph(4, label="r")
        g.add_vertex("isolated")
        assert statistics.fan_out(g, "r") == 4.0

    def test_fan_out_missing_label(self, graph):
        assert statistics.fan_out(graph, "nope") == 0.0

    def test_reciprocity(self, graph):
        # (a,r,b)/(b,r,a) reciprocate; (c,s,c) is its own reverse.
        assert statistics.reciprocity(graph) == pytest.approx(3 / 5)

    def test_loop_count(self, graph):
        assert statistics.loop_count(graph) == 1

    def test_multiplicity_distribution(self, graph):
        dist = statistics.multiplicity_distribution(graph)
        # (a,b) has 2 labels; (b,a), (b,c), (c,c) have 1 each.
        assert dist == {1: 3, 2: 1}


class TestSummary:
    def test_summarize_keys(self, graph):
        summary = statistics.summarize(graph)
        for key in ("vertices", "edges", "labels", "density",
                    "mean_out_degree", "label_histogram", "reciprocity", "loops"):
            assert key in summary
        assert summary["vertices"] == 3
        assert summary["edges"] == 5
