"""Tests for path generation (section IV-B): per-path search and stack automaton."""

import pytest

from repro.automata import Recognizer, StackAutomaton, generate_paths
from repro.core.path import EPSILON as EPSILON_PATH
from repro.core.path import Path
from repro.errors import AutomatonError
from repro.graph.graph import MultiRelationalGraph
from repro.regex import (
    EMPTY,
    EPSILON,
    atom,
    evaluate,
    join,
    literal,
    optional,
    plus,
    power,
    product,
    star,
    union,
)


@pytest.fixture
def graph():
    return MultiRelationalGraph([
        ("a", "x", "b"),
        ("b", "y", "c"),
        ("b", "y", "b"),
        ("c", "x", "d"),
        ("p", "y", "q"),
    ])


class TestGeneratePaths:
    def test_atom_generates_its_edge_set(self, graph):
        result = generate_paths(graph, atom(label="x"), 4)
        assert result == graph.edges(label="x")

    def test_empty_generates_nothing(self, graph):
        assert len(generate_paths(graph, EMPTY, 4)) == 0

    def test_epsilon_generates_epsilon(self, graph):
        result = generate_paths(graph, EPSILON, 4)
        assert result == {EPSILON_PATH}

    def test_join_chain(self, graph):
        result = generate_paths(graph, join(atom(label="x"), atom(label="y")), 4)
        expected = {
            Path.of(("a", "x", "b"), ("b", "y", "c")),
            Path.of(("a", "x", "b"), ("b", "y", "b")),
        }
        assert result == expected

    def test_star_respects_bound(self, graph):
        result = generate_paths(graph, star(atom(label="y")), 3)
        assert all(len(p) <= 3 for p in result)
        assert EPSILON_PATH in result
        # The loop (b,y,b) makes arbitrarily long paths; bound must cut.
        assert max(len(p) for p in result) == 3

    def test_product_generates_disjoint(self, graph):
        result = generate_paths(graph, product(atom(label="x"), atom(label="y")), 4)
        disjoint = [p for p in result if not p.is_joint]
        assert disjoint  # (a,x,b)o(p,y,q) among others

    def test_literal_generated_even_if_not_in_graph(self, graph):
        result = generate_paths(graph, literal(("zz", "r", "ww")), 4)
        assert len(result) == 1

    def test_agreement_with_reference_evaluator(self, graph):
        expressions = [
            atom(label="x"),
            join(atom(label="x"), atom(label="y")),
            join(atom(label="x"), star(atom(label="y"))),
            union(atom(label="x"), plus(atom(label="y"))),
            product(atom(label="x"), atom(label="y")),
            join(atom(label="x"), optional(atom(label="y")), atom(label="x")),
            power(atom(label="y"), 2),
        ]
        for expr in expressions:
            assert generate_paths(graph, expr, 5) == evaluate(expr, graph, 5), str(expr)

    def test_generated_paths_are_recognized(self, graph):
        expr = join(atom(label="x"), star(atom(label="y")), atom(label="x"))
        recognizer = Recognizer(expr, graph)
        for p in generate_paths(graph, expr, 6):
            assert recognizer.accepts(p)

    def test_negative_bound_rejected(self, graph):
        with pytest.raises(AutomatonError):
            generate_paths(graph, atom(), -1)

    def test_zero_bound_keeps_only_epsilon(self, graph):
        assert generate_paths(graph, star(atom()), 0) == {EPSILON_PATH}


class TestStackAutomaton:
    def test_matches_per_path_generator(self, graph):
        expressions = [
            join(atom(label="x"), atom(label="y")),
            join(atom(label="x"), star(atom(label="y"))),
            union(atom(label="x"), atom(label="y")),
            product(atom(label="x"), atom(label="y")),
        ]
        for expr in expressions:
            stack_result = StackAutomaton(expr, graph).run(5)
            per_path = generate_paths(graph, expr, 5)
            assert stack_result == per_path, str(expr)

    def test_empty_branch_halts(self, graph):
        """A branch whose stack set empties must halt (the paper's rule)."""
        expr = join(atom(label="x"), atom(label="zz"))
        assert len(StackAutomaton(expr, graph).run(5)) == 0

    def test_bound_validation(self, graph):
        with pytest.raises(AutomatonError):
            StackAutomaton(atom(), graph).run(-1)

    def test_repr(self, graph):
        assert "StackAutomaton" in repr(StackAutomaton(atom(), graph))
