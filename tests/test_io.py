"""Serialization tests: triple CSV, JSON, GraphML round trips and errors."""

import io

import pytest

from repro.errors import SerializationError
from repro.graph import io as graph_io
from repro.graph.graph import MultiRelationalGraph


@pytest.fixture
def graph():
    g = MultiRelationalGraph(name="demo")
    g.add_vertex("a", kind="person")
    g.add_edge("a", "knows", "b", since=2020)
    g.add_edge("b", "created", "c")
    return g


class TestTriples:
    def test_round_trip(self, graph):
        text = graph_io.to_triple_text(graph)
        back = graph_io.from_triple_text(text)
        assert back.edge_set() == graph.edge_set()

    def test_text_format(self, graph):
        text = graph_io.to_triple_text(graph)
        assert "a,knows,b" in text

    def test_file_round_trip(self, graph, tmp_path):
        target = str(tmp_path / "edges.csv")
        graph_io.write_triples(graph, target)
        back = graph_io.read_triples(target)
        assert back.size() == 2

    def test_bad_field_count_raises_with_line(self):
        with pytest.raises(SerializationError) as info:
            graph_io.from_triple_text("a,knows\n")
        assert "line 1" in str(info.value)

    def test_blank_lines_skipped(self):
        back = graph_io.from_triple_text("a,r,b\n\nb,r,c\n")
        assert back.size() == 2

    def test_triples_lose_properties_by_design(self, graph):
        back = graph_io.from_triple_text(graph_io.to_triple_text(graph))
        assert back.vertex_properties("a") == {}


class TestJson:
    def test_round_trip_preserves_everything(self, graph):
        data = graph_io.to_json_dict(graph)
        back = graph_io.from_json_dict(data)
        assert back == graph
        assert back.vertex_properties("a") == {"kind": "person"}
        assert back.edge_properties("a", "knows", "b") == {"since": 2020}
        assert back.name == "demo"

    def test_file_round_trip(self, graph, tmp_path):
        target = str(tmp_path / "graph.json")
        graph_io.write_json(graph, target)
        back = graph_io.read_json(target)
        assert back == graph

    def test_isolated_vertices_survive(self):
        g = MultiRelationalGraph()
        g.add_vertex("lonely")
        back = graph_io.from_json_dict(graph_io.to_json_dict(g))
        assert back.has_vertex("lonely")

    def test_unknown_format_marker_rejected(self):
        with pytest.raises(SerializationError):
            graph_io.from_json_dict({"format": "something-else"})

    def test_non_object_rejected(self):
        with pytest.raises(SerializationError):
            graph_io.from_json_dict([1, 2, 3])

    def test_edge_missing_fields_rejected(self):
        data = {"format": "repro-multirelational-v1",
                "edges": [{"tail": "a", "head": "b"}]}
        with pytest.raises(SerializationError) as info:
            graph_io.from_json_dict(data)
        assert "label" in str(info.value)

    def test_vertex_missing_id_rejected(self):
        data = {"format": "repro-multirelational-v1",
                "vertices": [{"properties": {}}]}
        with pytest.raises(SerializationError):
            graph_io.from_json_dict(data)

    def test_invalid_json_stream(self):
        with pytest.raises(SerializationError):
            graph_io.read_json(io.StringIO("{not json"))


class TestGraphML:
    def test_round_trip_structure(self, graph):
        buffer = io.StringIO()
        graph_io.write_graphml(graph, buffer)
        back = graph_io.read_graphml(io.StringIO(buffer.getvalue()))
        assert back.has_edge("a", "knows", "b")
        assert back.has_edge("b", "created", "c")
        assert back.size() == 2

    def test_output_is_xml_with_namespace(self, graph):
        buffer = io.StringIO()
        graph_io.write_graphml(graph, buffer)
        text = buffer.getvalue()
        assert text.startswith("<?xml")
        assert "graphml.graphdrawing.org" in text

    def test_vertices_are_stringified(self):
        g = MultiRelationalGraph([(1, "r", 2)])
        buffer = io.StringIO()
        graph_io.write_graphml(g, buffer)
        back = graph_io.read_graphml(io.StringIO(buffer.getvalue()))
        assert back.has_edge("1", "r", "2")

    def test_unlabeled_edges_get_default_label(self):
        doc = (
            '<?xml version="1.0"?>'
            '<graphml><graph id="G" edgedefault="directed">'
            '<node id="a"/><node id="b"/>'
            '<edge source="a" target="b"/>'
            "</graph></graphml>"
        )
        back = graph_io.read_graphml(io.StringIO(doc))
        assert back.has_edge("a", "edge", "b")

    def test_invalid_xml_rejected(self):
        with pytest.raises(SerializationError):
            graph_io.read_graphml(io.StringIO("<graphml><unclosed"))

    def test_document_without_graph_rejected(self):
        with pytest.raises(SerializationError):
            graph_io.read_graphml(io.StringIO("<?xml version='1.0'?><graphml/>"))

    def test_file_round_trip(self, graph, tmp_path):
        target = str(tmp_path / "graph.graphml")
        graph_io.write_graphml(graph, target)
        back = graph_io.read_graphml(target)
        assert back.size() == 2
