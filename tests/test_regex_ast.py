"""Tests for the regular path expression AST: construction, laws, evaluation."""

import pytest

from repro.core.path import EPSILON as EPSILON_PATH
from repro.core.path import Path
from repro.core.pathset import PathSet
from repro.errors import RegexError
from repro.graph.graph import MultiRelationalGraph
from repro.regex import (
    EMPTY,
    EPSILON,
    Atom,
    Join,
    Literal,
    Product,
    Repeat,
    Star,
    Union,
    atom,
    evaluate,
    join,
    literal,
    optional,
    plus,
    power,
    product,
    star,
    union,
)


@pytest.fixture
def graph(diamond):
    return diamond


class TestConstruction:
    def test_atom_wildcards(self):
        a = atom(label="alpha")
        assert a.tail is None and a.head is None and a.label == "alpha"

    def test_atom_str_uses_paper_notation(self):
        assert str(atom(tail="i", label="a")) == "[i, a, _]"
        assert str(atom()) == "[_, _, _]"

    def test_literal_holds_path_set(self):
        lit = literal(("j", "a", "i"))
        assert Path.single("j", "a", "i") in lit.path_set

    def test_operator_sugar(self):
        a, b = atom(label="x"), atom(label="y")
        assert isinstance(a | b, Union)
        assert isinstance(a @ b, Join)
        assert isinstance(a * b, Product)
        assert isinstance(a.star(), Star)
        assert isinstance(a ** 3, Repeat)

    def test_builders_flatten_trivial_cases(self):
        a = atom(label="x")
        assert union(a) is a
        assert join(a) is a
        assert union() == EMPTY
        assert join() == EPSILON

    def test_nodes_are_immutable(self):
        a = atom(label="x")
        with pytest.raises(AttributeError):
            a.label = "y"

    def test_equality_is_structural(self):
        assert atom(label="x") == atom(label="x")
        assert join(atom(label="x"), atom(label="y")) == \
            Join((atom(label="x"), atom(label="y")))

    def test_hashable(self):
        exprs = {atom(label="x"), atom(label="x"), atom(label="y")}
        assert len(exprs) == 2

    def test_power_validation(self):
        with pytest.raises(RegexError):
            atom() ** -1

    def test_repeat_validation(self):
        with pytest.raises(RegexError):
            Repeat(atom(), 3, 2)

    def test_size_and_depth(self):
        expr = join(atom(label="x"), star(atom(label="y")))
        assert expr.size() == 4
        assert expr.depth() == 3

    def test_atoms_enumeration(self):
        expr = join(atom(label="x"), union(atom(label="y"), literal(("a", "b", "c"))))
        assert len(expr.atoms()) == 3


class TestNullability:
    def test_constants(self):
        assert not EMPTY.nullable
        assert EPSILON.nullable

    def test_atom_never_nullable(self):
        assert not atom().nullable

    def test_literal_nullable_iff_contains_epsilon(self):
        assert not literal(("a", "x", "b")).nullable
        assert Literal(PathSet([EPSILON_PATH])).nullable

    def test_star_always_nullable(self):
        assert star(atom()).nullable

    def test_union_any(self):
        assert union(atom(), EPSILON).nullable
        assert not union(atom(), atom()).nullable

    def test_join_all(self):
        assert not join(atom(), star(atom())).nullable
        assert join(star(atom()), optional(atom())).nullable

    def test_repeat_nullable_when_min_zero(self):
        assert optional(atom()).nullable
        assert not plus(atom()).nullable


class TestSimplification:
    def test_union_drops_empty(self):
        assert union(atom(label="x"), EMPTY).simplified() == atom(label="x")

    def test_union_flattens_and_dedupes(self):
        nested = Union((Union((atom(label="x"), atom(label="x"))), atom(label="y")))
        simplified = nested.simplified()
        assert simplified == Union((atom(label="x"), atom(label="y")))

    def test_join_with_empty_is_empty(self):
        assert join(atom(), EMPTY).simplified() == EMPTY

    def test_join_drops_epsilon(self):
        assert join(EPSILON, atom(label="x"), EPSILON).simplified() == atom(label="x")

    def test_star_of_star_collapses(self):
        assert Star(Star(atom())).simplified() == Star(atom())

    def test_star_of_empty_and_epsilon(self):
        assert Star(EMPTY).simplified() == EPSILON
        assert Star(EPSILON).simplified() == EPSILON

    def test_repeat_once_collapses(self):
        assert Repeat(atom(label="x"), 1, 1).simplified() == atom(label="x")

    def test_repeat_unbounded_from_zero_is_star(self):
        assert Repeat(atom(label="x"), 0, None).simplified() == Star(atom(label="x"))

    def test_simplification_preserves_language(self, graph):
        expr = join(EPSILON, union(atom(label="alpha"), EMPTY),
                    Star(Star(atom(label="beta"))))
        assert evaluate(expr, graph, 4) == evaluate(expr.simplified(), graph, 4)


class TestRepeatExpansion:
    def test_exact_power(self):
        expanded = Repeat(atom(label="x"), 2, 2).expand()
        assert expanded == Join((atom(label="x"), atom(label="x")))

    def test_unbounded_tail(self):
        expanded = Repeat(atom(label="x"), 1, None).expand()
        assert expanded == Join((atom(label="x"), Star(atom(label="x"))))

    def test_optional_range(self):
        expanded = Repeat(atom(label="x"), 1, 2).expand()
        assert expanded == Join((atom(label="x"),
                                 Union((atom(label="x"), EPSILON))))

    def test_zero_is_epsilon(self):
        assert Repeat(atom(), 0, 0).expand() == EPSILON


class TestEvaluation:
    def test_empty(self, graph):
        assert evaluate(EMPTY, graph, 5) == PathSet.empty()

    def test_epsilon(self, graph):
        assert evaluate(EPSILON, graph, 5) == PathSet.epsilon()

    def test_atom_resolution(self, graph):
        assert len(evaluate(atom(label="alpha"), graph, 5)) == 2

    def test_literal_is_graph_independent(self, graph):
        lit = literal(("not", "in", "graph"))
        assert len(evaluate(lit, graph, 5)) == 1

    def test_join_filters_adjacency(self, graph):
        result = evaluate(join(atom(label="alpha"), atom(label="beta")), graph, 5)
        assert len(result) == 2
        assert all(p.is_joint for p in result)

    def test_product_keeps_disjoint(self, graph):
        result = evaluate(product(atom(label="alpha"), atom(label="beta")), graph, 5)
        assert len(result) == 6  # 2 alpha x 3 beta

    def test_union(self, graph):
        result = evaluate(union(atom(label="alpha"), atom(label="beta")), graph, 5)
        assert len(result) == 5

    def test_star_bounded(self, triangle_cycle):
        result = evaluate(star(atom()), triangle_cycle, 4)
        assert len(result) == 1 + 3 * 4

    def test_plus_excludes_epsilon(self, triangle_cycle):
        result = evaluate(plus(atom()), triangle_cycle, 3)
        assert EPSILON_PATH not in result

    def test_optional_includes_epsilon(self, graph):
        result = evaluate(optional(atom(label="alpha")), graph, 5)
        assert EPSILON_PATH in result
        assert len(result) == 3

    def test_power(self, triangle_cycle):
        result = evaluate(power(atom(), 3), triangle_cycle, 5)
        assert len(result) == 3
        assert all(len(p) == 3 for p in result)

    def test_range_repeat(self, triangle_cycle):
        result = evaluate(Repeat(atom(), 1, 2), triangle_cycle, 5)
        assert {len(p) for p in result} == {1, 2}

    def test_max_length_truncates(self, triangle_cycle):
        result = evaluate(star(atom()), triangle_cycle, 2)
        assert all(len(p) <= 2 for p in result)

    def test_negative_bound_rejected(self, graph):
        with pytest.raises(RegexError):
            evaluate(atom(), graph, -1)
