"""Run the executable examples embedded in module docstrings.

Docstring examples are part of the documentation deliverable; this keeps
them honest.  Only modules whose docstrings contain self-contained
doctests are listed (modules with illustrative-but-stateful snippets are
deliberately excluded).
"""

import doctest
import importlib

import pytest

DOCTESTED_MODULES = [
    "repro",
    "repro.core.edge",
    "repro.core.path",
    "repro.core.pathset",
    "repro.core.fluent",
    "repro.graph.graph",
    "repro.engine.engine",
    "repro.pattern.bgp",
]


@pytest.mark.parametrize("module_name", DOCTESTED_MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, "{} doctest failures in {}".format(
        results.failed, module_name)


def test_doctests_were_actually_found():
    total = 0
    for module_name in DOCTESTED_MODULES:
        module = importlib.import_module(module_name)
        finder = doctest.DocTestFinder()
        total += sum(len(t.examples) for t in finder.find(module))
    assert total >= 10, "expected a healthy number of doctest examples"
