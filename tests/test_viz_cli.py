"""Tests for DOT rendering and the command-line interface."""

import io
import json

import pytest

from repro.automata import build_nfa
from repro.cli import build_parser, load_graph, main
from repro.datasets.paper import figure1_expression
from repro.graph import io as graph_io
from repro.graph.graph import MultiRelationalGraph
from repro.viz import graph_to_dot, nfa_to_dot


@pytest.fixture
def graph():
    g = MultiRelationalGraph(name="demo")
    g.add_vertex("a", kind="person")
    g.add_vertex("b", kind="software")
    g.add_edge("a", "created", "b")
    g.add_edge("a", "knows", "a")
    return g


class TestGraphDot:
    def test_digraph_structure(self, graph):
        dot = graph_to_dot(graph)
        assert dot.startswith('digraph "demo" {')
        assert dot.endswith("}")
        assert '"a" -> "b"' in dot
        assert 'label="created"' in dot

    def test_kinds_get_shapes(self, graph):
        dot = graph_to_dot(graph)
        assert "shape=" in dot

    def test_labels_get_distinct_colors(self, graph):
        dot = graph_to_dot(graph)
        colors = {line.split("color=")[1].split(",")[0]
                  for line in dot.splitlines() if "color=" in line}
        assert len(colors) == 2  # created and knows

    def test_quoting_of_awkward_names(self):
        g = MultiRelationalGraph([('he said "hi"', "r", "b")])
        dot = graph_to_dot(g)
        assert '\\"hi\\"' in dot

    def test_color_labels_off(self, graph):
        dot = graph_to_dot(graph, color_labels=False)
        assert "color=" not in dot


class TestNfaDot:
    def test_figure1_nfa_renders(self):
        nfa = build_nfa(figure1_expression())
        dot = nfa_to_dot(nfa)
        assert "doublecircle" in dot
        assert "[i, alpha, _]" in dot
        assert "style=dashed" in dot

    def test_product_boundaries_are_dotted(self):
        from repro.regex import atom, product
        nfa = build_nfa(product(atom(label="x"), atom(label="y")))
        dot = nfa_to_dot(nfa)
        assert "eps(x)" in dot
        assert "style=dotted" in dot


class TestCli:
    @pytest.fixture
    def graph_file(self, tmp_path, graph):
        target = str(tmp_path / "g.json")
        graph_io.write_json(graph, target)
        return target

    def run(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_query_text_output(self, graph_file):
        code, output = self.run("query", graph_file, "[a, created, _]")
        assert code == 0
        assert "1 paths" in output
        assert "(a, created, b)" in output

    def test_query_json_output(self, graph_file):
        code, output = self.run("query", graph_file, "[a, _, _]", "--json")
        assert code == 0
        payload = json.loads(output)
        assert payload["count"] == 2
        assert ["a", "created", "b"] in [p[0] for p in payload["paths"]]

    def test_query_strategy_flag(self, graph_file):
        code, output = self.run("query", graph_file, "[a, _, _]",
                                "--strategy", "streaming")
        assert code == 0

    def test_explain(self, graph_file):
        code, output = self.run("explain", graph_file,
                                "[a, created, _] . [_, knows, _]")
        assert code == 0
        assert "AtomScan" in output

    def test_stats(self, graph_file):
        code, output = self.run("stats", graph_file)
        assert code == 0
        summary = json.loads(output)
        assert summary["edges"] == 2

    def test_dot(self, graph_file):
        code, output = self.run("dot", graph_file)
        assert code == 0
        assert output.startswith("digraph")

    def test_demo(self):
        code, output = self.run("demo")
        assert code == 0
        assert "paths via" in output

    def test_bad_query_reports_error(self, graph_file):
        code, output = self.run("query", graph_file, "[a, ")
        assert code == 1
        assert "error:" in output

    def test_missing_file_reports_error(self):
        code, output = self.run("stats", "/nonexistent/file.json")
        assert code == 1
        assert "error:" in output

    def test_load_graph_dispatch(self, tmp_path, graph):
        csv_path = str(tmp_path / "g.csv")
        graph_io.write_triples(graph, csv_path)
        assert load_graph(csv_path).size() == 2
        xml_path = str(tmp_path / "g.graphml")
        graph_io.write_graphml(graph, xml_path)
        assert load_graph(xml_path).size() == 2

    def test_parser_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])
