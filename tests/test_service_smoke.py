"""End-to-end smoke: a real ``repro serve`` process under concurrent load.

This is the CI service gate: boot the server as a subprocess on a fixture
store, fire concurrent requests covering the interesting responses — a
cache miss, a cache hit, a deadline-exceeded 504 and an over-quota 429 —
then SIGTERM it and assert a clean, prompt shutdown with no leaked worker
processes.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.graph.graph import MultiRelationalGraph
from repro.storage import PersistentGraph

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


@pytest.fixture
def server(tmp_path):
    root = tmp_path / "graphs"
    root.mkdir()
    graph = MultiRelationalGraph(name="demo")
    for i in range(400):
        graph.add_edge(i, "a", (i + 1) % 400)
        graph.add_edge(i, "b", (i * 7 + 3) % 400)
    PersistentGraph.create(str(root / "demo"), graph, name="demo").close()

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", str(root),
         "--port", "0", "--token", "smoke=tester", "--quota", "tester=2",
         "--workers", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env)
    try:
        line = proc.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", line)
        assert match, "server never announced its endpoint: " + repr(line)
        yield proc, match.group(1), int(match.group(2))
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def request(host, port, path, body=None, deadline_ms=None):
    payload = dict(body or {})
    if deadline_ms is not None:
        payload["deadline_ms"] = deadline_ms
    req = urllib.request.Request(
        "http://{}:{}{}".format(host, port, path),
        data=json.dumps(payload).encode() if body is not None else None,
        headers={"Authorization": "Bearer smoke"})
    try:
        with urllib.request.urlopen(req, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_serve_smoke(server):
    proc, host, port = server
    sweep = {"query": "[_, a, _]* . [_, b, _]", "max_length": 6}

    # Liveness, then a cache miss followed by a cache hit.
    status, payload = request(host, port, "/healthz")
    assert (status, payload) == (200, {"status": "ok"})
    status, miss = request(host, port, "/v1/graphs/demo/query", sweep)
    assert status == 200 and miss["cached"] is False and miss["count"] > 0
    status, hit = request(host, port, "/v1/graphs/demo/query", sweep)
    assert status == 200 and hit["cached"] is True
    assert hit["pairs"] == miss["pairs"]

    # A 1 ms budget is below any sweep's runtime: deterministic 504.
    status, payload = request(host, port, "/v1/graphs/demo/query",
                              {"query": "[_, b, _]* . [_, a, _]"},
                              deadline_ms=1)
    assert status == 504 and payload["retriable"] is True

    # Saturate tenant 'tester' (quota 2) with slow sweeps from threads,
    # then expect the third concurrent request to shed with a 429.
    import threading
    results = []
    heavy = {"query": "[_, a, _]* . [_, b, _]* . [_, a, _]",
             "max_length": 6}

    def fire(body):
        results.append(request(host, port, "/v1/graphs/demo/query", body))

    threads = [threading.Thread(target=fire, args=(heavy,))
               for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    statuses = sorted(status for status, _ in results)
    assert statuses.count(200) >= 1
    assert 429 in statuses, statuses
    shed = next(payload for status, payload in results if status == 429)
    assert shed["retriable"] is True

    # The service recovered from shedding: one more query answers.
    status, payload = request(host, port, "/v1/graphs/demo/query", sweep)
    assert status == 200

    # Graceful shutdown: SIGTERM drains and exits 0 promptly, and the
    # worker threads/processes die with it (no leaked children).
    proc.send_signal(signal.SIGTERM)
    out, err = proc.communicate(timeout=30)
    assert proc.returncode == 0, err
    assert "shutdown complete" in out
    deadline = time.time() + 10
    while time.time() < deadline:
        try:
            os.kill(proc.pid, 0)
        except OSError:
            break
        time.sleep(0.1)
    children = subprocess.run(
        ["ps", "--ppid", str(proc.pid), "-o", "pid="],
        capture_output=True, text=True).stdout.strip()
    assert children == "", "leaked child processes: " + children
