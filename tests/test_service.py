"""The async query service tier: AsyncEngine, GraphRegistry, HTTP server.

The acceptance bar this file enforces:

* deadlines expire cleanly in every phase (queued, running, batch) and an
  expired or cancelled query never poisons the shared executor — the very
  next query on the same engine succeeds,
* reader/writer exclusivity: concurrent clients querying while a third
  mutates and checkpoints always observe an answer consistent with *some*
  graph version (never a torn half-mutation view),
* admission control sheds at the queue-depth bound (retriable 429
  semantics) and per-tenant quotas cap in-flight work,
* the HTTP tier round-trips queries and maps every service error onto the
  documented status codes (401/404/400/429/504) with backoff headers,
* the loop-side result-cache fast path answers repeated queries without
  an executor round trip and invalidates on mutation.

No pytest-asyncio in the container: each test drives its own loop with
``asyncio.run``.
"""

import asyncio
import json
import time

import pytest

from repro.concurrency import tracking_scope, witness_scope
from repro.engine import Engine, QueryCache
from repro.errors import (
    AuthenticationError,
    DeadlineExceededError,
    OverloadedError,
    QuotaExceededError,
    ServiceError,
    UnknownGraphError,
)
from repro.graph.graph import MultiRelationalGraph
from repro.service import AsyncEngine, Deadline, GraphRegistry, HttpServer
from repro.storage import PersistentGraph

CHAIN = 12


@pytest.fixture(autouse=True)
def concurrency_checks():
    """Every service test runs under the armed lock-order witness and
    leak registry: teardown must leave the acquisition graph acyclic and
    every executor/store/WAL the test opened released."""
    with witness_scope() as witness, tracking_scope() as tracker:
        yield
        witness.assert_acyclic()
        tracker.assert_empty()


def chain_graph(name="chain"):
    graph = MultiRelationalGraph(name=name)
    for i in range(CHAIN):
        graph.add_edge(i, "a", i + 1)
    graph.add_edge(0, "b", CHAIN)
    return graph


def make_async_engine(graph=None, **kwargs):
    kwargs.setdefault("max_workers", 2)
    engine = Engine(graph if graph is not None else chain_graph(),
                    cache=QueryCache(capacity=16))
    return AsyncEngine(engine, **kwargs)


def slow_down(engine, delay):
    """Wrap ``engine.pairs`` so every evaluation takes >= ``delay``."""
    original = engine.pairs

    def slow_pairs(*args, **kwargs):
        time.sleep(delay)
        return original(*args, **kwargs)

    engine.pairs = slow_pairs


class TestDeadline:
    def test_validation_and_states(self):
        with pytest.raises(ServiceError):
            Deadline(0)
        unbounded = Deadline(None)
        assert unbounded.remaining() is None and not unbounded.expired()
        unbounded.cancel()
        with pytest.raises(DeadlineExceededError) as exc:
            unbounded.check()
        assert exc.value.phase == "cancelled"

    def test_expiry(self):
        budget = Deadline(0.005)
        time.sleep(0.02)
        assert budget.expired() and budget.remaining() == 0.0
        with pytest.raises(DeadlineExceededError) as exc:
            budget.check(phase="queued")
        assert exc.value.phase == "queued"


class TestAsyncEngine:
    def test_pairs_matches_blocking_engine(self):
        async def run():
            async with make_async_engine() as service:
                got = await service.pairs("[_, a, _] . [_, a, _]",
                                          sources=[0])
                assert got == service.engine.pairs(
                    "[_, a, _] . [_, a, _]", sources=[0])
                batch = await service.pairs_batch(["[_, a, _]", "[_, b, _]"])
                assert batch[1] == frozenset({(0, CHAIN)})
        asyncio.run(run())

    def test_cache_fast_path_skips_executor(self):
        async def run():
            async with make_async_engine() as service:
                first = await service.pairs("[_, a, _]")
                submitted = service.counters["submitted"]
                second = await service.pairs("[_, a, _]")
                assert second == first
                assert service.counters["submitted"] == submitted
                assert service.counters["cache_fast_hits"] == 1
                # Mutation invalidates: the next call recomputes.
                await service.mutate(
                    lambda g: g.add_edge(CHAIN, "a", CHAIN + 1))
                third = await service.pairs("[_, a, _]")
                assert (CHAIN, CHAIN + 1) in third
        asyncio.run(run())

    def test_deadline_expires_while_running(self):
        async def run():
            async with make_async_engine() as service:
                slow_down(service.engine, 0.4)
                started = time.monotonic()
                with pytest.raises(DeadlineExceededError):
                    await service.pairs("[_, a, _]", deadline=0.05)
                assert time.monotonic() - started < 0.3
                assert service.counters["deadline_exceeded"] == 1
                # The abandoned kernel finishes in its thread; the engine
                # (and its executor) stay healthy for the next query.
                answer = await service.pairs("[_, b, _]", deadline=5.0)
                assert answer == frozenset({(0, CHAIN)})
        asyncio.run(run())

    def test_deadline_expires_while_queued(self):
        async def run():
            async with make_async_engine(max_concurrency=1) as service:
                slow_down(service.engine, 0.3)
                hog = asyncio.ensure_future(service.pairs("[_, a, _]"))
                await asyncio.sleep(0.05)  # hog owns the only slot
                with pytest.raises(DeadlineExceededError) as exc:
                    await service.pairs("[_, b, _]", deadline=0.05)
                assert exc.value.phase == "queued"
                assert await hog  # the hog itself is unharmed
        asyncio.run(run())

    def test_cancellation_does_not_poison_the_pool(self):
        async def run():
            async with make_async_engine() as service:
                slow_down(service.engine, 0.3)
                victim = asyncio.ensure_future(service.pairs("[_, a, _]"))
                await asyncio.sleep(0.05)
                victim.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await victim
                answer = await service.pairs("[_, b, _]")
                assert answer == frozenset({(0, CHAIN)})
                assert service.counters["failed"] == 0
        asyncio.run(run())

    def test_queue_depth_sheds_with_overloaded(self):
        async def run():
            async with make_async_engine(max_concurrency=1,
                                         max_queue_depth=1) as service:
                slow_down(service.engine, 0.3)
                hog = asyncio.ensure_future(service.pairs("[_, a, _]"))
                await asyncio.sleep(0.05)
                waiter = asyncio.ensure_future(service.pairs("[_, b, _]"))
                await asyncio.sleep(0.05)  # waiter fills the queue
                with pytest.raises(OverloadedError) as exc:
                    await service.pairs("[_, b, _] . [_, a, _]")
                assert exc.value.retry_after > 0
                assert service.counters["shed"] == 1
                await hog
                await waiter
        asyncio.run(run())

    def test_batch_deadline_stops_between_items(self):
        async def run():
            async with make_async_engine() as service:
                slow_down(service.engine, 0.1)
                queries = ["[_, a, _]"] * 20
                started = time.monotonic()
                with pytest.raises(DeadlineExceededError):
                    await service.pairs_batch(queries, deadline=0.15)
                # Cooperative per-item checks: the worker stops at the
                # next item boundary instead of grinding through all 20.
                assert time.monotonic() - started < 1.0
        asyncio.run(run())

    def test_mutate_is_exclusive_and_versions_are_consistent(self):
        async def run():
            async with make_async_engine() as service:
                observed = []

                async def reader():
                    for _ in range(10):
                        observed.append(await service.pairs("[_, a, _]"))
                        await asyncio.sleep(0)

                async def writer():
                    for i in range(5):
                        await service.mutate(
                            lambda g, i=i: g.add_edge(
                                CHAIN + i, "a", CHAIN + i + 1))
                        await asyncio.sleep(0)

                await asyncio.gather(reader(), reader(), writer())
                # Every observation is a prefix-consistent snapshot: the
                # chain answer for SOME number of completed mutations.
                valid = set()
                edges = frozenset((i, i + 1) for i in range(CHAIN))
                for done in range(6):
                    valid.add(edges | frozenset(
                        (CHAIN + j, CHAIN + j + 1) for j in range(done)))
                for answer in observed:
                    assert answer in valid
                assert service.counters["mutations"] == 5
        asyncio.run(run())

    def test_closed_engine_refuses_work(self):
        async def run():
            service = make_async_engine()
            await service.aclose()
            await service.aclose()  # idempotent
            with pytest.raises(ServiceError):
                await service.pairs("[_, a, _]")
        asyncio.run(run())


@pytest.fixture
def store_root(tmp_path):
    root = tmp_path / "graphs"
    root.mkdir()
    for name in ("alpha", "beta"):
        PersistentGraph.create(str(root / name), chain_graph(name),
                               name=name).close()
    return str(root)


class TestGraphRegistry:
    def test_acquire_release_refcounts_and_listing(self, store_root):
        with GraphRegistry(store_root, max_workers=2) as registry:
            assert registry.list_graphs() == ["alpha", "beta"]
            handle = registry.acquire("alpha")
            again = registry.acquire("alpha")
            assert again is handle and handle.refcount == 2
            registry.release("alpha")
            registry.release("alpha")
            assert handle.refcount == 0
            assert registry.stats()["open_graphs"] == ["alpha"]

    def test_unknown_and_hostile_names_rejected(self, store_root):
        with GraphRegistry(store_root, max_workers=2) as registry:
            for name in ("missing", "../alpha", "a/b", ".hidden", ""):
                with pytest.raises(UnknownGraphError):
                    registry.acquire(name)

    def test_max_open_evicts_least_recently_used_idle(self, store_root):
        with GraphRegistry(store_root, max_workers=2,
                           max_open=1) as registry:
            registry.acquire("alpha")
            registry.release("alpha")
            registry.acquire("beta")  # evicts idle alpha
            names = registry.stats()["open_graphs"]
            assert names == ["beta"]

    def test_quota_admission(self, store_root):
        with GraphRegistry(store_root, max_workers=2,
                           quotas={"alice": 2}) as registry:
            first = registry.admit("alice")
            registry.admit("alice")
            with pytest.raises(QuotaExceededError) as exc:
                registry.admit("alice")
            assert exc.value.tenant == "alice"
            registry.admit("bob")  # separate tenant, separate budget
            first.release()
            first.release()  # release-once token: second call is a no-op
            assert registry.tenants()["alice"] == 1
            registry.admit("alice")

    def test_shared_cache_is_keyed_per_graph(self, store_root):
        async def run():
            registry = GraphRegistry(store_root, max_workers=2)
            try:
                alpha = registry.acquire("alpha")
                beta = registry.acquire("beta")
                got_a = await alpha.async_engine.pairs("[_, b, _]")
                got_b = await beta.async_engine.pairs("[_, b, _]")
                assert got_a == got_b == frozenset({(0, CHAIN)})
                # Same expression, same version counter — but distinct
                # graph tokens, so neither fast path crossed graphs.
                assert alpha.async_engine.counters["cache_fast_hits"] == 0
                assert beta.async_engine.counters["cache_fast_hits"] == 0
            finally:
                await registry.aclose()
        asyncio.run(run())

    def test_checkpoint_through_writer_slot(self, store_root):
        async def run():
            registry = GraphRegistry(store_root, max_workers=2)
            try:
                handle = registry.acquire("alpha")
                await handle.async_engine.mutate(
                    lambda g: g.add_edge("x", "a", "y"))
                info = await handle.checkpoint()
                assert info["generation"] == 2
                assert info["wal_records_logged"] == 0
            finally:
                await registry.aclose()
            with PersistentGraph.open(store_root + "/alpha") as reopened:
                assert reopened.graph().has_edge("x", "a", "y")
        asyncio.run(run())


async def http_request(host, port, method, path, body=None, token=None):
    """A minimal one-shot HTTP/1.1 client for the service under test."""
    reader, writer = await asyncio.open_connection(host, port)
    data = b"" if body is None else json.dumps(body).encode()
    lines = ["{} {} HTTP/1.1".format(method, path), "Host: test",
             "Content-Length: {}".format(len(data))]
    if token is not None:
        lines.append("Authorization: Bearer {}".format(token))
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + data)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, payload = raw.partition(b"\r\n\r\n")
    head_lines = head.decode("latin-1").split("\r\n")
    status = int(head_lines[0].split()[1])
    headers = {}
    for line in head_lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return status, json.loads(payload), headers


class TestHttpServer:
    def run_server(self, store_root, coro_factory, **server_kwargs):
        async def run():
            registry = GraphRegistry(store_root, max_workers=2,
                                     **server_kwargs.pop("registry", {}))
            server = HttpServer(registry, **server_kwargs)
            host, port = await server.start()
            try:
                await coro_factory(host, port, server)
            finally:
                await server.stop()
        asyncio.run(run())

    def test_query_roundtrip_and_cached_flag(self, store_root):
        async def scenario(host, port, server):
            status, payload, headers = await http_request(
                host, port, "POST", "/v1/graphs/alpha/query",
                {"query": "[_, b, _]"})
            assert status == 200
            assert payload["pairs"] == [[0, CHAIN]]
            assert payload["cached"] is False
            assert "x-repro-graph-version" in headers
            status, payload, _ = await http_request(
                host, port, "POST", "/v1/graphs/alpha/query",
                {"query": "[_, b, _]"})
            assert status == 200 and payload["cached"] is True
        self.run_server(store_root, scenario)

    def test_batch_sources_targets_and_listing(self, store_root):
        async def scenario(host, port, server):
            status, payload, _ = await http_request(
                host, port, "POST", "/v1/graphs/alpha/query",
                {"queries": ["[_, a, _]", "[_, b, _]"], "sources": [0]})
            assert status == 200
            by_query = {r["query"]: r for r in payload["results"]}
            assert by_query["[_, a, _]"]["pairs"] == [[0, 1]]
            assert by_query["[_, b, _]"]["pairs"] == [[0, CHAIN]]
            status, payload, _ = await http_request(
                host, port, "GET", "/v1/graphs")
            assert status == 200
            assert payload["graphs"] == ["alpha", "beta"]
        self.run_server(store_root, scenario)

    def test_healthz_stats_explain(self, store_root):
        async def scenario(host, port, server):
            status, payload, _ = await http_request(
                host, port, "GET", "/healthz")
            assert (status, payload) == (200, {"status": "ok"})
            status, payload, _ = await http_request(
                host, port, "GET", "/v1/graphs/alpha/stats")
            assert status == 200
            assert payload["info"]["name"] == "alpha"
            status, payload, _ = await http_request(
                host, port, "POST", "/v1/graphs/alpha/explain",
                {"query": "[_, a, _] . [_, b, _]"})
            assert status == 200
            assert "atomscan" in payload["explain"].lower()
        self.run_server(store_root, scenario)

    def test_auth_unknown_and_bad_requests(self, store_root):
        async def scenario(host, port, server):
            status, _, headers = await http_request(
                host, port, "GET", "/v1/graphs/alpha/stats")
            assert status == 401
            assert headers["www-authenticate"] == "Bearer"
            status, _, _ = await http_request(
                host, port, "GET", "/v1/graphs/alpha/stats", token="bogus")
            assert status == 401
            status, _, _ = await http_request(
                host, port, "GET", "/v1/graphs/nope/stats", token="s3cr3t")
            assert status == 404
            status, payload, _ = await http_request(
                host, port, "POST", "/v1/graphs/alpha/query",
                {"query": "[_, a"}, token="s3cr3t")
            assert status == 400 and payload["retriable"] is False
            status, _, _ = await http_request(
                host, port, "POST", "/v1/graphs/alpha/query",
                {"deadline_ms": -5, "query": "[_, a, _]"}, token="s3cr3t")
            assert status == 400
        self.run_server(store_root, scenario,
                        tokens={"s3cr3t": "alice"})

    def test_deadline_maps_to_504(self, store_root):
        async def scenario(host, port, server):
            handle = server.registry.acquire("alpha")
            slow_down(handle.engine, 0.4)
            server.registry.release("alpha")
            status, payload, _ = await http_request(
                host, port, "POST", "/v1/graphs/alpha/query",
                {"query": "[_, a, _]", "deadline_ms": 50})
            assert status == 504 and payload["retriable"] is True
            # Follow-up without a deadline still answers: no poisoning.
            status, payload, _ = await http_request(
                host, port, "POST", "/v1/graphs/alpha/query",
                {"query": "[_, b, _]"})
            assert status == 200 and payload["pairs"] == [[0, CHAIN]]
        self.run_server(store_root, scenario)

    def test_quota_maps_to_429_with_retry_after(self, store_root):
        async def scenario(host, port, server):
            handle = server.registry.acquire("alpha")
            slow_down(handle.engine, 0.4)
            server.registry.release("alpha")
            slow = asyncio.ensure_future(http_request(
                host, port, "POST", "/v1/graphs/alpha/query",
                {"query": "[_, a, _]"}, token="s3cr3t"))
            await asyncio.sleep(0.1)  # alice's only slot is now busy
            status, payload, headers = await http_request(
                host, port, "POST", "/v1/graphs/alpha/query",
                {"query": "[_, b, _]"}, token="s3cr3t")
            assert status == 429 and payload["retriable"] is True
            assert float(headers["retry-after"]) > 0
            status, _, _ = await slow
            assert status == 200
            # The slot came back with the admission token.
            status, _, _ = await http_request(
                host, port, "POST", "/v1/graphs/alpha/query",
                {"query": "[_, b, _]"}, token="s3cr3t")
            assert status == 200
        self.run_server(store_root, scenario,
                        tokens={"s3cr3t": "alice"},
                        registry={"quotas": {"alice": 1}})

    def test_mutate_and_checkpoint_endpoints(self, store_root):
        async def scenario(host, port, server):
            status, before, _ = await http_request(
                host, port, "POST", "/v1/graphs/alpha/query",
                {"query": "[_, a, _]", "sources": [CHAIN]})
            assert status == 200 and before["count"] == 0
            status, payload, _ = await http_request(
                host, port, "POST", "/v1/graphs/alpha/mutate",
                {"add_edges": [[CHAIN, "a", CHAIN + 1]],
                 "remove_edges": [[0, "b", CHAIN]]})
            assert status == 200
            assert payload["added"] == 1 and payload["removed"] == 1
            status, after, _ = await http_request(
                host, port, "POST", "/v1/graphs/alpha/query",
                {"query": "[_, a, _]", "sources": [CHAIN]})
            assert status == 200
            assert after["pairs"] == [[CHAIN, CHAIN + 1]]
            status, payload, _ = await http_request(
                host, port, "POST", "/v1/graphs/alpha/checkpoint", {})
            assert status == 200 and payload["info"]["generation"] == 2
        self.run_server(store_root, scenario)


class TestConcurrentClientsUnderMutation:
    """The PR 7 satellite scenario: two asyncio clients query over HTTP
    while a third mutates and checkpoints the same graph."""

    def test_results_consistent_with_some_version(self, store_root):
        async def run():
            registry = GraphRegistry(store_root, max_workers=3)
            server = HttpServer(registry)
            host, port = await server.start()
            observed = []
            try:
                async def client():
                    for _ in range(8):
                        status, payload, _ = await http_request(
                            host, port, "POST", "/v1/graphs/alpha/query",
                            {"query": "[_, a, _]"})
                        assert status == 200
                        observed.append(frozenset(
                            tuple(p) for p in payload["pairs"]))

                async def mutator():
                    for i in range(4):
                        status, _, _ = await http_request(
                            host, port, "POST", "/v1/graphs/alpha/mutate",
                            {"add_edges": [[CHAIN + i, "a", CHAIN + i + 1]]})
                        assert status == 200
                        if i == 1:
                            status, _, _ = await http_request(
                                host, port, "POST",
                                "/v1/graphs/alpha/checkpoint", {})
                            assert status == 200

                await asyncio.gather(client(), client(), mutator())
            finally:
                await server.stop()
            edges = frozenset((i, i + 1) for i in range(CHAIN))
            valid = set()
            for done in range(5):
                valid.add(edges | frozenset(
                    (CHAIN + j, CHAIN + j + 1) for j in range(done)))
            assert observed and all(answer in valid for answer in observed)
        asyncio.run(run())
