"""The parallel fan-out executor: real worker pools, merge parity, reuse.

The multiprocessing half of the sharding battery (the pool-free half is
``tests/test_sharding.py``): every test here actually forks workers (two,
to stay CI-friendly) and asserts that sharded-parallel evaluation equals
the single-core compact kernels and dict references across shard counts
{1, 2, 7} and under delta overlays, that one executor survives graph
mutations (stale state invalidated by ``version()``), that the file mode
mmaps what it is told to, and that the engine-level plumbing (``pairs``,
``pairs_batch``, ``query``, ``cache_stats``, EXPLAIN, the ``db shard``
CLI) routes through it correctly.

Forced low thresholds (``min_edges=0``) keep the graphs small; platforms
without the ``fork`` start method skip the pool-backed tests — the serial
fallback they would degrade to is covered by the sibling module.
"""

import random

import pytest

from repro.algorithms.digraph import DiGraph
from repro.engine import Engine
from repro.engine.parallel import ParallelExecutor, fork_available
from repro.graph.compact import adjacency_snapshot
from repro.graph.generators import uniform_random
from repro.rpq import lconcat, lstar, sym
from repro.rpq.evaluation import compile_rpq, rpq_pairs, rpq_pairs_basic

needs_fork = pytest.mark.skipif(
    not fork_available(),
    reason="inline worker mode needs the fork start method")

STAR = lconcat(sym("a"), lstar(sym("b")))


def small_graph(seed=11, vertices=150, edges=1100):
    return uniform_random(vertices, edges, labels=("a", "b", "c"), seed=seed)


def pool_executor(graph, **kwargs):
    kwargs.setdefault("processes", 2)
    kwargs.setdefault("min_edges", 0)
    return ParallelExecutor(graph, **kwargs)


@needs_fork
class TestParallelDifferential:

    @pytest.mark.parametrize("count", (1, 2, 7))
    def test_rpq_matches_kernels_and_reference_under_churn(self, count):
        graph = small_graph(seed=3)
        adjacency_snapshot(graph)
        rng = random.Random(7)
        vertices = sorted(graph.vertices())
        with pool_executor(graph, num_shards=count) as executor:
            for step in range(5):
                tail, head = rng.choice(vertices), rng.choice(vertices)
                if graph.has_edge(tail, "b", head):
                    graph.remove_edge(tail, "b", head)
                else:
                    graph.add_edge(tail, "b", head)
                dfa = compile_rpq(STAR, graph)
                answer = executor.rpq_pairs(dfa)
                assert answer == rpq_pairs(graph, STAR)
                assert answer == rpq_pairs_basic(graph, STAR)

    def test_parallel_equals_serial_with_filters(self):
        graph = small_graph(seed=13)
        vertices = sorted(graph.vertices())
        sources = frozenset(vertices[::3])
        targets = frozenset(vertices[::5])
        dfa = compile_rpq(STAR, graph)
        with pool_executor(graph, num_shards=3) as parallel:
            got = parallel.rpq_pairs(dfa, sources=sources, targets=targets)
        serial = ParallelExecutor(graph, processes=1, num_shards=3)
        assert got == serial.rpq_pairs(dfa, sources=sources, targets=targets)
        serial.close()

    def test_pagerank_parallel_is_bit_identical_to_serial(self):
        graph = small_graph(seed=17)
        serial = ParallelExecutor(graph, processes=1, num_shards=4)
        want = serial.pagerank(tolerance=1.0e-12)
        serial.close()
        with pool_executor(graph, num_shards=4) as executor:
            got = executor.pagerank(tolerance=1.0e-12)
        assert got == want  # bit-for-bit: shard-ordered float merge

    def test_bfs_batch_parallel_matches_digraph(self):
        rng = random.Random(19)
        digraph = DiGraph()
        for v in range(200):
            digraph.add_vertex(v)
        while digraph.size() < 1500:
            digraph.add_edge(rng.randrange(200), rng.randrange(200))
        sources = list(range(0, 200, 3))
        with pool_executor(digraph) as executor:
            got = executor.bfs_distances(sources)
        assert got == {s: digraph.bfs_distances(s) for s in sources}


@needs_fork
class TestPoolLifecycle:

    def test_one_executor_survives_graph_mutations(self):
        """Fork safety: stale shard state is invalidated by version()."""
        graph = small_graph(seed=23)
        with pool_executor(graph, num_shards=2) as executor:
            for step in range(4):
                dfa = compile_rpq(STAR, graph)
                assert executor.rpq_pairs(dfa) == \
                    rpq_pairs_basic(graph, STAR)
                ranks = executor.pagerank(tolerance=1.0e-10)
                serial = ParallelExecutor(graph, processes=1, num_shards=2)
                assert ranks == serial.pagerank(tolerance=1.0e-10)
                serial.close()
                graph.add_edge("m{}".format(step), "a",
                               sorted(graph.vertices(), key=repr)[0])

    def test_stale_inline_pool_is_replaced_not_reused(self):
        graph = small_graph(seed=29)
        with pool_executor(graph, num_shards=2) as executor:
            dfa = compile_rpq(STAR, graph)
            executor.rpq_pairs(dfa)
            first_key = executor._pool_key
            graph.add_edge(0, "a", 1)
            executor.rpq_pairs(compile_rpq(STAR, graph))
            assert executor._pool_key != first_key

    def test_concurrent_executors_do_not_cross_payloads(self):
        graph_a = small_graph(seed=31)
        graph_b = small_graph(seed=37, vertices=80, edges=500)
        dfa_a = compile_rpq(STAR, graph_a)
        dfa_b = compile_rpq(STAR, graph_b)
        with pool_executor(graph_a) as a, pool_executor(graph_b) as b:
            assert a.rpq_pairs(dfa_a) == rpq_pairs_basic(graph_a, STAR)
            assert b.rpq_pairs(dfa_b) == rpq_pairs_basic(graph_b, STAR)
            assert a.rpq_pairs(dfa_a) == rpq_pairs_basic(graph_a, STAR)

    def test_close_is_idempotent_and_releases_payload(self):
        from repro.engine import parallel as parallel_module
        graph = small_graph(seed=41)
        executor = pool_executor(graph)
        executor.rpq_pairs(compile_rpq(STAR, graph))
        token = executor._token
        assert token in parallel_module._FORK_PAYLOADS
        executor.close()
        executor.close()
        assert token not in parallel_module._FORK_PAYLOADS

    def test_close_joins_live_pool_without_terminate(self):
        """PR 7 regression: close() used to go straight to terminate(),
        killing workers mid-write.  A live idle pool must drain via
        close()/join(); terminate() is only the timeout fallback."""
        graph = small_graph(seed=47)
        executor = pool_executor(graph)
        executor.rpq_pairs(compile_rpq(STAR, graph))
        pool = executor._pool
        assert pool is not None
        terminated = []
        original_terminate = pool.terminate
        pool.terminate = lambda: (terminated.append(True),
                                  original_terminate())[-1]
        executor.close()
        assert terminated == []
        assert executor._pool is None

    def test_engine_close_releases_pool_idempotently(self):
        """Engine.close() with a live pool is graceful and repeatable."""
        graph = small_graph(seed=53)
        engine = Engine(graph)
        answer = engine.pairs("[_, a, _] . [_, b, _]*", processes=2)
        assert answer == rpq_pairs_basic(graph, STAR)
        engine.close()
        engine.close()
        # The engine stays usable for serial evaluation after close.
        assert engine.pairs("[_, a, _] . [_, b, _]*") == answer


@needs_fork
class TestFileMode:

    def test_file_mode_parity_and_refresh(self, tmp_path):
        graph = small_graph(seed=43)
        directory = str(tmp_path / "shards")
        with pool_executor(graph, num_shards=3,
                           shard_dir=directory) as executor:
            dfa = compile_rpq(STAR, graph)
            assert executor.rpq_pairs(dfa) == rpq_pairs_basic(graph, STAR)
            serial = ParallelExecutor(graph, processes=1, num_shards=3)
            assert executor.pagerank(tolerance=1.0e-10) == \
                serial.pagerank(tolerance=1.0e-10)
            serial.close()
            # Mutate: the directory must be rewritten at the new version.
            graph.add_edge(1, "a", 2)
            dfa = compile_rpq(STAR, graph)
            assert executor.rpq_pairs(dfa) == rpq_pairs_basic(graph, STAR)
        from repro.storage.snapshots import read_shard_manifest
        assert read_shard_manifest(directory)["version"] == graph.version()


@needs_fork
class TestEnginePlumbing:

    QUERY = "[_, a, _] . [_, b, _]*"

    def test_pairs_with_processes_matches_serial(self):
        graph = small_graph(seed=47)
        engine = Engine(graph)
        try:
            want = engine.pairs(self.QUERY)
            assert engine.pairs(self.QUERY, processes=2) == want
            assert engine.pairs(self.QUERY, processes=1) == want
        finally:
            engine.close()

    def test_pairs_batch_keeps_order_and_parity(self):
        graph = small_graph(seed=53)
        queries = [self.QUERY, "[_, c, _]", "[0, a, _] . [_, b, _]*",
                   self.QUERY]
        engine = Engine(graph)
        try:
            want = [engine.pairs(q) for q in queries]
            got = engine.pairs_batch(queries, processes=2)
            assert got == want
            assert engine.pairs_batch(queries) == want
        finally:
            engine.close()

    def test_query_automaton_fan_out_matches_serial(self):
        graph = small_graph(seed=59)
        engine = Engine(graph)
        try:
            serial = engine.query(self.QUERY, strategy="automaton",
                                  max_length=2)
            fanned = engine.query(self.QUERY, strategy="automaton",
                                  max_length=2, processes=2)
            assert fanned.paths == serial.paths
        finally:
            engine.close()

    def test_explain_reports_parallelism_and_caches(self):
        graph = small_graph(seed=61)
        engine = Engine(graph)
        try:
            text = engine.explain(self.QUERY, processes=2)
            assert "pairs parallelism: parallel, 2 process(es) x 2 " \
                   "shard(s)" in text
            assert "caches: dfa" in text
            text = engine.explain(self.QUERY)
            assert "pairs parallelism:" in text
            selective = engine.explain(
                "[0, a, _] . [_, b, _]*",
                sources=frozenset([0]), processes=2)
            assert "single-core" in selective or "n/a" in selective
        finally:
            engine.close()

    def test_cache_stats_shape(self):
        from repro.engine import QueryCache
        graph = small_graph(seed=67)
        engine = Engine(graph, cache=QueryCache(capacity=4))
        try:
            engine.query(self.QUERY, strategy="automaton", max_length=2)
            engine.query(self.QUERY, strategy="automaton", max_length=2)
            stats = engine.cache_stats()
            assert set(stats) == {"dfa_cache", "query_cache"}
            assert stats["query_cache"]["hits"] == 1
            assert stats["query_cache"]["capacity"] == 4
            assert stats["dfa_cache"]["capacity"] == Engine._DFA_CACHE_CAP
            uncached = Engine(graph)
            assert uncached.cache_stats()["query_cache"] is None
        finally:
            engine.close()


class TestSerialFallbackEverywhere:
    """The executor must answer correctly even where pools cannot run."""

    def test_processes_one_never_forks(self):
        graph = small_graph(seed=71)
        executor = ParallelExecutor(graph, processes=1)
        dfa = compile_rpq(STAR, graph)
        assert executor.rpq_pairs(dfa) == rpq_pairs_basic(graph, STAR)
        assert executor._pool is None
        executor.close()

    def test_tiny_graph_stays_serial_despite_processes(self):
        graph = uniform_random(20, 60, labels=("a", "b"), seed=73)
        executor = ParallelExecutor(graph, processes=2)  # default min_edges
        dfa = compile_rpq(STAR, graph)
        assert executor.rpq_pairs(dfa) == rpq_pairs_basic(graph, STAR)
        assert executor._pool is None
        executor.close()


def test_cli_db_shard_writes_manifest(tmp_path, capsys):
    import json
    from repro import cli
    from repro.graph.graph import MultiRelationalGraph
    from repro.graph.io import write_triples
    rng = random.Random(79)
    graph = MultiRelationalGraph(name="clishard")  # string ids: CSV-safe
    for v in range(30):
        graph.add_vertex("v{}".format(v))
    while graph.size() < 120:
        graph.add_edge("v{}".format(rng.randrange(30)), rng.choice("ab"),
                       "v{}".format(rng.randrange(30)))
    graph_path = str(tmp_path / "g.csv")
    write_triples(graph, graph_path)
    store = str(tmp_path / "store")
    assert cli.main(["db", "init", store, "--graph", graph_path]) == 0
    capsys.readouterr()
    assert cli.main(["db", "shard", store, "--shards", "2"]) == 0
    manifest = json.loads(capsys.readouterr().out)
    assert manifest["num_shards"] == 2
    assert manifest["kind"] == "sharded"
    from repro.storage.snapshots import read_shard_manifest
    import os
    assert read_shard_manifest(os.path.join(store, "shards"))["shards"] == \
        manifest["shards"]
