"""Property tests triangulating the three regex implementations.

Random small graphs + random expressions; the direct evaluator
(:func:`evaluate`), the NFA-based generator (:func:`generate_paths`) and the
paper's stack automaton must produce identical bounded path sets, and the
NFA recognizer plus the derivative matcher must accept exactly the generated
paths among a candidate pool.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import Recognizer, StackAutomaton, generate_paths
from repro.core.path import Path
from repro.graph.graph import MultiRelationalGraph
from repro.regex import (
    EPSILON,
    atom,
    evaluate,
    join,
    matches,
    product,
    star,
    union,
)

VERTICES = ["u", "v", "w"]
LABELS = ["a", "b"]

edge_triples = st.tuples(
    st.sampled_from(VERTICES),
    st.sampled_from(LABELS),
    st.sampled_from(VERTICES),
)

graphs = st.lists(edge_triples, min_size=1, max_size=8).map(
    lambda triples: MultiRelationalGraph(triples))


def atoms():
    return st.builds(
        atom,
        tail=st.one_of(st.none(), st.sampled_from(VERTICES)),
        label=st.one_of(st.none(), st.sampled_from(LABELS)),
        head=st.one_of(st.none(), st.sampled_from(VERTICES)),
    )


def expressions(depth=2):
    base = st.one_of(atoms(), st.just(EPSILON))
    if depth == 0:
        return base
    sub = expressions(depth - 1)
    return st.one_of(
        base,
        st.builds(lambda a, b: join(a, b), sub, sub),
        st.builds(lambda a, b: union(a, b), sub, sub),
        st.builds(lambda a, b: product(a, b), sub, sub),
        st.builds(star, atoms()),
    )


@settings(max_examples=40, deadline=None)
@given(graphs, expressions())
def test_three_generators_agree(graph, expr):
    bound = 4
    reference = evaluate(expr, graph, bound)
    nfa_based = generate_paths(graph, expr, bound)
    stack_based = StackAutomaton(expr, graph).run(bound)
    assert reference == nfa_based == stack_based


@settings(max_examples=40, deadline=None)
@given(graphs, expressions())
def test_recognizer_accepts_exactly_generated(graph, expr):
    bound = 3
    generated = generate_paths(graph, expr, bound)
    recognizer = Recognizer(expr, graph)
    # Everything generated must be accepted.
    for p in generated:
        assert recognizer.accepts(p)
    # Candidate pool: all graph walks up to the bound (joint ones) plus some
    # simple concatenations; anything not generated must be rejected.
    pool = graph.all_paths().closure(bound)
    for p in pool:
        assert recognizer.accepts(p) == (p in generated)


@settings(max_examples=40, deadline=None)
@given(graphs, expressions())
def test_derivatives_agree_with_recognizer(graph, expr):
    bound = 3
    recognizer = Recognizer(expr, graph)
    pool = graph.all_paths().closure(bound)
    for p in pool:
        assert matches(expr, p, graph) == recognizer.accepts(p)


@settings(max_examples=30, deadline=None)
@given(graphs, expressions())
def test_simplification_preserves_generation(graph, expr):
    bound = 3
    assert generate_paths(graph, expr, bound) == \
        generate_paths(graph, expr.simplified(), bound)


@settings(max_examples=30, deadline=None)
@given(graphs, expressions(), st.integers(min_value=0, max_value=3))
def test_generation_monotone_in_bound(graph, expr, bound):
    smaller = generate_paths(graph, expr, bound)
    larger = generate_paths(graph, expr, bound + 1)
    assert smaller <= larger
