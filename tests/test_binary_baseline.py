"""Tests for the binary-relation baseline (Russling [4]) and its label loss (E7)."""

import pytest

from repro.core.binary import (
    LabelLossError,
    VertexPath,
    VertexPathSet,
    binary_relations,
)
from repro.graph.graph import MultiRelationalGraph


@pytest.fixture
def graph():
    return MultiRelationalGraph([
        ("a", "alpha", "b"),
        ("b", "beta", "c"),
        ("a", "beta", "b"),
        ("b", "alpha", "c"),
    ])


class TestVertexPath:
    def test_single_edge_is_two_vertices(self):
        p = VertexPath(("a", "b"))
        assert p.tail == "a"
        assert p.head == "b"
        assert p.length == 1

    def test_compose_merges_shared_vertex(self):
        """Russling composition: (a,b) o (b,c) = (a,b,c)."""
        composed = VertexPath(("a", "b")).compose(VertexPath(("b", "c")))
        assert tuple(composed) == ("a", "b", "c")
        assert composed.length == 2

    def test_compose_requires_adjacency(self):
        from repro.errors import AlgebraError
        with pytest.raises(AlgebraError):
            VertexPath(("a", "b")).compose(VertexPath(("x", "y")))

    def test_needs_a_vertex(self):
        with pytest.raises(ValueError):
            VertexPath(())

    def test_label_path_is_lost(self):
        """The section II deficiency, as an explicit error."""
        with pytest.raises(LabelLossError):
            VertexPath(("a", "b", "c")).label_path()


class TestVertexPathSet:
    def test_from_relation(self, graph):
        paths = VertexPathSet.from_relation(graph.relation("alpha"))
        assert len(paths) == 2

    def test_join(self):
        a = VertexPathSet([("a", "b")])
        b = VertexPathSet([("b", "c"), ("x", "y")])
        joined = a @ b
        assert len(joined) == 1
        assert ("a", "b", "c") in joined

    def test_union(self):
        a = VertexPathSet([("a", "b")])
        b = VertexPathSet([("b", "c")])
        assert len(a | b) == 2

    def test_endpoint_pairs(self):
        s = VertexPathSet([("a", "b", "c")])
        assert s.endpoint_pairs() == {("a", "c")}


class TestLabelLossDemonstration:
    """E7: same join through both algebras; only the ternary keeps labels."""

    def test_reachability_agrees_between_algebras(self, graph):
        relations = binary_relations(graph)
        binary_join = relations["alpha"] @ relations["beta"]

        ternary_join = graph.edges(label="alpha") @ graph.edges(label="beta")
        assert binary_join.endpoint_pairs() == ternary_join.endpoint_pairs()

    def test_cross_relation_join_is_ambiguous_in_binary(self, graph):
        """(a,b,c) arises from alpha.beta AND beta.alpha — indistinguishable."""
        relations = binary_relations(graph)
        alpha_beta = relations["alpha"] @ relations["beta"]
        beta_alpha = relations["beta"] @ relations["alpha"]
        # Both joins contain the same vertex string.
        assert ("a", "b", "c") in alpha_beta
        assert ("a", "b", "c") in beta_alpha
        # The ternary algebra distinguishes them by path label.
        ab = graph.edges(label="alpha") @ graph.edges(label="beta")
        ba = graph.edges(label="beta") @ graph.edges(label="alpha")
        ab_labels = ab.label_paths()
        ba_labels = ba.label_paths()
        assert ("alpha", "beta") in ab_labels
        assert ("beta", "alpha") in ba_labels
        assert ab_labels.isdisjoint(ba_labels)

    def test_label_query_impossible_in_binary(self, graph):
        relations = binary_relations(graph)
        joined = relations["alpha"] @ relations["beta"]
        some_path = next(iter(joined))
        with pytest.raises(LabelLossError):
            some_path.label_path()

    def test_decomposition_covers_all_labels(self, graph):
        relations = binary_relations(graph)
        assert set(relations) == graph.labels()
