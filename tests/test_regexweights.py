"""Tests for semiring evaluation of full regex expressions."""

from collections import Counter

import pytest

from repro.graph.graph import MultiRelationalGraph
from repro.regex import EPSILON, atom, evaluate, join, literal, product, star, union
from repro.semiring import BOOLEAN, COUNTING, TROPICAL
from repro.semiring.regexweights import weighted_query


@pytest.fixture
def graph():
    g = MultiRelationalGraph()
    g.add_edge("a", "r", "b", cost=2.0)
    g.add_edge("a", "r", "c", cost=5.0)
    g.add_edge("b", "s", "d", cost=1.0)
    g.add_edge("c", "s", "d", cost=1.0)
    g.add_edge("d", "r", "e", cost=3.0)
    return g


def cost(e, g):
    return g.edge_properties(e.tail, e.label, e.head)["cost"]


def path_count_by_endpoints(path_set):
    counts = Counter()
    for p in path_set:
        if p:
            counts[(p.tail, p.head)] += 1
    return dict(counts)


class TestCountingAgreesOnUnambiguousExpressions:
    """Unambiguous expressions: derivation counts == distinct path counts."""

    @pytest.mark.parametrize("expr_builder", [
        lambda: atom(label="r"),
        lambda: join(atom(label="r"), atom(label="s")),
        lambda: join(atom(label="r"), atom(label="s"), atom(label="r")),
        lambda: union(atom(label="r"), atom(label="s")),
        lambda: join(atom(tail="a"), atom(label="s")),
        lambda: join(atom(label="r"), union(atom(label="s"), literal(("b", "x", "y")))),
    ])
    def test_counting_matches_set_semantics(self, graph, expr_builder):
        expr = expr_builder()
        answer = weighted_query(graph, expr, COUNTING)
        expected = path_count_by_endpoints(evaluate(expr, graph, 6))
        assert answer.relation.entries() == expected

    def test_star_of_atom_counts_walks(self):
        g = MultiRelationalGraph([(0, "r", 1), (1, "r", 2), (2, "r", 0)])
        expr = star(atom(label="r"))
        answer = weighted_query(g, expr, COUNTING, star_steps=4)
        # Walks of length 1..4 between specific endpoints on a 3-cycle are
        # unique per (pair, length): 0->1 via length 1 and length 4.
        assert answer.weight(0, 1) == 2
        assert answer.weight(0, 0) == 1  # only the length-3 walk
        assert answer.epsilon == 1       # the empty repetition

    def test_ambiguity_counts_derivations_not_paths(self, graph):
        """(r | r) has two derivations per r-edge — documented semantics."""
        expr = union(atom(label="r"), atom(label="r"))
        # The AST deduplicates nothing here; union sums.
        answer = weighted_query(graph, expr, COUNTING)
        assert answer.weight("a", "b") == 2
        # The set semantics sees one path.
        assert path_count_by_endpoints(evaluate(expr, graph, 2))[("a", "b")] == 1


class TestEpsilonHandling:
    def test_epsilon_weight_reported_separately(self, graph):
        answer = weighted_query(graph, EPSILON, COUNTING)
        assert answer.epsilon == 1
        assert len(answer.relation) == 0

    def test_nullable_join_passes_through(self, graph):
        expr = join(atom(label="r").optional(), atom(label="s"))
        answer = weighted_query(graph, expr, COUNTING)
        # Direct s-edges (optional skipped) plus r.s chains.
        assert answer.weight("b", "d") == 1
        assert answer.weight("a", "d") == 2  # via b and via c

    def test_empty_language(self, graph):
        from repro.regex import EMPTY
        answer = weighted_query(graph, EMPTY, COUNTING)
        assert answer.epsilon == 0
        assert len(answer.relation) == 0


class TestOtherSemirings:
    def test_boolean_matches_reachability(self, graph):
        expr = join(atom(label="r"), atom(label="s"))
        answer = weighted_query(graph, expr, BOOLEAN)
        expected = evaluate(expr, graph, 4).endpoint_pairs()
        assert answer.relation.support() == expected

    def test_tropical_cheapest_matching_path(self, graph):
        expr = join(atom(label="r"), atom(label="s"))
        answer = weighted_query(graph, expr, TROPICAL, weight=cost)
        # a-r->b (2) -s-> d (1) = 3 beats a-r->c (5) -s-> d (1) = 6.
        assert answer.weight("a", "d") == 3.0

    def test_tropical_with_star(self, graph):
        expr = join(atom(label="r"), star(join(atom(label="s"), atom(label="r"))))
        answer = weighted_query(graph, expr, TROPICAL, weight=cost)
        # a->b (2) then zero reps, or a->b (2), b-s->d (1), d-r->e (3) = 6.
        assert answer.weight("a", "b") == 2.0
        assert answer.weight("a", "e") == 6.0

    def test_product_forgets_middles(self, graph):
        expr = product(atom(tail="a", label="r"), atom(label="s"))
        answer = weighted_query(graph, expr, COUNTING)
        # Any of 2 a-r-edges followed disjointly by any of 2 s-edges: the
        # endpoint pair (a, d) accumulates all 4 combinations.
        assert answer.weight("a", "d") == 4

    def test_product_counting_matches_set_semantics_when_unambiguous(self, graph):
        expr = product(atom(tail="a", label="r"), atom(label="s"))
        expected = path_count_by_endpoints(evaluate(expr, graph, 4))
        answer = weighted_query(graph, expr, COUNTING)
        assert answer.relation.entries() == expected
