"""Differential harness: compact kernels == dict references under churn.

Seeded randomized interleavings of mutations (add/remove edge, add/remove
vertex) and queries, asserting after **every** step that the compact
backend — base CSR snapshots, delta overlays, and post-compaction rebuilds
alike — answers identically to the dict/hash reference implementations:

* ``rpq_pairs`` vs ``rpq_pairs_basic`` on the multi-relational graph,
* BFS distances, weak/strong components, geodesic summaries
  (diameter / average path length), closeness, betweenness and pagerank
  on the single-relational ``DiGraph``.

Across the parametrized seeds the module executes well over 1000
mutation+query steps, and each harness asserts that both the
delta-overlay state and the post-compaction (fresh base) state were
actually traversed — so snapshot staleness, journal replay bugs and
compaction regressions all fail loudly here.
"""

import random

import pytest

from repro.algorithms.centrality import (
    _betweenness_centrality_dict,
    _closeness_centrality_dict,
    betweenness_centrality,
    closeness_centrality,
)
from repro.algorithms.components import (
    _strongly_connected_components_dict,
    _weakly_connected_components_unionfind,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.algorithms.digraph import DiGraph
from repro.algorithms.geodesics import (
    _average_path_length_sums_dict,
    _diameter_dict,
    average_path_length,
    diameter,
)
from repro.algorithms.pagerank import pagerank
from repro.errors import AlgorithmError
from repro.graph import compact
from repro.graph.compact import (
    HAVE_NUMPY,
    CompactAdjacency,
    DeltaAdjacency,
    adjacency_snapshot,
)
from repro.graph.generators import uniform_random
from repro.rpq import (
    LabelEmpty,
    lconcat,
    lstar,
    lunion,
    rpq_pairs,
    rpq_pairs_basic,
    rpq_pairs_between,
    rpq_pairs_to_targets,
    sym,
)

LABELS = ("a", "b", "c")

EXPRESSIONS = [
    lconcat(sym("a"), sym("b")),
    lconcat(sym("a"), lstar(sym("b"))),
    lunion(lconcat(sym("a"), sym("b")), lstar(sym("c"))),
]


@pytest.fixture
def force_compact(monkeypatch):
    """Drop the DiGraph fast-path threshold so small graphs hit the compact
    kernels (the dict references are called directly by their private
    names, so both sides stay observable)."""
    monkeypatch.setattr(DiGraph, "_COMPACT_MIN_ORDER", 0)


def _mutate_mrg(graph, rng, vertices, step):
    """One random structural mutation; may resurrect removed vertices."""
    roll = rng.random()
    if roll < 0.40 or graph.size() == 0:
        graph.add_edge(rng.choice(vertices), rng.choice(LABELS),
                       rng.choice(vertices))
    elif roll < 0.75:
        edge = rng.choice(sorted(graph.edge_set(), key=repr))
        graph.remove_edge(edge.tail, edge.label, edge.head)
    elif roll < 0.85:
        fresh = ("fresh", step)
        graph.add_vertex(fresh)
        vertices.append(fresh)
    else:
        target = rng.choice(vertices)
        if graph.has_vertex(target):
            graph.remove_vertex(target)


class TestRpqDifferential:
    @pytest.mark.parametrize("seed", [11, 29])
    def test_rpq_pairs_matches_reference_at_every_step(self, seed):
        rng = random.Random(seed)
        graph = uniform_random(40, 200, labels=LABELS, seed=seed)
        vertices = sorted(graph.vertices(), key=repr)
        cache_states = set()
        for step in range(300):
            _mutate_mrg(graph, rng, vertices, step)
            expression = EXPRESSIONS[step % len(EXPRESSIONS)]
            if step % 7 == 0:
                live = sorted(graph.vertices(), key=repr)
                sources = frozenset(rng.sample(live, min(8, len(live))))
                assert rpq_pairs(graph, expression, sources=sources) == \
                    rpq_pairs_basic(graph, expression, sources=sources), \
                    "step {}".format(step)
            else:
                assert rpq_pairs(graph, expression) == \
                    rpq_pairs_basic(graph, expression), "step {}".format(step)
            cache_states.add(type(getattr(graph, compact._CACHE_ATTR)).__name__)
            if step % 60 == 0:
                # Overlay vs from-scratch rebuild: structural agreement.
                snapshot = adjacency_snapshot(graph)
                rebuilt = CompactAdjacency.build(graph)
                assert snapshot.num_edges == rebuilt.num_edges == graph.size()
                assert set(snapshot.vertex_ids) == set(graph.vertices())
        # The walk must have queried through a live delta overlay AND through
        # a post-compaction base CSR, or the harness proved nothing.
        assert cache_states == {"CompactAdjacency", "DeltaAdjacency"}


class TestDirectionalRpqDifferential:
    """Forward == backward == bidirectional == per-source reference, under
    churn, with and without endpoint filters.

    The three compact kernels traverse different arrays (forward CSR,
    reverse CSR, both) with different DFA orientations; this harness pins
    them to the dict-based reference on the same randomized
    mutation/query interleavings as the main RPQ differential, so a
    regression in the reverse blocks, the reversed move table, or the
    bitmask meet-join fails against ground truth, not just against a
    sibling kernel.
    """

    @pytest.mark.parametrize("seed", [3, 23])
    def test_all_directions_match_reference_under_churn(self, seed):
        rng = random.Random(seed)
        graph = uniform_random(30, 150, labels=LABELS, seed=seed)
        vertices = sorted(graph.vertices(), key=repr)
        for step in range(120):
            _mutate_mrg(graph, rng, vertices, step)
            if step % 3:
                continue
            expression = EXPRESSIONS[step % len(EXPRESSIONS)]
            live = sorted(graph.vertices(), key=repr)
            sources = frozenset(rng.sample(live, min(6, len(live))))
            targets = frozenset(rng.sample(live, min(6, len(live))))
            reference = rpq_pairs_basic(graph, expression)
            tag = "step {}".format(step)
            assert rpq_pairs_to_targets(graph, expression) == reference, tag
            restricted = frozenset(
                pair for pair in reference
                if pair[0] in sources and pair[1] in targets)
            assert rpq_pairs(graph, expression, sources=sources,
                             targets=targets) == restricted, tag
            assert rpq_pairs_to_targets(graph, expression, targets=targets,
                                        sources=sources) == restricted, tag
            assert rpq_pairs_between(graph, expression, sources,
                                     targets) == restricted, tag
            source, target = rng.choice(live), rng.choice(live)
            expected = frozenset(pair for pair in reference
                                 if pair == (source, target))
            assert rpq_pairs_between(graph, expression, {source},
                                     {target}) == expected, tag


@pytest.mark.skipif(not HAVE_NUMPY, reason="compact DiGraph kernels need numpy")
class TestDiGraphKernelDifferential:
    @pytest.mark.parametrize("seed", [5, 17])
    def test_all_kernels_match_dict_references_under_churn(self, seed,
                                                           force_compact):
        rng = random.Random(seed)
        graph = DiGraph()
        for v in range(36):
            graph.add_vertex(v)
        while graph.size() < 140:
            graph.add_edge(rng.randrange(36), rng.randrange(36),
                           rng.choice((0.5, 1.0, 2.0)))
        overlay_steps = 0
        base_identities = set()
        for step in range(250):
            if rng.random() < 0.55 or graph.size() == 0:
                tail = rng.randrange(36)
                head = tail if rng.random() < 0.05 else rng.randrange(36)
                graph.add_edge(tail, head, rng.choice((0.5, 1.0, 2.0)))
            else:
                tail, head, _ = rng.choice(sorted(graph.edges()))
                graph.remove_edge(tail, head)

            family = step % 5
            if family == 0:
                source = rng.randrange(36)
                assert graph.bfs_distances(source) == \
                    graph._bfs_distances_dict(source), "step {}".format(step)
            elif family == 1:
                assert weakly_connected_components(graph) == \
                    _weakly_connected_components_unionfind(graph)
            elif family == 2:
                assert strongly_connected_components(graph) == \
                    _strongly_connected_components_dict(graph)
            elif family == 3:
                best = _diameter_dict(graph)
                if best < 0:
                    with pytest.raises(AlgorithmError):
                        diameter(graph)
                else:
                    assert diameter(graph) == best
                total, count = _average_path_length_sums_dict(graph)
                if count == 0:
                    with pytest.raises(AlgorithmError):
                        average_path_length(graph)
                else:
                    assert average_path_length(graph) == total / float(count)
            else:
                fast = closeness_centrality(graph)
                slow = _closeness_centrality_dict(graph)
                assert set(fast) == set(slow)
                assert max(abs(fast[v] - slow[v]) for v in fast) < 1.0e-12

            if step % 25 == 24:
                fast = betweenness_centrality(graph)
                slow = _betweenness_centrality_dict(graph)
                assert max(abs(fast[v] - slow[v]) for v in fast) < 1.0e-9
                fast_ranks = pagerank(graph)
                original = DiGraph._COMPACT_MIN_ORDER
                DiGraph._COMPACT_MIN_ORDER = graph.order() + 1
                try:
                    slow_ranks = pagerank(graph)
                finally:
                    DiGraph._COMPACT_MIN_ORDER = original
                assert max(abs(fast_ranks[v] - slow_ranks[v])
                           for v in fast_ranks) < 1.0e-9

            cache = getattr(graph, compact._CACHE_ATTR)
            if cache.delta_ops > 0:
                overlay_steps += 1
            base_identities.add(id(cache.base))
        # Deltas were actually consulted, and at least one compaction folded
        # them into a fresh base.
        assert overlay_steps > 0
        assert len(base_identities) > 1


class TestPrunedDfaDifferential:
    """Pre-flight DFA pruning is invisible to query results under churn.

    Interleaves random mutations with queries answered three ways — the
    dict reference, the compact kernel on the *unpruned* automaton, and
    the compact kernel on the *pruned* automaton — asserting exact parity
    at every step, plus the engine path (cached pruned DFA + provable-
    emptiness short-circuits) on top.  The expression mix includes a label
    the graph never carries (always provably empty) and a union branch
    that dead-ends in the empty language — subset construction emits a
    real trap state for it, so the pruner has actual work; the harness
    asserts both pruning and emptiness verdicts occurred.
    """

    # (label expression, equivalent PathQL) pairs: the engine speaks
    # PathQL, the reference and kernels speak label expressions.  PathQL
    # of None skips the engine check (the rewriter folds embedded empty
    # languages away before the engine ever sees the trap state).
    CASES = [
        (lunion(sym("a"), lconcat(sym("b"), LabelEmpty())), None),
        (lconcat(sym("a"), sym("b")),
         "[_, a, _] . [_, b, _]"),
        (lconcat(sym("a"), lstar(sym("b"))),
         "[_, a, _] . [_, b, _]*"),
        (lunion(lconcat(sym("a"), sym("b")), lstar(sym("c"))),
         "([_, a, _] . [_, b, _]) | [_, c, _]*"),
        (lconcat(sym("a"), sym("zz")),
         "[_, a, _] . [_, zz, _]"),
        (lconcat(lstar(sym("c")), sym("b")),
         "[_, c, _]* . [_, b, _]"),
    ]

    @pytest.mark.parametrize("seed", [7, 23])
    def test_pruned_equals_unpruned_at_every_step(self, seed):
        from repro.analysis.query import analyze_compiled_query, prune_dfa
        from repro.engine import Engine
        from repro.graph.compact import rpq_pairs_compact
        from repro.rpq.evaluation import compile_rpq

        rng = random.Random(seed)
        graph = uniform_random(30, 120, labels=LABELS, seed=seed)
        vertices = sorted(graph.vertices(), key=repr)
        engine = Engine(graph)
        states_pruned = 0
        empty_verdicts = 0
        for step in range(200):
            _mutate_mrg(graph, rng, vertices, step)
            label_expression, pathql = self.CASES[step % len(self.CASES)]
            reference = rpq_pairs_basic(graph, label_expression)

            unpruned = compile_rpq(label_expression, graph)
            pruned, removed = prune_dfa(unpruned)
            states_pruned += removed
            assert rpq_pairs_compact(graph, unpruned) == reference, \
                "unpruned kernel diverged at step {}".format(step)
            assert rpq_pairs_compact(graph, pruned) == reference, \
                "pruned kernel diverged at step {}".format(step)

            diagnostics = analyze_compiled_query(unpruned, label_expression,
                                                 graph.labels())
            if diagnostics.empty:
                empty_verdicts += 1
                assert reference == frozenset(), \
                    "unsound emptiness verdict at step {}".format(step)

            if pathql is not None:
                assert engine.pairs(pathql) == reference, \
                    "engine path diverged at step {}".format(step)
        assert states_pruned > 0, "churn never produced a prunable DFA"
        assert empty_verdicts > 0, "churn never produced an empty verdict"
