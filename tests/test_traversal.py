"""Tests for the section III traversal idioms."""

import pytest

from repro.core.path import Path
from repro.core.traversal import (
    Step,
    between_traversal,
    complete_traversal,
    destination_traversal,
    labeled_traversal,
    resolve_step,
    source_traversal,
    traverse,
)
from repro.graph.graph import MultiRelationalGraph


class TestStep:
    def test_default_step_admits_everything(self, diamond):
        assert len(resolve_step(diamond, Step())) == diamond.size()

    def test_tail_restriction(self, diamond):
        step = Step.make(tails={"a"})
        assert len(resolve_step(diamond, step)) == 3

    def test_label_restriction(self, diamond):
        step = Step.make(labels={"beta"})
        assert len(resolve_step(diamond, step)) == 3

    def test_head_restriction(self, diamond):
        step = Step.make(heads={"d"})
        assert len(resolve_step(diamond, step)) == 3

    def test_combined_restrictions(self, diamond):
        step = Step.make(tails={"a"}, labels={"beta"})
        resolved = resolve_step(diamond, step)
        assert len(resolved) == 1
        assert Path.single("a", "beta", "d") in resolved

    def test_exclusions_are_the_complement(self, diamond):
        """The paper's Vs-bar convention."""
        step = Step.make(exclude_tails={"a"})
        resolved = resolve_step(diamond, step)
        assert len(resolved) == 2
        assert all(p.tail != "a" for p in resolved)

    def test_exclude_labels(self, diamond):
        step = Step.make(exclude_labels={"alpha"})
        assert len(resolve_step(diamond, step)) == 3

    def test_missing_vertices_resolve_empty(self, diamond):
        assert len(resolve_step(diamond, Step.make(tails={"zzz"}))) == 0

    def test_admits(self, diamond):
        from repro.core.edge import Edge
        step = Step.make(labels={"alpha"}, exclude_heads={"c"})
        assert step.admits(Edge("a", "alpha", "b"))
        assert not step.admits(Edge("a", "alpha", "c"))
        assert not step.admits(Edge("a", "beta", "d"))


class TestCompleteTraversal:
    def test_length_one_is_e(self, diamond):
        assert complete_traversal(diamond, 1) == diamond.all_paths()

    def test_length_two_counts_joint_pairs(self, diamond):
        paths = complete_traversal(diamond, 2)
        # a->b->d and a->c->d are the only joint 2-walks.
        assert len(paths) == 2
        assert all(p.is_joint for p in paths)

    def test_length_three_empty_on_dag_of_depth_two(self, diamond):
        assert len(complete_traversal(diamond, 3)) == 0

    def test_cycle_walk_counts(self, triangle_cycle):
        for n in range(1, 5):
            assert len(complete_traversal(triangle_cycle, n)) == 3

    def test_zero_length_rejected(self, diamond):
        with pytest.raises(ValueError):
            complete_traversal(diamond, 0)


class TestSourceTraversal:
    def test_restricts_tails(self, diamond):
        paths = source_traversal(diamond, {"a"}, 2)
        assert len(paths) == 2
        assert paths.tails() == {"a"}

    def test_source_equal_v_is_complete(self, diamond):
        """The paper: when Vs = V a complete traversal is evaluated."""
        assert source_traversal(diamond, diamond.vertices(), 2) == \
            complete_traversal(diamond, 2)

    def test_complement(self, diamond):
        paths = source_traversal(diamond, {"a"}, 1, complement=True)
        assert all(p.tail != "a" for p in paths)

    def test_nonexistent_source_is_empty(self, diamond):
        assert len(source_traversal(diamond, {"zzz"}, 2)) == 0


class TestDestinationTraversal:
    def test_restricts_heads(self, diamond):
        paths = destination_traversal(diamond, {"d"}, 2)
        assert len(paths) == 2
        assert paths.heads() == {"d"}

    def test_destination_equal_v_is_complete(self, diamond):
        assert destination_traversal(diamond, diamond.vertices(), 2) == \
            complete_traversal(diamond, 2)

    def test_complement(self, diamond):
        paths = destination_traversal(diamond, {"d"}, 1, complement=True)
        assert all(p.head != "d" for p in paths)


class TestBetweenTraversal:
    def test_combined_restriction(self, diamond):
        paths = between_traversal(diamond, {"a"}, {"d"}, 2)
        assert len(paths) == 2
        assert paths.tails() == {"a"}
        assert paths.heads() == {"d"}

    def test_length_one(self, diamond):
        paths = between_traversal(diamond, {"a"}, {"d"}, 1)
        assert paths == {Path.single("a", "beta", "d")}

    def test_impossible_combination_is_empty(self, diamond):
        assert len(between_traversal(diamond, {"d"}, {"a"}, 2)) == 0


class TestLabeledTraversal:
    def test_label_sequence(self, diamond):
        paths = labeled_traversal(diamond, [{"alpha"}, {"beta"}])
        assert len(paths) == 2
        assert all(p.label_path == ("alpha", "beta") for p in paths)

    def test_full_label_sets_give_complete(self, diamond):
        """The paper: Omega_e = Omega_f = Omega enacts a complete traversal."""
        omega = diamond.labels()
        assert labeled_traversal(diamond, [omega, omega]) == \
            complete_traversal(diamond, 2)

    def test_none_means_unconstrained(self, diamond):
        paths = labeled_traversal(diamond, [None, {"beta"}])
        assert len(paths) == 2

    def test_wrong_order_is_empty(self, diamond):
        assert len(labeled_traversal(diamond, [{"beta"}, {"alpha"}])) == 0

    def test_multi_label_step(self, diamond):
        paths = labeled_traversal(diamond, [{"alpha", "beta"}])
        assert len(paths) == diamond.size()


class TestGeneralTraverse:
    def test_empty_step_list_is_epsilon(self, diamond):
        from repro.core.pathset import EPSILON_SET
        assert traverse(diamond, []) == EPSILON_SET

    def test_mid_traversal_waypoint(self, diamond):
        """Force the intermediate vertex: section III's 'through a particular
        set of vertices' composition."""
        steps = [Step.make(tails={"a"}, heads={"b"}), Step()]
        paths = traverse(diamond, steps)
        assert len(paths) == 1
        assert next(iter(paths)).vertices() == ("a", "b", "d")

    def test_early_exit_on_empty_intermediate(self, diamond):
        steps = [Step.make(labels={"nothing"}), Step(), Step()]
        assert len(traverse(diamond, steps)) == 0

    def test_results_always_joint(self, random_graph):
        for p in traverse(random_graph, [Step(), Step(), Step()]):
            assert p.is_joint

    def test_matches_manual_joins(self, random_graph):
        e = random_graph.all_paths()
        assert traverse(random_graph, [Step(), Step()]) == e @ e
