"""Service-tier robustness: 413, readiness, degraded 503s, eviction races.

The HTTP half of the fail-stop-or-correct contract: every injected or
induced failure must surface as the documented status code with the
documented retriability — and a store serving under degradation must
keep answering queries exactly while refusing mutations.
"""

import asyncio
import json

import pytest

from repro.errors import ServiceError
from repro.faults import FaultPlan, clear_plan, fault_scope
from repro.graph.graph import MultiRelationalGraph
from repro.service import GraphRegistry, HttpServer
from repro.storage import PersistentGraph

CHAIN = 10


@pytest.fixture(autouse=True)
def disarmed():
    clear_plan()
    yield
    clear_plan()


def chain_graph(name="chain"):
    graph = MultiRelationalGraph(name=name)
    for i in range(CHAIN):
        graph.add_edge(i, "a", i + 1)
    graph.add_edge(0, "b", CHAIN)
    return graph


@pytest.fixture
def store_root(tmp_path):
    root = tmp_path / "graphs"
    root.mkdir()
    for name in ("alpha", "beta"):
        PersistentGraph.create(str(root / name), chain_graph(name),
                               name=name).close()
    return str(root)


async def http_request(host, port, method, path, body=None, token=None,
                       content_length=None):
    """One-shot HTTP/1.1 client; ``content_length`` overrides the header."""
    reader, writer = await asyncio.open_connection(host, port)
    data = b"" if body is None else json.dumps(body).encode()
    length = len(data) if content_length is None else content_length
    lines = ["{} {} HTTP/1.1".format(method, path), "Host: test",
             "Content-Length: {}".format(length)]
    if token is not None:
        lines.append("Authorization: Bearer {}".format(token))
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + data)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, payload = raw.partition(b"\r\n\r\n")
    head_lines = head.decode("latin-1").split("\r\n")
    status = int(head_lines[0].split()[1])
    headers = {}
    for line in head_lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return status, json.loads(payload), headers


def run_server(store_root, coro_factory, **server_kwargs):
    async def run():
        registry = GraphRegistry(store_root, max_workers=2,
                                 **server_kwargs.pop("registry", {}))
        server = HttpServer(registry, **server_kwargs)
        host, port = await server.start()
        try:
            await coro_factory(host, port, server)
        finally:
            await server.stop()
    asyncio.run(run())


class TestPayloadTooLarge:
    def test_oversize_body_maps_to_413(self, store_root):
        async def scenario(host, port, server):
            status, payload, _ = await http_request(
                host, port, "POST", "/v1/graphs/alpha/query",
                {"query": "[_, a, _]"}, content_length=256)
            assert status == 413
            assert payload["retriable"] is False
            assert "byte limit" in payload["error"]
            # In-bounds requests on the same server still serve.
            status, payload, _ = await http_request(
                host, port, "POST", "/v1/graphs/alpha/query",
                {"query": "[_, b, _]"})
            assert status == 200 and payload["pairs"] == [[0, CHAIN]]
        run_server(store_root, scenario, max_body=64)


class TestReadiness:
    def test_readyz_is_unauthenticated_and_ready(self, store_root):
        async def scenario(host, port, server):
            # No token on either probe, even though auth is configured.
            status, payload, _ = await http_request(host, port, "GET",
                                                    "/healthz")
            assert status == 200
            status, payload, _ = await http_request(host, port, "GET",
                                                    "/readyz")
            assert status == 200 and payload["status"] == "ready"
            assert payload["degraded"] == []
        run_server(store_root, scenario, tokens={"secret": "tenant"})

    def test_degraded_store_flips_readyz_and_maps_503(self, store_root):
        async def scenario(host, port, server):
            plan = FaultPlan()
            plan.arm("wal.write", "eio", times=1)
            # The registry opens stores with the batched WAL policy, so
            # the batch must overflow (64 records) to cross the write
            # site mid-mutation: 30 fresh edges emit ~90 records.
            edges = [["u{}".format(i), "a", "v{}".format(i)]
                     for i in range(30)]
            with fault_scope(plan):
                status, payload, headers = await http_request(
                    host, port, "POST", "/v1/graphs/alpha/mutate",
                    {"add_edges": edges})
            assert status == 503
            assert payload["retriable"] is True and payload["degraded"]
            assert float(headers["retry-after"]) == payload["retry_after"]
            # Live but not ready; the failing graph is named.
            status, payload, _ = await http_request(host, port, "GET",
                                                    "/healthz")
            assert status == 200
            status, payload, headers = await http_request(host, port, "GET",
                                                          "/readyz")
            assert status == 503 and payload["status"] == "unready"
            assert payload["degraded"] == ["alpha"]
            assert "retry-after" in headers
            # Queries still serve the exact live state while degraded.
            status, payload, _ = await http_request(
                host, port, "POST", "/v1/graphs/alpha/query",
                {"query": "[_, b, _]"})
            assert status == 200 and payload["pairs"] == [[0, CHAIN]]
            # Further mutations are refused with the same 503 contract.
            status, payload, _ = await http_request(
                host, port, "POST", "/v1/graphs/alpha/mutate",
                {"add_edges": [["x", "a", "y"]]})
            assert status == 503 and payload["retriable"] is True
            # Stats surface the mode for operators.
            status, payload, _ = await http_request(
                host, port, "GET", "/v1/graphs/alpha/stats")
            assert payload["info"]["degraded"] is True
            # A checkpoint heals: readyz recovers, mutations land again.
            status, payload, _ = await http_request(
                host, port, "POST", "/v1/graphs/alpha/checkpoint")
            assert status == 200
            status, payload, _ = await http_request(host, port, "GET",
                                                    "/readyz")
            assert status == 200 and payload["status"] == "ready"
            status, payload, _ = await http_request(
                host, port, "POST", "/v1/graphs/alpha/mutate",
                {"add_edges": [["x", "a", "y"]]})
            assert status == 200 and payload["added"] == 1
        run_server(store_root, scenario)


class TestInjectedConnectionFaults:
    def test_connection_drop_resets_without_partial_json(self, store_root):
        async def scenario(host, port, server):
            plan = FaultPlan()
            plan.arm("http.connection_drop", "drop", times=1)
            with fault_scope(plan):
                reader, writer = await asyncio.open_connection(host, port)
                body = json.dumps({"query": "[_, b, _]"}).encode()
                writer.write((
                    "POST /v1/graphs/alpha/query HTTP/1.1\r\n"
                    "Host: test\r\nContent-Length: {}\r\n\r\n".format(
                        len(body))).encode() + body)
                await writer.drain()
                raw = await reader.read()
                writer.close()
                # Fail-stop: the abort delivers nothing, never a torn 200.
                assert raw == b""
                assert plan.fired("http.connection_drop") == 1
            # The next request on a fresh connection is served normally.
            status, payload, _ = await http_request(
                host, port, "POST", "/v1/graphs/alpha/query",
                {"query": "[_, b, _]"})
            assert status == 200 and payload["pairs"] == [[0, CHAIN]]
        run_server(store_root, scenario)


class TestEvictionRaces:
    def test_inflight_query_blocks_eviction_until_drained(self, store_root):
        async def run():
            registry = GraphRegistry(store_root, max_workers=2, max_open=1)
            try:
                handle = registry.acquire("alpha")
                release = asyncio.Event()
                original = handle.engine.pairs

                def slow_pairs(*args, **kwargs):
                    import time
                    while not release.is_set():
                        time.sleep(0.005)
                    return original(*args, **kwargs)

                handle.engine.pairs = slow_pairs
                task = asyncio.ensure_future(
                    handle.async_engine.pairs("[_, b, _]"))
                while handle.async_engine._active_readers == 0:
                    await asyncio.sleep(0.005)
                # The HTTP tier already released its reference, but the
                # admitted query must keep the graph alive.
                registry.release("alpha")
                assert handle.refcount == 0
                assert not handle.async_engine.idle
                with pytest.raises(ServiceError, match="busy"):
                    registry.acquire("beta")
                release.set()
                answer = await task
                assert answer == frozenset({(0, CHAIN)})
                # Drained: beta can now open, evicting idle alpha.
                beta = registry.acquire("beta")
                assert sorted(registry.stats()["open_graphs"]) == ["beta"]
                got = await beta.async_engine.pairs("[_, b, _]")
                assert got == frozenset({(0, CHAIN)})
            finally:
                await registry.aclose()
        asyncio.run(run())
