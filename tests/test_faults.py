"""The fault-injection framework and the self-healing it exercises.

Three layers, all under the fail-stop-or-correct contract:

* the framework itself — deterministic trigger counters, ``REPRO_FAULTS``
  spec parsing, scoped arming, the zero-overhead disarmed path,
* the WAL under injected write/fsync failures — a failed flush rolls the
  file back to its durable prefix and a retried flush never double-writes
  it; a failed *rollback* poisons the handle (fail-stop) and reopening
  recovers through torn-tail repair,
* the store's read-only degraded mode and the pool's kill/hang
  self-healing — every recovery path must end in either a typed error or
  the exact dict-reference answer.
"""

import os

import pytest

from repro.engine.parallel import ParallelExecutor, fork_available
from repro.errors import StorageError, StoreDegradedError
from repro.faults import (
    Fault,
    FaultPlan,
    KILL_EXIT_CODE,
    clear_plan,
    fault_hook,
    fault_point,
    fault_scope,
    install_plan,
    installed_plan,
    worker_fault_point,
)
from repro.graph.generators import uniform_random
from repro.rpq import lconcat, lstar, rpq_pairs_basic, sym
from repro.rpq.evaluation import compile_rpq
from repro.storage import PersistentGraph
from repro.storage.wal import WriteAheadLog, scan_wal

needs_fork = pytest.mark.skipif(
    not fork_available(),
    reason="pool fault tests need the fork start method")

STAR = lconcat(sym("a"), lstar(sym("b")))


@pytest.fixture(autouse=True)
def disarmed():
    """Every test starts and ends with fault injection disarmed."""
    clear_plan()
    yield
    clear_plan()


class TestFaultPlan:
    def test_after_and_times_counters(self):
        plan = FaultPlan(seed=7)
        fault = plan.arm("site.x", "eio", after=2, times=2)
        fired = [plan.check("site.x") is not None for _ in range(6)]
        assert fired == [False, False, True, True, False, False]
        assert fault.calls == 6 and fault.fired == 2
        assert plan.hits == 6
        assert plan.fired("site.x") == 2 and plan.fired() == 2

    def test_times_none_fires_every_hit(self):
        plan = FaultPlan()
        plan.arm("site.x", "enospc", times=None)
        assert all(plan.check("site.x") for _ in range(5))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Fault("site.x", "explode")

    def test_hits_count_even_with_nothing_armed(self):
        plan = FaultPlan()
        assert plan.check("never.armed") is None
        assert plan.hits == 1

    def test_token_file_fires_at_most_once(self, tmp_path):
        token = tmp_path / "token"
        token.write_text("")
        plan = FaultPlan()
        plan.arm("site.x", "kill", times=None, token=str(token))
        plan.arm("site.x", "kill", times=None, token=str(token))
        fired = [plan.check("site.x") is not None for _ in range(4)]
        assert fired.count(True) == 1
        assert not token.exists()

    def test_from_spec_roundtrip(self):
        plan = FaultPlan.from_spec(
            "wal.fsync:eio:times=1;http.connection_drop:drop:after=2;"
            "pool.task:hang:seconds=0.25:times=none;"
            "wal.write:enospc:fraction=0.25:token=/tmp/t", seed=5)
        assert plan.seed == 5
        assert plan.sites() == ["http.connection_drop", "pool.task",
                                "wal.fsync", "wal.write"]
        hang = plan._faults["pool.task"][0]
        assert hang.times is None and hang.seconds == 0.25
        short = plan._faults["wal.write"][0]
        assert short.fraction == 0.25 and short.token == "/tmp/t"

    @pytest.mark.parametrize("spec", [
        "justasite",                 # no kind
        "site.x:explode",            # unknown kind
        "site.x:eio:bogus=1",        # unknown option
        "site.x:eio:times",          # no '=' in option
        "site.x:eio:times=soon",     # non-numeric
    ])
    def test_from_spec_fails_loudly(self, spec):
        with pytest.raises((StorageError, ValueError)):
            FaultPlan.from_spec(spec)

    def test_scope_installs_and_restores(self):
        assert installed_plan() is None
        outer = FaultPlan()
        install_plan(outer)
        with fault_scope(FaultPlan(seed=1)) as inner:
            assert installed_plan() is inner
        assert installed_plan() is outer
        clear_plan()
        assert installed_plan() is None

    def test_disarmed_hooks_are_no_ops(self):
        assert fault_hook("any.site") is None
        fault_point("any.site")          # must not raise
        worker_fault_point("any.site")   # must not raise

    def test_fault_point_raises_typed_oserror(self):
        import errno
        plan = FaultPlan()
        plan.arm("site.x", "enospc")
        with fault_scope(plan):
            with pytest.raises(OSError) as exc:
                fault_point("site.x")
        assert exc.value.errno == errno.ENOSPC

    def test_worker_fault_point_never_kills_arming_process(self):
        plan = FaultPlan()
        plan.arm("pool.task", "kill", times=None)
        called = []
        with fault_scope(plan):
            worker_fault_point("pool.task", _exit=called.append)
        assert called == []       # same pid as the arming process
        assert plan.fired() == 0

    def test_worker_fault_point_kills_in_foreign_pid(self):
        plan = FaultPlan()
        plan.arm("pool.task", "kill")
        plan._pid = os.getpid() - 1   # pretend a fork armed it
        called = []
        with fault_scope(plan):
            worker_fault_point("pool.task", _exit=called.append)
        assert called == [KILL_EXIT_CODE]


class TestWalUnderFaults:
    def entries(self, start, count):
        return [(v, "add_edge", v, "a", v + 1)
                for v in range(start, start + count)]

    def test_failed_fsync_rolls_back_then_retry_writes_once(self, tmp_path):
        path = str(tmp_path / "wal.log")
        plan = FaultPlan()
        plan.arm("wal.fsync", "eio", times=1)
        with fault_scope(plan):
            wal = WriteAheadLog(path, sync="batch", batch_size=100)
            first = self.entries(0, 3)
            for entry in first:
                wal.append(entry)
            with pytest.raises(StorageError):
                wal.flush()
            # Rolled back: the durable prefix is just the magic header.
            entries, _, torn = scan_wal(path)
            assert entries == [] and not torn
            # The pending batch is still queued; the retried flush must
            # write it exactly once — no duplicated prefix.
            for entry in self.entries(3, 2):
                wal.append(entry)
            wal.flush()
            wal.close()
        entries, _, torn = scan_wal(path)
        assert entries == first + self.entries(3, 2) and not torn
        assert plan.fired("wal.fsync") == 1

    def test_short_write_never_double_writes_prefix(self, tmp_path):
        path = str(tmp_path / "wal.log")
        plan = FaultPlan()
        # ENOSPC mid-buffer: 60% of the batch reaches the file, then the
        # device "fills up".  The rollback must erase that torn prefix.
        plan.arm("wal.write", "enospc", times=1, fraction=0.6)
        with fault_scope(plan):
            wal = WriteAheadLog(path, sync="batch", batch_size=100)
            batch = self.entries(0, 8)
            for entry in batch:
                wal.append(entry)
            with pytest.raises(StorageError):
                wal.flush()
            wal.flush()   # retry on the healed device
            wal.close()
        entries, _, torn = scan_wal(path)
        assert entries == batch and not torn     # exactly once each
        assert wal.records_durable == len(batch)

    def test_torn_tail_on_disk_is_recovered_by_reopen(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, sync="batch", batch_size=100)
        durable = self.entries(0, 4)
        for entry in durable:
            wal.append(entry)
        wal.flush()
        wal.close()
        # Simulate a crash mid-append: a torn frame after the prefix.
        with open(path, "ab") as stream:
            stream.write(b"\x13\x37torn-frame-bytes")
        entries, _, torn = scan_wal(path)
        assert entries == durable and torn
        reopened = WriteAheadLog(path)
        reopened.append(durable[-1])
        reopened.flush()
        reopened.close()
        entries, _, torn = scan_wal(path)
        assert entries == durable + [durable[-1]] and not torn

    def test_failed_rollback_poisons_the_handle(self, tmp_path):
        path = str(tmp_path / "wal.log")
        plan = FaultPlan()
        plan.arm("wal.fsync", "eio", times=1)
        plan.arm("wal.rewind", "eio", times=1)   # rollback fails too
        with fault_scope(plan):
            wal = WriteAheadLog(path, sync="always")
            with pytest.raises(StorageError):
                wal.append((1, "add_edge", 0, "a", 1))
            assert wal.broken is not None
            with pytest.raises(StorageError, match="broken"):
                wal.append((2, "add_edge", 1, "a", 2))
            wal.close()   # idempotent even when broken
        # Fail-stop held: reopening repairs through torn-tail recovery.
        recovered = WriteAheadLog(path)
        assert recovered.broken is None
        recovered.close()


def seeded_store(directory, seed=11, vertices=60, edges=420, **kwargs):
    graph = uniform_random(vertices, edges, labels=("a", "b", "c"),
                           seed=seed)
    return PersistentGraph.create(str(directory), graph, name="chaos",
                                  **kwargs)


class TestDegradedMode:
    def test_wal_failure_degrades_heals_by_checkpoint(self, tmp_path):
        store = seeded_store(tmp_path / "g", sync="always")
        reference = store.graph()
        # Pre-create the endpoints so the armed fault hits the single
        # "+e" record (a fresh endpoint would emit its own "+v" first).
        store.add_vertex("u")
        store.add_vertex("v")
        plan = FaultPlan()
        plan.arm("wal.fsync", "eio", times=1)
        with fault_scope(plan):
            with pytest.raises(StoreDegradedError) as exc:
                store.add_edge("u", "a", "v")
        assert store.degraded and exc.value.retry_after > 0
        # The triggering mutation stays applied in memory (it happened
        # before durability failed); queries must serve it exactly.
        assert reference.has_edge("u", "a", "v")
        assert store.pairs(STAR) == rpq_pairs_basic(reference, STAR)
        # Further mutations are refused *before* touching state.
        with pytest.raises(StoreDegradedError):
            store.add_edge("x", "a", "y")
        assert not reference.has_edge("x", "a", "y")
        with pytest.raises(StoreDegradedError):
            store.flush()
        info = store.info()
        assert info["degraded"] and info["degraded_reason"]
        # Checkpoint folds the live state into a fresh generation: healed.
        outcome = store.checkpoint()
        assert not store.degraded and outcome["generation"] == 2
        store.add_edge("x", "a", "y")
        store.close()
        with PersistentGraph.open(str(tmp_path / "g"),
                                  materialize=True) as reopened:
            assert reopened.graph().has_edge("u", "a", "v")
            assert reopened.graph().has_edge("x", "a", "y")
            assert reopened.pairs(STAR) == rpq_pairs_basic(reference, STAR)

    def test_snapshot_and_manifest_faults_are_typed(self, tmp_path):
        store = seeded_store(tmp_path / "g")
        store.add_edge("u", "a", "v")
        for site in ("snapshot.fsync", "manifest.rename"):
            plan = FaultPlan()
            plan.arm(site, "eio", times=1)
            with fault_scope(plan):
                with pytest.raises(StorageError):
                    store.checkpoint()
            assert plan.fired(site) == 1
        # The store survives every failed checkpoint and can still heal.
        outcome = store.checkpoint()
        assert outcome["generation"] >= 2
        store.close()

    def test_shard_publish_fault_is_typed_and_leaves_no_tmp(self, tmp_path):
        from repro.graph.sharding import sharded_snapshot
        from repro.storage.snapshots import write_sharded_snapshots
        graph = uniform_random(40, 200, labels=("a", "b"), seed=2)
        sharded = sharded_snapshot(graph, 2)
        target = str(tmp_path / "shards")
        plan = FaultPlan()
        plan.arm("shard.rename", "eio", times=1)
        with fault_scope(plan):
            with pytest.raises(StorageError):
                write_sharded_snapshots(target, sharded)
        assert not [name for name in os.listdir(target)
                    if name.endswith(".tmp")]
        # The device healed: the same spill now publishes cleanly.
        manifest = write_sharded_snapshots(target, sharded)
        assert manifest["num_shards"] == 2

    def test_read_fault_is_typed_not_wrong(self, tmp_path):
        store = seeded_store(tmp_path / "g")
        plan = FaultPlan()
        plan.arm("store.pairs", "eio", times=1)
        with fault_scope(plan):
            with pytest.raises(StorageError):
                store.pairs(STAR)
            # Fired once; the next read is correct again.
            assert store.pairs(STAR) == rpq_pairs_basic(store.graph(), STAR)
        store.close()


@needs_fork
class TestPoolSelfHealing:
    def executor(self, graph, **kwargs):
        kwargs.setdefault("processes", 2)
        kwargs.setdefault("min_edges", 0)
        return ParallelExecutor(graph, **kwargs)

    def test_kill_one_worker_respawns_and_answers_exactly(self, tmp_path):
        token = tmp_path / "kill-once"
        token.write_text("")
        graph = uniform_random(80, 600, labels=("a", "b"), seed=3)
        expected = rpq_pairs_basic(graph, STAR)
        plan = FaultPlan()
        plan.arm("pool.task", "kill", times=None, token=str(token))
        with fault_scope(plan):
            with self.executor(graph) as executor:
                dfa = compile_rpq(STAR, graph)
                assert executor.rpq_pairs(dfa) == expected
                assert executor.workers_respawned >= 1
                assert executor.tasks_retried > 0
                assert executor.serial_fallbacks == 0
                # The pool healed: the next fan-out runs clean.
                assert executor.rpq_pairs(dfa) == expected
                stats = executor.stats()
        assert not token.exists()
        assert stats["workers_respawned"] >= 1

    def test_kill_everything_falls_back_to_serial(self):
        graph = uniform_random(80, 600, labels=("a", "b"), seed=5)
        expected = rpq_pairs_basic(graph, STAR)
        plan = FaultPlan()
        plan.arm("pool.task", "kill", times=None)   # every worker, always
        with fault_scope(plan):
            with self.executor(graph, max_task_retries=1) as executor:
                dfa = compile_rpq(STAR, graph)
                assert executor.rpq_pairs(dfa) == expected
                assert executor.serial_fallbacks == 1
                assert executor.workers_respawned >= 1

    def test_hung_worker_trips_stall_watchdog(self):
        graph = uniform_random(80, 600, labels=("a", "b"), seed=7)
        expected = rpq_pairs_basic(graph, STAR)
        plan = FaultPlan()
        plan.arm("pool.task", "hang", times=None, seconds=60.0)
        with fault_scope(plan):
            with self.executor(graph, max_task_retries=0,
                               stall_timeout=0.5) as executor:
                dfa = compile_rpq(STAR, graph)
                assert executor.rpq_pairs(dfa) == expected
                assert executor.serial_fallbacks == 1

    def test_healthy_reflects_pool_state(self):
        graph = uniform_random(80, 600, labels=("a", "b"), seed=9)
        with self.executor(graph) as executor:
            dfa = compile_rpq(STAR, graph)
            executor.rpq_pairs(dfa)
            assert executor.healthy()
            stats = executor.stats()
            assert stats["healthy"] and stats["workers_respawned"] == 0
