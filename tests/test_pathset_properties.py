"""Property-based tests (hypothesis) for the algebraic laws of section II.

Strategy: draw small random edge universes over a handful of vertices and
labels, form random paths and path sets, and check the laws the paper
states (monoid laws, associativity of join/product, distributivity over
union, the footnote-7 containment) on every draw.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.edge import Edge
from repro.core.path import EPSILON, Path
from repro.core.pathset import EPSILON_SET, PathSet

VERTICES = ["u", "v", "w", "x"]
LABELS = ["a", "b"]

edges = st.builds(
    Edge,
    st.sampled_from(VERTICES),
    st.sampled_from(LABELS),
    st.sampled_from(VERTICES),
)

paths = st.lists(edges, min_size=0, max_size=4).map(Path)
nonempty_paths = st.lists(edges, min_size=1, max_size=4).map(Path)
path_sets = st.lists(paths, min_size=0, max_size=6).map(PathSet)


@given(paths, paths, paths)
def test_concatenation_is_associative(a, b, c):
    assert (a + b) + c == a + (b + c)


@given(paths)
def test_epsilon_is_identity(a):
    assert EPSILON + a == a
    assert a + EPSILON == a


@given(paths, paths)
def test_length_is_a_monoid_homomorphism(a, b):
    assert len(a + b) == len(a) + len(b)


@given(paths, paths)
def test_label_path_is_a_monoid_homomorphism(a, b):
    """Definition 2 commutes with concatenation."""
    assert (a + b).label_path == a.label_path + b.label_path


@given(paths, paths)
def test_reversal_is_an_anti_automorphism(a, b):
    assert (a + b).reversed() == b.reversed() + a.reversed()


@given(paths)
def test_reversal_is_an_involution(a):
    assert a.reversed().reversed() == a


@given(nonempty_paths, nonempty_paths)
def test_endpoints_of_concatenation(a, b):
    combined = a + b
    assert combined.tail == a.tail
    assert combined.head == b.head


@settings(max_examples=60)
@given(path_sets, path_sets, path_sets)
def test_join_is_associative(a, b, c):
    assert (a @ b) @ c == a @ (b @ c)


@settings(max_examples=60)
@given(path_sets, path_sets, path_sets)
def test_product_is_associative(a, b, c):
    assert (a * b) * c == a * (b * c)


@settings(max_examples=60)
@given(path_sets, path_sets)
def test_join_is_contained_in_product(a, b):
    """Footnote 7: R join Q is a subset of R product Q."""
    assert (a @ b) <= (a * b)


@settings(max_examples=60)
@given(path_sets, path_sets)
def test_join_agrees_with_naive_definition(a, b):
    """The hash equijoin must equal the paper's definitional scan."""
    assert a.join(b) == a.join_naive(b)


@settings(max_examples=60)
@given(path_sets)
def test_epsilon_set_is_join_identity(a):
    assert EPSILON_SET @ a == a
    assert a @ EPSILON_SET == a


@settings(max_examples=60)
@given(path_sets)
def test_epsilon_set_is_product_identity(a):
    assert EPSILON_SET * a == a
    assert a * EPSILON_SET == a


@settings(max_examples=60)
@given(path_sets, path_sets, path_sets)
def test_join_distributes_over_union(a, b, c):
    assert a @ (b | c) == (a @ b) | (a @ c)
    assert (b | c) @ a == (b @ a) | (c @ a)


@settings(max_examples=60)
@given(path_sets, path_sets, path_sets)
def test_product_distributes_over_union(a, b, c):
    assert a * (b | c) == (a * b) | (a * c)


@settings(max_examples=60)
@given(path_sets, path_sets)
def test_join_results_are_joint_at_the_boundary(a, b):
    """Every joined pair either involved epsilon or is adjacent at the seam."""
    for p in (a @ b).paths:
        # Each result is some a_i o b_j; we cannot recover the split, but a
        # sufficient check is that a seam violating adjacency could only
        # come from an epsilon operand — i.e. the result must appear in the
        # naive join too.
        assert p in a.join_naive(b).paths


@settings(max_examples=40)
@given(path_sets, st.integers(min_value=0, max_value=3))
def test_join_power_lengths(a, n):
    """Every member of A^n has length equal to a sum of n member lengths."""
    member_lengths = {len(p) for p in a.paths}
    for p in (a ** n).paths:
        if n == 0:
            assert p == EPSILON
        elif member_lengths:
            assert len(p) <= n * max(member_lengths)


@settings(max_examples=40)
@given(path_sets, st.integers(min_value=0, max_value=4))
def test_closure_is_length_bounded_and_contains_epsilon(a, bound):
    closed = a.closure(bound)
    assert EPSILON in closed
    assert all(len(p) <= bound for p in closed.paths)


@settings(max_examples=40)
@given(path_sets, st.integers(min_value=0, max_value=3))
def test_closure_is_monotone_in_bound(a, bound):
    assert a.closure(bound) <= a.closure(bound + 1)
