"""Integration tests: full pipelines across the layers.

Each test is a miniature of how a downstream user composes the library:
load/generate a graph, query it through the engine, project, and feed a
single-relational algorithm — exercising graph store + algebra + regex +
automata + engine + algorithms together.
"""

import io

import pytest

from repro import MultiRelationalGraph, Traversal
from repro.algorithms import pagerank, spreading_activation
from repro.core.projection import project_label_sequence, project_paths
from repro.datasets import scholarly_graph, software_community, travel_network
from repro.engine import Engine
from repro.graph import io as graph_io


class TestQueryProjectRankPipeline:
    def test_coauthor_pagerank(self):
        """Scholarly graph -> co-authorship projection -> PageRank ranking."""
        g = scholarly_graph()
        authored = g.edges(label="authored")
        coauthor = project_paths(authored @ authored.map(lambda p: p.reversed()))
        ranks = pagerank(coauthor.to_digraph())
        assert ranks
        authors = [v for v in ranks if str(v).startswith("author")]
        assert authors
        assert abs(sum(ranks.values()) - 1.0) < 1e-6

    def test_author_citation_projection(self):
        """authored . cites . authored^-1 relates citing to cited authors."""
        g = scholarly_graph()
        authored = g.edges(label="authored")
        cites = g.edges(label="cites")
        author_cites = authored @ cites @ authored.map(lambda p: p.reversed())
        projection = project_paths(author_cites)
        for tail, head in projection.pairs:
            assert str(tail).startswith("author")
            assert str(head).startswith("author")

    def test_dependency_closure_via_engine(self):
        """Engine star query == fluent repeated traversal on depends_on."""
        g = software_community()
        engine = Engine(g, default_max_length=8)
        result = engine.query("[project7, depends_on, _] . [_, depends_on, _]*")
        transitive = result.heads()
        # Cross-check with an explicit frontier expansion.
        frontier = {"project7"}
        reached = set()
        while frontier:
            new = set()
            for v in frontier:
                for e in g.match(tail=v, label="depends_on"):
                    if e.head not in reached:
                        reached.add(e.head)
                        new.add(e.head)
            frontier = new
        assert transitive == reached


class TestSerializationRoundTripPipeline:
    def test_json_round_trip_preserves_query_results(self):
        g = travel_network()
        engine_before = Engine(g)
        query = "[city0, flight, _] . [_, train, _]"
        before = engine_before.query(query).paths

        buffer = io.StringIO()
        graph_io.write_json(g, buffer)
        restored = graph_io.read_json(io.StringIO(buffer.getvalue()))
        after = Engine(restored).query(query).paths
        assert before == after

    def test_triples_round_trip_preserves_structure_queries(self):
        g = software_community()
        text = graph_io.to_triple_text(g)
        restored = graph_io.from_triple_text(text)
        assert restored.edge_set() == g.edge_set()


class TestFluentVersusEngine:
    def test_two_step_labeled_traversal_agrees(self):
        g = software_community()
        fluent = (Traversal(g).start("person0")
                  .out("knows").out("created").paths())
        engine = Engine(g).query("[person0, knows, _] . [_, created, _]").paths
        assert fluent == engine

    def test_label_sequence_projection_agrees_with_engine(self):
        g = software_community()
        via_traversal = project_label_sequence(g, ["knows", "created"])
        via_engine = Engine(g).project("[_, knows, _] . [_, created, _]",
                                       max_length=2)
        assert via_traversal.pairs == via_engine.pairs


class TestRecommendationScenario:
    def test_travel_recommendation_by_path_counting(self):
        """Rank destinations by number of flight+train witness paths."""
        g = travel_network()
        engine = Engine(g)
        result = engine.query("[city3, _, _] . [_, train, _]", max_length=2)
        histogram = {}
        for p in result.paths:
            histogram[p.head] = histogram.get(p.head, 0) + 1
        assert histogram  # somewhere is reachable

    def test_spreading_activation_over_projection(self):
        g = software_community()
        knows = project_label_sequence(g, ["knows"])
        activation = spreading_activation(knows.to_digraph(),
                                          {"person0": 1.0}, steps=3)
        assert activation["person0"] >= 1.0
        assert len(activation) > 1
