"""Tests for the synthetic graph generators (determinism + structure)."""

import pytest

from repro.graph import generators


class TestUniformRandom:
    def test_exact_edge_count(self):
        g = generators.uniform_random(20, 50, seed=1)
        assert g.size() == 50
        assert g.order() == 20

    def test_deterministic_under_seed(self):
        a = generators.uniform_random(20, 50, seed=7)
        b = generators.uniform_random(20, 50, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = generators.uniform_random(20, 50, seed=1)
        b = generators.uniform_random(20, 50, seed=2)
        assert a != b

    def test_labels_drawn_from_given_set(self):
        g = generators.uniform_random(10, 30, labels=("r", "s"), seed=3)
        assert g.labels() <= {"r", "s"}

    def test_no_loops_option(self):
        g = generators.uniform_random(10, 40, seed=5, allow_loops=False)
        assert all(not e.is_loop() for e in g.edge_set())

    def test_edge_cap_at_possible_triples(self):
        g = generators.uniform_random(2, 1000, labels=("r",), seed=0)
        assert g.size() == 4  # 2 * 2 * 1 with loops

    def test_rejects_empty_inputs(self):
        with pytest.raises(ValueError):
            generators.uniform_random(0, 5)
        with pytest.raises(ValueError):
            generators.uniform_random(5, 5, labels=())


class TestGnpRandom:
    def test_extreme_probabilities(self):
        empty = generators.gnp_random(5, 0.0, seed=0)
        full = generators.gnp_random(5, 1.0, labels=("r",), seed=0)
        assert empty.size() == 0
        assert full.size() == 25

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            generators.gnp_random(5, 1.5)

    def test_deterministic(self):
        assert generators.gnp_random(8, 0.2, seed=9) == generators.gnp_random(8, 0.2, seed=9)


class TestPreferentialAttachment:
    def test_vertex_count(self):
        g = generators.preferential_attachment(30, seed=1)
        assert g.order() == 30

    def test_degree_skew_exists(self):
        g = generators.preferential_attachment(120, edges_per_vertex=2, seed=4)
        degrees = sorted(g.degree(v) for v in g.vertices())
        # A heavy tail: the max degree should well exceed the median.
        assert degrees[-1] >= 3 * degrees[len(degrees) // 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            generators.preferential_attachment(1)
        with pytest.raises(ValueError):
            generators.preferential_attachment(10, edges_per_vertex=0)


class TestStochasticBlocks:
    def test_block_property_recorded(self):
        g = generators.stochastic_blocks([4, 4], 0.8, 0.05, seed=2)
        assert g.vertex_properties(0)["block"] == 0
        assert g.vertex_properties(7)["block"] == 1

    def test_within_block_label_dominates(self):
        g = generators.stochastic_blocks(
            [6, 6], 0.9, 0.0, labels=("r", "s"), seed=3)
        # With zero between-block probability, every edge stays in-block and
        # uses the block's label.
        for e in g.edge_set():
            block_tail = g.vertex_properties(e.tail)["block"]
            block_head = g.vertex_properties(e.head)["block"]
            assert block_tail == block_head


class TestDeterministicFamilies:
    def test_complete_size(self):
        g = generators.complete_multirelational(4, labels=("r", "s"))
        assert g.size() == 4 * 3 * 2

    def test_complete_with_loops(self):
        g = generators.complete_multirelational(3, labels=("r",), loops=True)
        assert g.size() == 9

    def test_cycle_structure(self):
        g = generators.cycle_graph(5, labels=("a", "b"))
        assert g.size() == 5
        assert g.has_edge(4, "a", 0)  # labels cycle a,b,a,b,a

    def test_line_structure(self):
        g = generators.line_graph(4, labels=("a",))
        assert g.size() == 3
        assert g.has_edge(0, "a", 1)
        assert not g.has_edge(3, "a", 0)

    def test_star_directions(self):
        out = generators.star_graph(5, label="r")
        into = generators.star_graph(5, label="r", inward=True)
        assert out.out_degree(0) == 5 and out.in_degree(0) == 0
        assert into.in_degree(0) == 5 and into.out_degree(0) == 0

    def test_layered_always_has_full_depth_paths(self):
        g = generators.layered_graph(4, 3, seed=0, connection_probability=0.1)
        # Every vertex in layer 0 must reach layer 3 (guaranteed progress).
        from repro.core.traversal import source_traversal
        starts = {v for v in g.vertices() if g.vertex_properties(v)["layer"] == 0}
        paths = source_traversal(g, starts, 3)
        assert paths.tails() == starts

    def test_layered_validation(self):
        with pytest.raises(ValueError):
            generators.layered_graph(0, 3)
