"""NetworkX interop tests."""

import networkx as nx
import pytest

from repro.graph import convert
from repro.graph.graph import MultiRelationalGraph


@pytest.fixture
def graph():
    g = MultiRelationalGraph(name="demo")
    g.add_vertex("a", kind="person")
    g.add_edge("a", "knows", "b")
    g.add_edge("a", "created", "b")
    g.add_edge("b", "knows", "c")
    return g


class TestToNetworkx:
    def test_multidigraph_keeps_parallel_relations(self, graph):
        nxg = convert.to_networkx_multidigraph(graph)
        assert nxg.number_of_edges() == 3
        assert nxg.number_of_edges("a", "b") == 2

    def test_labels_become_keys_and_attributes(self, graph):
        nxg = convert.to_networkx_multidigraph(graph)
        assert nxg.has_edge("a", "b", key="knows")
        assert nxg["a"]["b"]["knows"]["label"] == "knows"

    def test_vertex_properties_carry_over(self, graph):
        nxg = convert.to_networkx_multidigraph(graph)
        assert nxg.nodes["a"]["kind"] == "person"

    def test_digraph_collapses_labels(self, graph):
        nxg = convert.to_networkx_digraph(graph)
        assert nxg.number_of_edges() == 2  # (a,b) merged

    def test_digraph_single_relation(self, graph):
        nxg = convert.to_networkx_digraph(graph, label="knows")
        assert set(nxg.edges()) == {("a", "b"), ("b", "c")}

    def test_binary_edges_to_networkx(self):
        nxg = convert.binary_edges_to_networkx({("x", "y")})
        assert nxg.has_edge("x", "y")


class TestFromNetworkx:
    def test_round_trip_via_multidigraph(self, graph):
        back = convert.from_networkx(convert.to_networkx_multidigraph(graph))
        assert back == graph

    def test_plain_digraph_uses_default_label(self):
        nxg = nx.DiGraph([("a", "b")])
        back = convert.from_networkx(nxg)
        assert back.has_edge("a", "edge", "b")

    def test_label_attribute_respected(self):
        nxg = nx.DiGraph()
        nxg.add_edge("a", "b", label="likes")
        back = convert.from_networkx(nxg)
        assert back.has_edge("a", "likes", "b")

    def test_undirected_graph_gets_both_directions(self):
        nxg = nx.Graph([("a", "b")])
        back = convert.from_networkx(nxg)
        assert back.has_edge("a", "edge", "b")
        assert back.has_edge("b", "edge", "a")

    def test_node_attributes_carry_over(self):
        nxg = nx.DiGraph()
        nxg.add_node("a", kind="person")
        nxg.add_edge("a", "b", label="r")
        back = convert.from_networkx(nxg)
        assert back.vertex_properties("a")["kind"] == "person"
