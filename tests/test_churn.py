"""Index-churn regression tests.

``remove_edge`` / ``remove_vertex`` used to prune only ``_rel``, leaving
empty buckets (and stale ``(vertex, label)`` keys) in the other four index
dicts forever — an unbounded memory leak under add/remove churn.  These
tests hammer the mutation API and assert the internal index dicts return
exactly to their initial key counts while query answers stay correct.
"""

import pytest

from repro.core.edge import Edge
from repro.graph.graph import MultiRelationalGraph

BASE_TRIPLES = [
    ("marko", "knows", "josh"),
    ("marko", "knows", "peter"),
    ("marko", "created", "gremlin"),
    ("josh", "created", "gremlin"),
    ("josh", "created", "frames"),
    ("gremlin", "depends_on", "blueprints"),
]

CHURN_TRIPLES = [
    ("a", "r", "b"),
    ("b", "r", "c"),
    ("c", "s", "a"),
    ("a", "s", "c"),
    ("c", "r", "a"),
]


def index_key_counts(graph):
    return {
        "_out": len(graph._out),
        "_in": len(graph._in),
        "_rel": len(graph._rel),
        "_out_by_label": len(graph._out_by_label),
        "_in_by_label": len(graph._in_by_label),
    }


def assert_no_empty_buckets(graph):
    for name in ("_out", "_in", "_rel", "_out_by_label", "_in_by_label"):
        index = getattr(graph, name)
        empty = [key for key, bucket in index.items() if not bucket]
        assert not empty, "{} retains empty buckets: {!r}".format(name, empty)


@pytest.fixture
def graph():
    return MultiRelationalGraph(BASE_TRIPLES)


class TestEdgeChurn:
    def test_thousands_of_add_remove_cycles_leave_indices_unchanged(self, graph):
        baseline = index_key_counts(graph)
        for _ in range(2000):
            for tail, label, head in CHURN_TRIPLES:
                graph.add_edge(tail, label, head)
            for tail, label, head in CHURN_TRIPLES:
                graph.remove_edge(tail, label, head)
            for tail, _, head in CHURN_TRIPLES:
                for vertex in (tail, head):
                    if graph.has_vertex(vertex):
                        graph.remove_vertex(vertex)
        assert index_key_counts(graph) == baseline
        assert_no_empty_buckets(graph)

    def test_remove_edge_prunes_every_index(self):
        g = MultiRelationalGraph()
        g.add_edge("x", "r", "y")
        g.remove_edge("x", "r", "y")
        assert len(g._out) == 0
        assert len(g._in) == 0
        assert len(g._rel) == 0
        assert len(g._out_by_label) == 0
        assert len(g._in_by_label) == 0
        # The endpoints survive as (isolated) vertices.
        assert g.has_vertex("x") and g.has_vertex("y")

    def test_remove_edge_keeps_shared_buckets(self, graph):
        graph.remove_edge("marko", "knows", "josh")
        # marko still has out-edges, so its _out bucket must survive...
        assert Edge("marko", "knows", "peter") in graph._out["marko"]
        # ...and the (marko, knows) by-label bucket too.
        assert Edge("marko", "knows", "peter") in graph._out_by_label[("marko", "knows")]

    def test_remove_vertex_leaves_no_stale_label_keys(self, graph):
        graph.remove_vertex("marko")
        stale_out = [key for key in graph._out_by_label if key[0] == "marko"]
        stale_in = [key for key in graph._in_by_label if key[1] == "marko"]
        assert stale_out == [] and stale_in == []
        assert_no_empty_buckets(graph)

    def test_answers_stay_correct_under_churn(self, graph):
        expected_edges = graph.edge_set()
        expected_labels = graph.labels()
        for cycle in range(500):
            graph.add_edge("tmp", "temp_label", "tmp2")
            graph.add_edge("tmp2", "knows", "marko")
            graph.remove_vertex("tmp")
            graph.remove_edge("tmp2", "knows", "marko")
            graph.remove_vertex("tmp2")
        assert graph.edge_set() == expected_edges
        assert graph.labels() == expected_labels
        assert graph.match(label="temp_label") == frozenset()
        assert graph.match(tail="marko", label="knows") == frozenset(
            {Edge("marko", "knows", "josh"), Edge("marko", "knows", "peter")})
        assert len(graph.edges(tail="marko")) == 3

    def test_label_vanishes_when_last_edge_removed(self, graph):
        graph.remove_edge("gremlin", "depends_on", "blueprints")
        assert not graph.has_label("depends_on")
        assert "depends_on" not in graph._rel


class TestMatchCache:
    def test_repeated_match_returns_cached_frozenset(self, graph):
        first = graph.match(tail="marko", label="knows")
        second = graph.match(tail="marko", label="knows")
        assert first is second  # no fresh allocation per call

    def test_mutation_invalidates_match_cache(self, graph):
        before = graph.match(tail="marko", label="knows")
        graph.add_edge("marko", "knows", "vadas")
        after = graph.match(tail="marko", label="knows")
        assert before is not after
        assert Edge("marko", "knows", "vadas") in after
        assert Edge("marko", "knows", "vadas") not in before

    def test_cache_cleared_not_grown_across_versions(self, graph):
        for _ in range(50):
            graph.match(tail="marko")
            graph.match(label="knows")
            graph.add_edge("x", "r", "y")
            graph.remove_edge("x", "r", "y")
        # The cache only ever holds patterns asked since the last mutation.
        assert len(graph._match_cache) <= 2
