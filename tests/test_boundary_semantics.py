"""Regression tests for sequence-boundary semantics in the automata.

These pin the subtle cases around epsilon operands at join/product
boundaries — the class of bug hypothesis found during development (an
``eps x_o E`` product operand must not waive the *enclosing* join's
adjacency constraint).  Every case is checked against the direct evaluator,
which is the reference semantics.
"""

import pytest

from repro.automata import Recognizer, StackAutomaton, generate_paths
from repro.core.path import Path
from repro.graph.graph import MultiRelationalGraph
from repro.regex import (
    EPSILON,
    atom,
    evaluate,
    join,
    literal,
    matches,
    optional,
    product,
    star,
    union,
)


@pytest.fixture
def graph():
    return MultiRelationalGraph([
        ("u", "a", "v"),
        ("v", "a", "w"),
        ("p", "a", "q"),
    ])


def assert_all_agree(expr, graph, bound=4):
    """evaluate == generate_paths == StackAutomaton; recognizer/derivatives
    agree on a candidate pool."""
    reference = evaluate(expr, graph, bound)
    assert generate_paths(graph, expr, bound) == reference
    assert StackAutomaton(expr, graph).run(bound) == reference
    recognizer = Recognizer(expr, graph)
    pool = graph.all_paths().closure(3) | reference
    for p in pool:
        in_language = p in evaluate(expr, graph, max(bound, len(p)))
        assert recognizer.accepts(p) == in_language, (str(expr), str(p))
        assert matches(expr, p, graph) == in_language, (str(expr), str(p))
    return reference


class TestEpsilonOperandsAtBoundaries:
    def test_join_with_epsilon_product_right(self, graph):
        """E . (eps & E): the regression case — outer join adjacency must hold."""
        expr = join(atom(), product(EPSILON, atom()))
        reference = assert_all_agree(expr, graph)
        # Disjoint u->v then p->q must NOT be matched.
        disjoint = Path.of(("u", "a", "v"), ("p", "a", "q"))
        assert disjoint not in reference
        # Adjacent u->v then v->w must be matched.
        assert Path.of(("u", "a", "v"), ("v", "a", "w")) in reference

    def test_join_with_product_epsilon_left(self, graph):
        """E . (E & eps): symmetric case, epsilon on the product's right."""
        expr = join(atom(), product(atom(), EPSILON))
        reference = assert_all_agree(expr, graph)
        assert Path.of(("u", "a", "v"), ("p", "a", "q")) not in reference

    def test_product_with_epsilon_join_right(self, graph):
        """E & (eps . E): the inner join with epsilon imposes nothing; the
        outer product waives adjacency — disjoint pairs ARE matched."""
        expr = product(atom(), join(EPSILON, atom()))
        reference = assert_all_agree(expr, graph)
        assert Path.of(("u", "a", "v"), ("p", "a", "q")) in reference

    def test_stale_exemption_cleared_at_join(self, graph):
        """(E & eps) . E: the product boundary into eps must not leak an
        exemption past the subsequent join boundary."""
        expr = join(product(atom(), EPSILON), atom())
        reference = assert_all_agree(expr, graph)
        assert Path.of(("u", "a", "v"), ("p", "a", "q")) not in reference

    def test_nullable_left_in_product_inherits_outer_join(self, graph):
        """E . (E? & E): skipping the optional means the adjacent constraint
        of the outer join applies to the product's second operand."""
        expr = join(atom(), product(optional(atom()), atom()))
        reference = assert_all_agree(expr, graph)
        # With the optional skipped, u->v then p->q needs outer adjacency:
        # rejected. With the optional taken, u->v, v->w (optional), then any
        # edge disjointly: accepted via the product boundary.
        assert Path.of(("u", "a", "v"), ("p", "a", "q")) not in reference
        assert Path.of(("u", "a", "v"), ("v", "a", "w"), ("p", "a", "q")) in reference


class TestStarBoundaries:
    def test_star_reps_always_adjacent(self, graph):
        expr = star(atom())
        reference = assert_all_agree(expr, graph)
        assert Path.of(("u", "a", "v"), ("p", "a", "q")) not in reference

    def test_star_of_product_pair(self, graph):
        """(E & E)*: disjoint inside one repetition, adjacent between reps."""
        expr = star(product(atom(), atom()))
        reference = assert_all_agree(expr, graph)
        # One repetition: any pair, disjoint allowed.
        assert Path.of(("u", "a", "v"), ("p", "a", "q")) in reference
        # Between repetitions: rep1 ends at q, rep2 must start at q — no
        # q-out edges exist, so no length-4 path ending that way.
        assert all(
            len(p) != 4 or p[1].head == p[2].tail
            for p in reference)

    def test_star_after_epsilon_union(self, graph):
        expr = join(union(EPSILON, atom()), star(atom()))
        assert_all_agree(expr, graph)


class TestLiteralBoundaries:
    def test_disjoint_literal_inside_join_chain(self, graph):
        """A literal's own disjoint path is accepted verbatim, but its ends
        still participate in the enclosing joins."""
        weird = Path.of(("v", "x", "z"), ("m", "x", "n"))  # internally disjoint
        expr = join(atom(), literal(weird))
        recognizer = Recognizer(expr, graph)
        good = Path.of(("u", "a", "v")) + weird
        assert recognizer.accepts(good)
        bad = Path.of(("p", "a", "q")) + weird  # q != v at the join seam
        assert not recognizer.accepts(bad)

    def test_epsilon_literal_member(self, graph):
        from repro.core.pathset import PathSet
        from repro.regex import Literal
        lit = Literal(PathSet([Path(), Path.single("v", "a", "w")]))
        expr = join(atom(), lit)
        reference = assert_all_agree(expr, graph)
        # epsilon member: single edges pass through.
        assert Path.single("u", "a", "v") in reference
        # non-epsilon member requires adjacency.
        assert Path.of(("u", "a", "v"), ("v", "a", "w")) in reference
