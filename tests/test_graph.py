"""Unit tests for the MultiRelationalGraph store."""

import pytest

from repro.core.edge import Edge
from repro.errors import (
    DuplicateVertexError,
    EdgeNotFoundError,
    LabelNotFoundError,
    VertexNotFoundError,
)
from repro.graph.graph import MultiRelationalGraph


@pytest.fixture
def graph():
    return MultiRelationalGraph([
        ("marko", "knows", "josh"),
        ("marko", "knows", "peter"),
        ("marko", "created", "gremlin"),
        ("josh", "created", "gremlin"),
        ("josh", "created", "frames"),
        ("gremlin", "depends_on", "blueprints"),
        ("frames", "depends_on", "blueprints"),
    ], name="tinker")


class TestMutation:
    def test_bulk_load_counts(self, graph):
        assert graph.order() == 6
        assert graph.size() == 7
        assert graph.relation_count() == 3

    def test_add_edge_creates_endpoints(self):
        g = MultiRelationalGraph()
        g.add_edge("a", "r", "b")
        assert g.has_vertex("a") and g.has_vertex("b")

    def test_add_edge_returns_edge(self):
        g = MultiRelationalGraph()
        assert g.add_edge("a", "r", "b") == Edge("a", "r", "b")

    def test_duplicate_edge_is_idempotent(self):
        g = MultiRelationalGraph()
        g.add_edge("a", "r", "b")
        g.add_edge("a", "r", "b")
        assert g.size() == 1

    def test_parallel_edges_with_different_labels(self):
        """Multi-relational: one vertex pair, many relations."""
        g = MultiRelationalGraph()
        g.add_edge("a", "r1", "b")
        g.add_edge("a", "r2", "b")
        assert g.size() == 2

    def test_add_vertex_strict_raises_on_duplicate(self):
        g = MultiRelationalGraph()
        g.add_vertex("a")
        with pytest.raises(DuplicateVertexError):
            g.add_vertex("a", strict=True)

    def test_remove_edge(self, graph):
        graph.remove_edge("marko", "knows", "josh")
        assert not graph.has_edge("marko", "knows", "josh")
        assert graph.size() == 6

    def test_remove_edge_missing_raises(self, graph):
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge("marko", "hates", "josh")

    def test_remove_last_edge_of_label_removes_label(self):
        g = MultiRelationalGraph([("a", "r", "b")])
        g.remove_edge("a", "r", "b")
        assert not g.has_label("r")

    def test_remove_vertex_removes_incident_edges(self, graph):
        graph.remove_vertex("gremlin")
        assert not graph.has_edge("marko", "created", "gremlin")
        assert not graph.has_edge("gremlin", "depends_on", "blueprints")
        assert graph.has_vertex("blueprints")

    def test_remove_vertex_missing_raises(self, graph):
        with pytest.raises(VertexNotFoundError):
            graph.remove_vertex("nobody")

    def test_add_edges_bulk(self):
        g = MultiRelationalGraph()
        added = g.add_edges([("a", "r", "b"), Edge("b", "r", "c")])
        assert len(added) == 2
        assert g.size() == 2


class TestInspection:
    def test_vertices(self, graph):
        assert "marko" in graph.vertices()
        assert len(graph.vertices()) == 6

    def test_labels(self, graph):
        assert graph.labels() == {"knows", "created", "depends_on"}

    def test_contains_edge_tuple(self, graph):
        assert ("marko", "knows", "josh") in graph
        assert Edge("marko", "knows", "josh") in graph

    def test_contains_vertex(self, graph):
        assert "marko" in graph
        assert "nobody" not in graph

    def test_len_is_edge_count(self, graph):
        assert len(graph) == 7

    def test_iteration_yields_edges_deterministically(self, graph):
        assert list(graph) == sorted(graph.edge_set(), key=repr)

    def test_equality_is_structural(self, graph):
        clone = MultiRelationalGraph(graph.edge_set())
        assert clone == graph

    def test_repr_mentions_counts(self, graph):
        assert "|V|=6" in repr(graph)
        assert "|E|=7" in repr(graph)


class TestProperties:
    def test_vertex_properties_round_trip(self):
        g = MultiRelationalGraph()
        g.add_vertex("a", kind="person", age=30)
        assert g.vertex_properties("a") == {"kind": "person", "age": 30}

    def test_vertex_properties_merge(self):
        g = MultiRelationalGraph()
        g.add_vertex("a", kind="person")
        g.add_vertex("a", age=30)
        assert g.vertex_properties("a") == {"kind": "person", "age": 30}

    def test_vertex_properties_returns_copy(self):
        g = MultiRelationalGraph()
        g.add_vertex("a", kind="person")
        g.vertex_properties("a")["kind"] = "mutated"
        assert g.vertex_properties("a")["kind"] == "person"

    def test_edge_properties(self):
        g = MultiRelationalGraph()
        g.add_edge("a", "r", "b", weight=2.0)
        assert g.edge_properties("a", "r", "b") == {"weight": 2.0}

    def test_set_vertex_property_requires_vertex(self):
        g = MultiRelationalGraph()
        with pytest.raises(VertexNotFoundError):
            g.set_vertex_property("a", "k", 1)

    def test_set_edge_property_requires_edge(self):
        g = MultiRelationalGraph()
        with pytest.raises(EdgeNotFoundError):
            g.set_edge_property("a", "r", "b", "k", 1)

    def test_properties_do_not_affect_identity(self):
        g1 = MultiRelationalGraph()
        g1.add_edge("a", "r", "b", weight=1)
        g2 = MultiRelationalGraph()
        g2.add_edge("a", "r", "b", weight=999)
        assert g1 == g2


class TestSetBuilderNotation:
    """The paper's [i,_,_] / [_,a,_] / [_,_,j] atoms (section IV-A)."""

    def test_full_wildcard_is_e(self, graph):
        assert len(graph.edges()) == graph.size()

    def test_source_edge_set(self, graph):
        out = graph.edges(tail="marko")
        assert len(out) == 3
        assert all(p.tail == "marko" for p in out)

    def test_destination_edge_set(self, graph):
        into = graph.edges(head="gremlin")
        assert len(into) == 2
        assert all(p.head == "gremlin" for p in into)

    def test_labeled_edge_set(self, graph):
        created = graph.edges(label="created")
        assert len(created) == 3
        assert all(p.label_path == ("created",) for p in created)

    def test_combined_tail_and_label(self, graph):
        assert len(graph.edges(tail="josh", label="created")) == 2

    def test_combined_label_and_head(self, graph):
        assert len(graph.edges(label="created", head="gremlin")) == 2

    def test_fully_bound_pattern(self, graph):
        assert len(graph.edges(tail="marko", label="knows", head="josh")) == 1

    def test_no_match_is_empty(self, graph):
        assert len(graph.edges(tail="nobody")) == 0
        assert len(graph.edges(label="hates")) == 0

    def test_match_returns_raw_edges(self, graph):
        edges = graph.match(label="knows")
        assert all(isinstance(e, Edge) for e in edges)
        assert len(edges) == 2

    def test_all_paths_equals_edges(self, graph):
        assert graph.all_paths() == graph.edges()


class TestNeighborhoods:
    def test_out_edges(self, graph):
        assert len(graph.out_edges("marko")) == 3
        assert len(graph.out_edges("marko", "knows")) == 2

    def test_in_edges(self, graph):
        assert len(graph.in_edges("gremlin")) == 2
        assert len(graph.in_edges("gremlin", "created")) == 2
        assert len(graph.in_edges("gremlin", "knows")) == 0

    def test_successors_predecessors(self, graph):
        assert graph.successors("marko") == {"josh", "peter", "gremlin"}
        assert graph.predecessors("gremlin") == {"marko", "josh"}
        assert graph.successors("marko", "knows") == {"josh", "peter"}

    def test_degrees(self, graph):
        assert graph.out_degree("marko") == 3
        assert graph.in_degree("marko") == 0
        assert graph.degree("gremlin") == 3

    def test_neighborhood_of_missing_vertex_raises(self, graph):
        with pytest.raises(VertexNotFoundError):
            graph.out_edges("nobody")


class TestViewsAndDerivations:
    def test_relation_extraction(self, graph):
        knows = graph.relation("knows")
        assert knows == {("marko", "josh"), ("marko", "peter")}

    def test_relation_missing_label_raises(self, graph):
        with pytest.raises(LabelNotFoundError):
            graph.relation("hates")

    def test_collapsed_ignores_labels(self):
        g = MultiRelationalGraph([("a", "r1", "b"), ("a", "r2", "b")])
        assert g.collapsed() == {("a", "b")}

    def test_subgraph_by_labels(self, graph):
        sub = graph.subgraph_by_labels(["created"])
        assert sub.size() == 3
        assert sub.labels() == {"created"}
        assert not sub.has_vertex("peter")  # only incident vertices kept

    def test_subgraph_by_vertices(self, graph):
        sub = graph.subgraph_by_vertices(["marko", "josh", "gremlin"])
        assert sub.has_edge("marko", "knows", "josh")
        assert sub.has_edge("marko", "created", "gremlin")
        assert not sub.has_edge("marko", "knows", "peter")

    def test_inverted(self, graph):
        inv = graph.inverted()
        assert inv.has_edge("josh", "knows", "marko")
        assert inv.size() == graph.size()
        assert inv.inverted() == graph

    def test_copy_is_independent(self, graph):
        clone = graph.copy()
        clone.add_edge("x", "r", "y")
        assert not graph.has_vertex("x")
        assert clone != graph

    def test_merged(self):
        g1 = MultiRelationalGraph([("a", "r", "b")])
        g2 = MultiRelationalGraph([("b", "s", "c")])
        merged = g1.merged(g2)
        assert merged.size() == 2
        assert merged.labels() == {"r", "s"}


class TestStatisticsHooks:
    def test_label_histogram(self, graph):
        assert graph.label_histogram() == {
            "knows": 2, "created": 3, "depends_on": 2}

    def test_density_bounds(self, graph):
        assert 0.0 < graph.density() < 1.0

    def test_density_of_empty_graph(self):
        assert MultiRelationalGraph().density() == 0.0
