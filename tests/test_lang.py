"""PathQL lexer and parser tests."""

import pytest

from repro.core.path import Path
from repro.errors import PathQLSyntaxError
from repro.lang import parse
from repro.lang.lexer import TokenKind, tokenize
from repro.regex import (
    EMPTY,
    EPSILON,
    Atom,
    Join,
    Literal,
    Product,
    Repeat,
    Star,
    Union,
    atom,
    evaluate,
    join,
    literal,
    star,
    union,
)


class TestLexer:
    def test_punctuation(self):
        kinds = [t.kind for t in tokenize("[](){},;.&|*+?_")]
        assert kinds == [
            TokenKind.LBRACKET, TokenKind.RBRACKET, TokenKind.LPAREN,
            TokenKind.RPAREN, TokenKind.LBRACE, TokenKind.RBRACE,
            TokenKind.COMMA, TokenKind.SEMICOLON, TokenKind.DOT,
            TokenKind.AMP, TokenKind.PIPE, TokenKind.STAR, TokenKind.PLUS,
            TokenKind.QUESTION, TokenKind.UNDERSCORE, TokenKind.END,
        ]

    def test_identifiers(self):
        tokens = tokenize("alpha person0 a-b")
        assert [t.value for t in tokens[:-1]] == ["alpha", "person0", "a-b"]

    def test_numbers_are_ints(self):
        token = tokenize("42")[0]
        assert token.kind == TokenKind.NUMBER
        assert token.value == 42

    def test_strings_both_quotes(self):
        tokens = tokenize("'has space' \"double\"")
        assert tokens[0].value == "has space"
        assert tokens[1].value == "double"

    def test_unterminated_string(self):
        with pytest.raises(PathQLSyntaxError):
            tokenize("'oops")

    def test_unexpected_character_reports_position(self):
        with pytest.raises(PathQLSyntaxError) as info:
            tokenize("[a, b, c] $")
        assert info.value.position == 10

    def test_whitespace_insensitive(self):
        assert len(tokenize("  [ a ,\n b , c ]  ")) == len(tokenize("[a,b,c]"))


class TestParserAtoms:
    def test_full_wildcard(self):
        assert parse("[_, _, _]") == Atom()

    def test_bound_parts(self):
        assert parse("[i, alpha, _]") == atom(tail="i", label="alpha")
        assert parse("[_, _, j]") == atom(head="j")

    def test_numeric_vertices(self):
        assert parse("[0, knows, 1]") == atom(tail=0, label="knows", head=1)

    def test_quoted_values(self):
        assert parse("['a b', 'x', _]") == atom(tail="a b", label="x")

    def test_keywords(self):
        assert parse("eps") == EPSILON
        assert parse("empty") == EMPTY


class TestParserOperators:
    def test_join(self):
        parsed = parse("[_, a, _] . [_, b, _]")
        assert parsed == join(atom(label="a"), atom(label="b"))

    def test_join_chain_flattens(self):
        parsed = parse("[_, a, _] . [_, b, _] . [_, c, _]")
        assert isinstance(parsed, Join)
        assert len(parsed.parts) == 3

    def test_product(self):
        parsed = parse("[_, a, _] & [_, b, _]")
        assert isinstance(parsed, Product)

    def test_union_precedence_lower_than_join(self):
        parsed = parse("[_, a, _] . [_, b, _] | [_, c, _]")
        assert isinstance(parsed, Union)
        assert isinstance(parsed.parts[0], Join)

    def test_parentheses_override(self):
        parsed = parse("[_, a, _] . ([_, b, _] | [_, c, _])")
        assert isinstance(parsed, Join)
        assert isinstance(parsed.parts[1], Union)

    def test_star_plus_optional(self):
        assert parse("[_, a, _]*") == star(atom(label="a"))
        assert parse("[_, a, _]+") == Repeat(atom(label="a"), 1, None)
        assert parse("[_, a, _]?") == Repeat(atom(label="a"), 0, 1)

    def test_exact_repetition(self):
        assert parse("[_, a, _]{3}") == Repeat(atom(label="a"), 3, 3)

    def test_range_repetition(self):
        assert parse("[_, a, _]{2,4}") == Repeat(atom(label="a"), 2, 4)

    def test_open_range_repetition(self):
        assert parse("[_, a, _]{2,}") == Repeat(atom(label="a"), 2, None)

    def test_stacked_postfix(self):
        parsed = parse("[_, a, _]?*")
        assert parsed == Star(Repeat(atom(label="a"), 0, 1))


class TestParserLiterals:
    def test_single_edge_literal(self):
        assert parse("{(j, alpha, i)}") == literal(("j", "alpha", "i"))

    def test_multi_path_literal(self):
        parsed = parse("{(a, x, b); (c, y, d)}")
        assert isinstance(parsed, Literal)
        assert len(parsed.path_set) == 2

    def test_multi_edge_path_literal(self):
        parsed = parse("{(a, x, b, b, y, c)}")
        assert Path.of(("a", "x", "b"), ("b", "y", "c")) in parsed.path_set

    def test_empty_literal_set(self):
        parsed = parse("{}")
        assert isinstance(parsed, Literal)
        assert len(parsed.path_set) == 0

    def test_bad_arity_reported(self):
        with pytest.raises(PathQLSyntaxError) as info:
            parse("{(a, x)}")
        assert "multiple of 3" in str(info.value)

    def test_literal_vs_repetition_disambiguation(self):
        # {2} after an atom is repetition; {(..)} in primary position is a set.
        repetition = parse("[_, a, _]{2}")
        assert isinstance(repetition, Repeat)
        lit = parse("[_, a, _] . {(x, y, z)}")
        assert isinstance(lit.parts[1], Literal)


class TestParserErrors:
    def test_trailing_garbage(self):
        with pytest.raises(PathQLSyntaxError):
            parse("[_, a, _] ]")

    def test_missing_bracket(self):
        with pytest.raises(PathQLSyntaxError):
            parse("[_, a")

    def test_empty_input(self):
        with pytest.raises(PathQLSyntaxError):
            parse("")

    def test_dangling_operator(self):
        with pytest.raises(PathQLSyntaxError):
            parse("[_, a, _] .")

    def test_error_carries_position(self):
        with pytest.raises(PathQLSyntaxError) as info:
            parse("[_, a, _] . . [_, b, _]")
        assert info.value.position is not None


class TestEndToEnd:
    def test_figure1_query_parses_to_the_dataset_expression(self):
        from repro.datasets import figure1_expression
        text = ("[i, alpha, _] . [_, beta, _]* . "
                "(([_, alpha, j] . {(j, alpha, i)}) | [_, alpha, k])")
        assert parse(text) == figure1_expression()

    def test_parsed_query_evaluates(self, diamond):
        result = evaluate(parse("[_, alpha, _] . [_, beta, _]"), diamond, 4)
        assert len(result) == 2

    def test_round_trip_semantics_via_str(self, diamond):
        """str() of a parsed expression re-parses to the same language."""
        text = "[a, _, _] . ([_, beta, _] | [_, alpha, _])"
        expr = parse(text)
        reparsed = parse(str(expr).replace("x", "&"))
        assert evaluate(expr, diamond, 4) == evaluate(reparsed, diamond, 4)
