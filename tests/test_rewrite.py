"""Tests for the algebraic rewrite rules (language preservation + shape)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.path import Path
from repro.engine.rewrite import (
    distribute_joins,
    factor_unions,
    fold_literals,
    normalize,
)
from repro.graph.graph import MultiRelationalGraph
from repro.regex import (
    EMPTY,
    EPSILON,
    Join,
    Literal,
    Union,
    atom,
    evaluate,
    join,
    literal,
    product,
    star,
    union,
)


@pytest.fixture
def graph():
    return MultiRelationalGraph([
        ("u", "a", "v"), ("v", "b", "w"), ("v", "c", "w"),
        ("w", "a", "u"), ("u", "b", "w"),
    ])


class TestFoldLiterals:
    def test_join_of_literals_folds(self):
        expr = join(literal(("x", "p", "y")), literal(("y", "q", "z")))
        folded = fold_literals(expr)
        assert isinstance(folded, Literal)
        assert Path.of(("x", "p", "y"), ("y", "q", "z")) in folded.path_set

    def test_disjoint_literal_join_folds_to_empty(self):
        expr = join(literal(("x", "p", "y")), literal(("a", "q", "b")))
        assert fold_literals(expr) == EMPTY

    def test_product_of_literals_folds_keeping_disjoint(self):
        expr = product(literal(("x", "p", "y")), literal(("a", "q", "b")))
        folded = fold_literals(expr)
        assert isinstance(folded, Literal)
        assert len(folded.path_set) == 1

    def test_union_of_literals_folds(self):
        expr = union(literal(("x", "p", "y")), literal(("a", "q", "b")))
        folded = fold_literals(expr)
        assert isinstance(folded, Literal)
        assert len(folded.path_set) == 2

    def test_epsilon_folds_as_constant(self):
        expr = join(literal(("x", "p", "y")), EPSILON)
        folded = fold_literals(expr)
        assert isinstance(folded, Literal)

    def test_atoms_are_not_folded(self, graph):
        expr = join(atom(label="a"), atom(label="b"))
        assert fold_literals(expr) == expr

    def test_only_adjacent_constants_fold(self, graph):
        # literal . atom . literal: nothing adjacent, nothing folds.
        expr = join(literal(("x", "p", "u")), atom(label="a"),
                    literal(("v", "q", "z")))
        folded = fold_literals(expr)
        assert isinstance(folded, Join)
        assert len(folded.parts) == 3

    def test_fold_preserves_language(self, graph):
        expr = join(literal(("u", "a", "v")), literal(("v", "b", "w")),
                    atom(label="a"))
        assert evaluate(expr, graph, 4) == evaluate(fold_literals(expr), graph, 4)


class TestDistribute:
    def test_left_distribution(self, graph):
        expr = join(union(atom(label="a"), atom(label="b")), atom(label="c"))
        distributed = distribute_joins(expr)
        assert isinstance(distributed, Union)
        assert evaluate(expr, graph, 4) == evaluate(distributed, graph, 4)

    def test_right_distribution(self, graph):
        expr = join(atom(label="a"), union(atom(label="b"), atom(label="c")))
        distributed = distribute_joins(expr)
        assert isinstance(distributed, Union)
        assert evaluate(expr, graph, 4) == evaluate(distributed, graph, 4)

    def test_products_distribute_too(self, graph):
        expr = product(union(atom(label="a"), atom(label="b")), atom(label="c"))
        distributed = distribute_joins(expr)
        assert isinstance(distributed, Union)
        assert evaluate(expr, graph, 4) == evaluate(distributed, graph, 4)

    def test_no_union_no_change(self, graph):
        expr = join(atom(label="a"), atom(label="b"))
        assert distribute_joins(expr) == expr


class TestFactor:
    def test_common_prefix_factored(self, graph):
        expr = union(join(atom(label="a"), atom(label="b")),
                     join(atom(label="a"), atom(label="c")))
        factored = factor_unions(expr)
        assert isinstance(factored, Join)
        assert factored.parts[0] == atom(label="a")
        assert evaluate(expr, graph, 4) == evaluate(factored, graph, 4)

    def test_common_suffix_factored(self, graph):
        expr = union(join(atom(label="b"), atom(label="a")),
                     join(atom(label="c"), atom(label="a")))
        factored = factor_unions(expr)
        assert isinstance(factored, Join)
        assert factored.parts[-1] == atom(label="a")
        assert evaluate(expr, graph, 4) == evaluate(factored, graph, 4)

    def test_nothing_shared_no_change(self, graph):
        expr = union(join(atom(label="a"), atom(label="b")),
                     join(atom(label="c"), atom(label="a")))
        assert factor_unions(expr) == expr

    def test_identical_branches_collapse(self, graph):
        branch = join(atom(label="a"), atom(label="b"))
        expr = Union((branch, branch))
        # simplified() dedupes identical union branches first.
        assert factor_unions(expr) == branch

    def test_factoring_never_leaves_empty_branch(self, graph):
        # Branches equal to the shared prefix itself must not be factored
        # into an empty remainder.
        expr = union(atom(label="a"), join(atom(label="a"), atom(label="b")))
        factored = factor_unions(expr)
        assert evaluate(expr, graph, 4) == evaluate(factored, graph, 4)


class TestNormalize:
    def test_reaches_fixpoint(self, graph):
        expr = union(
            join(literal(("u", "a", "v")), literal(("v", "b", "w"))),
            join(literal(("u", "a", "v")), literal(("v", "c", "w"))),
        )
        normalized = normalize(expr)
        assert normalize(normalized) == normalized

    def test_preserves_language(self, graph):
        expr = union(
            join(atom(label="a"), union(atom(label="b"), atom(label="c"))),
            join(atom(label="a"), atom(label="b")),
            EMPTY,
        )
        assert evaluate(expr, graph, 4) == evaluate(normalize(expr), graph, 4)


# Property test: rewrites preserve the language on random expressions.

VERTICES = ["u", "v", "w"]
LABELS = ["a", "b"]


def _expressions(depth=2):
    base = st.one_of(
        st.builds(lambda lab: atom(label=lab), st.sampled_from(LABELS)),
        st.builds(lambda t, l, h: literal((t, l, h)),
                  st.sampled_from(VERTICES), st.sampled_from(LABELS),
                  st.sampled_from(VERTICES)),
        st.just(EPSILON),
    )
    if depth == 0:
        return base
    sub = _expressions(depth - 1)
    return st.one_of(
        base,
        st.builds(lambda x, y: join(x, y), sub, sub),
        st.builds(lambda x, y: union(x, y), sub, sub),
        st.builds(lambda x, y: product(x, y), sub, sub),
        st.builds(star, base),
    )


_graphs = st.lists(
    st.tuples(st.sampled_from(VERTICES), st.sampled_from(LABELS),
              st.sampled_from(VERTICES)),
    min_size=1, max_size=8,
).map(MultiRelationalGraph)


@settings(max_examples=50, deadline=None)
@given(_graphs, _expressions())
def test_all_rewrites_preserve_language(graph, expr):
    bound = 3
    reference = evaluate(expr, graph, bound)
    for rewrite in (fold_literals, distribute_joins, factor_unions, normalize):
        assert evaluate(rewrite(expr), graph, bound) == reference, rewrite.__name__
