"""Tests for incremental join views and grammar-constrained analytics."""

import random

import pytest

from repro.analytics import grammar_pagerank, product_graph
from repro.core.projection import project_label_sequence
from repro.engine.views import JoinView
from repro.errors import AlgorithmError
from repro.graph.generators import uniform_random
from repro.graph.graph import MultiRelationalGraph
from repro.regex import any_edge, atom, join, star


def view_matches_recompute(view, graph):
    """The maintained view must equal a from-scratch projection."""
    fresh = project_label_sequence(graph, [view.first_label, view.second_label])
    assert view.pairs() == fresh.pairs
    for pair, count in (fresh.weights or {}).items():
        assert view.weight(*pair) == count
    return True


class TestJoinViewBasics:
    def test_initial_state_matches_recompute(self):
        g = MultiRelationalGraph([
            ("u", "a", "v"), ("v", "b", "w"), ("v", "b", "x")])
        view = JoinView(g, "a", "b")
        assert view.pairs() == {("u", "w"), ("u", "x")}
        assert view_matches_recompute(view, g)

    def test_insert_first_label_edge(self):
        g = MultiRelationalGraph([("v", "b", "w")])
        view = JoinView(g, "a", "b")
        assert len(view) == 0
        g.add_edge("u", "a", "v")
        assert view.pairs() == {("u", "w")}
        assert view_matches_recompute(view, g)

    def test_insert_second_label_edge(self):
        g = MultiRelationalGraph([("u", "a", "v")])
        view = JoinView(g, "a", "b")
        g.add_edge("v", "b", "w")
        assert view.pairs() == {("u", "w")}

    def test_delete_decrements_witnesses(self):
        g = MultiRelationalGraph([
            ("u", "a", "v"), ("u", "a", "t"),
            ("v", "b", "w"), ("t", "b", "w")])
        view = JoinView(g, "a", "b")
        assert view.weight("u", "w") == 2
        g.remove_edge("u", "a", "v")
        assert view.weight("u", "w") == 1
        g.remove_edge("t", "b", "w")
        assert view.weight("u", "w") == 0
        assert len(view) == 0

    def test_same_label_chains(self):
        g = MultiRelationalGraph([("u", "a", "v"), ("v", "a", "w")])
        view = JoinView(g, "a", "a")
        assert view.pairs() == {("u", "w")}
        assert view_matches_recompute(view, g)

    def test_self_loop_same_label(self):
        g = MultiRelationalGraph()
        view = JoinView(g, "a", "a")
        g.add_edge("v", "a", "v")
        assert view.weight("v", "v") == 1
        assert view_matches_recompute(view, g)
        g.remove_edge("v", "a", "v")
        assert len(view) == 0

    def test_closed_view_freezes(self):
        g = MultiRelationalGraph([("u", "a", "v"), ("v", "b", "w")])
        view = JoinView(g, "a", "b")
        view.close()
        g.add_edge("u", "a", "x")
        g.add_edge("x", "b", "y")
        assert view.pairs() == {("u", "w")}

    def test_context_manager_detaches(self):
        g = MultiRelationalGraph([("u", "a", "v"), ("v", "b", "w")])
        with JoinView(g, "a", "b") as view:
            assert len(view) == 1
        g.add_edge("u", "a", "q")
        g.add_edge("q", "b", "r")
        assert len(view) == 1

    def test_as_projection(self):
        g = MultiRelationalGraph([("u", "a", "v"), ("v", "b", "w")])
        projection = JoinView(g, "a", "b").as_projection()
        assert projection.pairs == {("u", "w")}
        assert projection.method == "incremental-view"


class TestJoinViewRandomized:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_mutation_storm(self, seed):
        """200 random inserts/deletes; the view must track exactly."""
        rng = random.Random(seed)
        g = uniform_random(12, 40, labels=("a", "b", "c"), seed=seed)
        view = JoinView(g, "a", "b")
        vertices = list(g.vertices())
        for _ in range(200):
            if rng.random() < 0.6 or g.size() == 0:
                tail, head = rng.choice(vertices), rng.choice(vertices)
                g.add_edge(tail, rng.choice(["a", "b", "c"]), head)
            else:
                victim = rng.choice(sorted(g.edge_set(), key=repr))
                g.remove_edge(victim.tail, victim.label, victim.head)
        assert view_matches_recompute(view, g)

    def test_same_label_mutation_storm(self):
        rng = random.Random(9)
        g = MultiRelationalGraph()
        for v in range(8):
            g.add_vertex(v)
        view = JoinView(g, "a", "a")
        for _ in range(150):
            if rng.random() < 0.65 or g.size() == 0:
                g.add_edge(rng.randrange(8), "a", rng.randrange(8))
            else:
                victim = rng.choice(sorted(g.edge_set(), key=repr))
                g.remove_edge(victim.tail, victim.label, victim.head)
        assert view_matches_recompute(view, g)


class TestProductGraph:
    def test_product_respects_grammar(self):
        g = MultiRelationalGraph([("x", "a", "y"), ("y", "b", "z")])
        product = product_graph(g, join(atom(label="a"), atom(label="b")))
        # Some configuration of x steps to a configuration of y, and on to z.
        xs = [c for c in product.vertices() if c[0] == "x"]
        assert any(product.successors(c) for c in xs)

    def test_inadmissible_moves_absent(self):
        g = MultiRelationalGraph([("x", "a", "y"), ("y", "b", "z")])
        product = product_graph(g, star(atom(label="a")))
        # No config of y may step to z: the only y->z edge is labeled b.
        for config in product.vertices():
            if config[0] == "y":
                assert all(succ[0] != "z" for succ in product.successors(config))


class TestGrammarPagerank:
    def test_mass_sums_to_one(self):
        g = uniform_random(15, 50, labels=("a", "b"), seed=3)
        ranks = grammar_pagerank(g, star(any_edge()))
        assert sum(ranks.values()) == pytest.approx(1.0)
        assert set(ranks) == g.vertices()

    def test_trivial_grammar_tracks_plain_pagerank_order(self):
        """any* grammar: top-ranked vertex agrees with collapsed PageRank."""
        import networkx as nx
        g = uniform_random(12, 45, labels=("a",), seed=5)
        grammar_ranks = grammar_pagerank(g, star(any_edge()))
        plain = nx.pagerank(nx.DiGraph(list(g.collapsed())), tol=1e-12)
        top_grammar = max(grammar_ranks, key=grammar_ranks.get)
        top_plain = max(plain, key=plain.get)
        assert top_grammar == top_plain

    def test_restrictive_grammar_shifts_mass(self):
        # a-cycle between x and y; b-edges into z. An a-only surfer visits
        # x/y constantly and z only via teleport.
        g = MultiRelationalGraph([
            ("x", "a", "y"), ("y", "a", "x"),
            ("x", "b", "z"), ("y", "b", "z"),
        ])
        a_only = grammar_pagerank(g, star(atom(label="a")))
        assert a_only["x"] > a_only["z"]
        assert a_only["y"] > a_only["z"]
        b_grammar = grammar_pagerank(g, join(star(atom(label="a")),
                                             atom(label="b")))
        assert b_grammar["z"] > a_only["z"]

    def test_empty_graph_rejected(self):
        with pytest.raises(AlgorithmError):
            grammar_pagerank(MultiRelationalGraph(), star(any_edge()))
