"""Property tests for the weighted-relation algebra (semiring lift laws)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semiring import (
    BOOLEAN,
    BOTTLENECK,
    COUNTING,
    TROPICAL,
    WeightedRelation,
)

VERTICES = ["u", "v", "w"]

_pairs = st.tuples(st.sampled_from(VERTICES), st.sampled_from(VERTICES))


def relation_strategy(semiring, weights):
    return st.dictionaries(_pairs, weights, max_size=6).map(
        lambda entries: WeightedRelation(semiring, entries))


boolean_relations = relation_strategy(BOOLEAN, st.booleans())
counting_relations = relation_strategy(COUNTING, st.integers(0, 5))
tropical_relations = relation_strategy(
    TROPICAL, st.sampled_from([float("inf"), 0.0, 1.0, 2.5, 7.0]))
bottleneck_relations = relation_strategy(
    BOTTLENECK, st.sampled_from([0.0, 1.0, 3.0, float("inf")]))


def make_laws(relations, label):
    @settings(max_examples=50)
    @given(relations, relations, relations)
    def compose_is_associative(a, b, c):
        assert (a @ b) @ c == a @ (b @ c)

    @settings(max_examples=50)
    @given(relations, relations, relations)
    def compose_distributes_over_union(a, b, c):
        assert a @ (b | c) == (a @ b) | (a @ c)
        assert (b | c) @ a == (b @ a) | (c @ a)

    @settings(max_examples=50)
    @given(relations, relations)
    def union_is_commutative(a, b):
        assert a | b == b | a

    @settings(max_examples=50)
    @given(relations)
    def identity_is_neutral(a):
        identity = WeightedRelation.identity(a.semiring, VERTICES)
        assert identity @ a == a
        assert a @ identity == a

    @settings(max_examples=50)
    @given(relations)
    def transpose_is_involution(a):
        assert a.transpose().transpose() == a

    @settings(max_examples=30)
    @given(relations, relations)
    def transpose_antidistributes_over_compose(a, b):
        assert (a @ b).transpose() == b.transpose() @ a.transpose()

    compose_is_associative.__name__ += "_" + label
    return [compose_is_associative, compose_distributes_over_union,
            union_is_commutative, identity_is_neutral,
            transpose_is_involution, transpose_antidistributes_over_compose]


# Materialize the law checks per semiring as module-level test functions.
for _label, _relations in [("boolean", boolean_relations),
                           ("counting", counting_relations),
                           ("tropical", tropical_relations),
                           ("bottleneck", bottleneck_relations)]:
    for _position, _law in enumerate(make_laws(_relations, _label)):
        globals()["test_{}_{}_{}".format(_label, _position, _law.__name__)] = _law
del _label, _relations, _position, _law


@settings(max_examples=40)
@given(boolean_relations)
def test_boolean_star_is_transitive_and_reflexive(a):
    closure = a.star()
    vertices = closure.vertices() | a.vertices()
    for v in vertices:
        assert closure.weight(v, v) is True
    # Transitivity: support closed under composition with itself.
    assert (closure @ closure).support() <= closure.support()


@settings(max_examples=40)
@given(tropical_relations)
def test_tropical_star_satisfies_triangle_inequality(a):
    closure = a.star()
    vertices = sorted(closure.vertices(), key=repr)
    for x in vertices:
        for y in vertices:
            for z in vertices:
                xy = closure.weight(x, y)
                yz = closure.weight(y, z)
                xz = closure.weight(x, z)
                if xy != TROPICAL.zero and yz != TROPICAL.zero:
                    assert xz <= xy + yz + 1e-9
