"""Tests for the semiring-weighted path algebra."""

import pytest

from repro.algorithms import DiGraph, dijkstra
from repro.core.projection import project_label_sequence
from repro.graph.graph import MultiRelationalGraph
from repro.semiring import (
    BOOLEAN,
    BOTTLENECK,
    COUNTING,
    TROPICAL,
    VITERBI,
    WeightedRelation,
    label_sequence_weights,
    relation_of_label,
)


@pytest.fixture
def graph():
    g = MultiRelationalGraph()
    g.add_edge("a", "r", "b", cost=2.0)
    g.add_edge("a", "r", "c", cost=5.0)
    g.add_edge("b", "s", "d", cost=1.0)
    g.add_edge("c", "s", "d", cost=1.0)
    g.add_edge("b", "s", "e", cost=4.0)
    return g


def cost(e, g):
    return g.edge_properties(e.tail, e.label, e.head)["cost"]


class TestSemiringLaws:
    @pytest.mark.parametrize("semiring,samples", [
        (BOOLEAN, [False, True]),
        (COUNTING, [0, 1, 2, 5]),
        (TROPICAL, [float("inf"), 0.0, 1.5, 7.0]),
        (BOTTLENECK, [0.0, 1.0, 3.5, float("inf")]),
        (VITERBI, [0.0, 0.25, 0.5, 1.0]),
    ])
    def test_builtins_satisfy_laws(self, semiring, samples):
        semiring.check_laws(samples)

    def test_counting_is_not_idempotent(self):
        assert not COUNTING.idempotent_add

    def test_fold_helpers(self):
        assert TROPICAL.sum([3.0, 1.0, 2.0]) == 1.0
        assert TROPICAL.product([3.0, 1.0]) == 4.0
        assert COUNTING.sum([]) == 0
        assert COUNTING.product([]) == 1


class TestWeightedRelation:
    def test_zero_entries_normalized_away(self):
        r = WeightedRelation(COUNTING, {("a", "b"): 0, ("a", "c"): 2})
        assert ("a", "b") not in r
        assert len(r) == 1

    def test_union_adds_weights(self):
        r1 = WeightedRelation(COUNTING, {("a", "b"): 1})
        r2 = WeightedRelation(COUNTING, {("a", "b"): 2, ("x", "y"): 1})
        merged = r1 | r2
        assert merged.weight("a", "b") == 3
        assert merged.weight("x", "y") == 1

    def test_compose_sums_over_middles(self):
        r1 = WeightedRelation(COUNTING, {("a", "b"): 1, ("a", "c"): 1})
        r2 = WeightedRelation(COUNTING, {("b", "d"): 1, ("c", "d"): 1})
        composed = r1 @ r2
        assert composed.weight("a", "d") == 2  # two witness routes

    def test_compose_tropical_takes_min(self):
        r1 = WeightedRelation(TROPICAL, {("a", "b"): 2.0, ("a", "c"): 5.0})
        r2 = WeightedRelation(TROPICAL, {("b", "d"): 1.0, ("c", "d"): 1.0})
        composed = r1 @ r2
        assert composed.weight("a", "d") == 3.0

    def test_semiring_mismatch_rejected(self):
        r1 = WeightedRelation(COUNTING, {("a", "b"): 1})
        r2 = WeightedRelation(TROPICAL, {("a", "b"): 1.0})
        with pytest.raises(ValueError):
            r1 @ r2

    def test_identity_is_compose_neutral(self):
        r = WeightedRelation(COUNTING, {("a", "b"): 3})
        identity = WeightedRelation.identity(COUNTING, {"a", "b"})
        assert (identity @ r) == r
        assert (r @ identity) == r

    def test_power(self):
        chain = WeightedRelation(BOOLEAN, {("a", "b"): True, ("b", "c"): True})
        assert chain.power(2).support() == {("a", "c")}
        assert chain.power(0).weight("a", "a") is True

    def test_power_negative_rejected(self):
        with pytest.raises(ValueError):
            WeightedRelation(BOOLEAN, {}).power(-1)

    def test_boolean_star_is_transitive_reflexive_closure(self):
        chain = WeightedRelation(BOOLEAN, {
            ("a", "b"): True, ("b", "c"): True, ("c", "a"): True})
        closure = chain.star()
        vertices = ["a", "b", "c"]
        for tail in vertices:
            for head in vertices:
                assert closure.weight(tail, head) is True

    def test_tropical_star_is_all_pairs_shortest(self):
        edges = WeightedRelation(TROPICAL, {
            ("a", "b"): 1.0, ("b", "c"): 2.0, ("a", "c"): 9.0, ("c", "a"): 1.0})
        closure = edges.star()
        assert closure.weight("a", "c") == 3.0  # a-b-c beats direct 9
        assert closure.weight("a", "a") == 0.0  # the semiring one
        # Cross-check against Dijkstra on the same digraph.
        d = DiGraph()
        d.add_edge("a", "b", weight=1.0)
        d.add_edge("b", "c", weight=2.0)
        d.add_edge("a", "c", weight=9.0)
        d.add_edge("c", "a", weight=1.0)
        for target, distance in dijkstra(d, "a").items():
            assert closure.weight("a", target) == pytest.approx(distance)

    def test_counting_star_bounded_on_cycles(self):
        loop = WeightedRelation(COUNTING, {("a", "a"): 1})
        bounded = loop.star(max_steps=5)
        # walks of length 0..5 from a to a: 6 of them, one per length.
        assert bounded.weight("a", "a") == 6

    def test_transpose(self):
        r = WeightedRelation(COUNTING, {("a", "b"): 2})
        assert r.transpose().weight("b", "a") == 2

    def test_restrict(self):
        r = WeightedRelation(COUNTING, {("a", "b"): 1, ("c", "b"): 1})
        assert r.restrict(tails={"a"}).support() == {("a", "b")}
        assert r.restrict(heads=set()).support() == frozenset()

    def test_map_weights(self):
        r = WeightedRelation(COUNTING, {("a", "b"): 3})
        doubled = r.map_weights(lambda w: w * 2)
        assert doubled.weight("a", "b") == 6


class TestGraphLifts:
    def test_relation_of_label_boolean(self, graph):
        r = relation_of_label(graph, "r", BOOLEAN)
        assert r.support() == graph.relation("r")

    def test_relation_of_label_with_weights(self, graph):
        r = relation_of_label(graph, "r", TROPICAL, weight=cost)
        assert r.weight("a", "b") == 2.0

    def test_counting_sequence_matches_projection_weights(self, graph):
        """The semiring lift reproduces section IV-C witness counts exactly."""
        counted = label_sequence_weights(graph, ["r", "s"], COUNTING)
        projection = project_label_sequence(graph, ["r", "s"])
        assert counted.support() == projection.pairs
        for pair, count in projection.weights.items():
            assert counted.weight(*pair) == count

    def test_tropical_sequence_is_cheapest_route(self, graph):
        cheapest = label_sequence_weights(graph, ["r", "s"], TROPICAL, weight=cost)
        # a-r->b (2) -s-> d (1) = 3 beats a-r->c (5) -s-> d (1) = 6.
        assert cheapest.weight("a", "d") == 3.0

    def test_bottleneck_sequence_is_widest_route(self, graph):
        widest = label_sequence_weights(graph, ["r", "s"], BOTTLENECK, weight=cost)
        # via b: min(2, 1) = 1; via c: min(5, 1) = 1 -> max is 1.
        assert widest.weight("a", "d") == 1.0
        # to e only via b: min(2, 4) = 2.
        assert widest.weight("a", "e") == 2.0

    def test_empty_sequence_rejected(self, graph):
        with pytest.raises(ValueError):
            label_sequence_weights(graph, [], COUNTING)
