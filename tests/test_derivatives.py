"""Tests for Brzozowski-derivative recognition."""

import pytest

from repro.core.path import EPSILON as EPSILON_PATH
from repro.core.path import Path
from repro.graph.graph import MultiRelationalGraph
from repro.regex import (
    EMPTY,
    EPSILON,
    Empty,
    atom,
    join,
    literal,
    matches,
    optional,
    plus,
    product,
    star,
    union,
)
from repro.regex.derivatives import derive


@pytest.fixture
def graph():
    return MultiRelationalGraph([
        ("a", "x", "b"),
        ("b", "y", "c"),
        ("b", "y", "b"),
        ("c", "x", "d"),
        ("p", "y", "q"),
    ])


class TestDerive:
    def test_derivative_of_matching_atom_is_epsilon(self, graph):
        from repro.core.edge import Edge
        d = derive(atom(label="x"), Edge("a", "x", "b"), graph)
        assert d.nullable

    def test_derivative_of_non_matching_atom_is_empty(self, graph):
        from repro.core.edge import Edge
        d = derive(atom(label="x"), Edge("b", "y", "c"), graph)
        assert isinstance(d, Empty)

    def test_derivative_respects_adjacency_requirement(self, graph):
        from repro.core.edge import Edge
        d = derive(atom(label="y"), Edge("p", "y", "q"), graph,
                   previous_head="b", required=True)
        assert isinstance(d, Empty)
        d2 = derive(atom(label="y"), Edge("p", "y", "q"), graph,
                    previous_head="b", required=False)
        assert d2.nullable


class TestMatches:
    def test_epsilon(self, graph):
        assert matches(EPSILON, EPSILON_PATH, graph)
        assert not matches(EMPTY, EPSILON_PATH, graph)

    def test_atom(self, graph):
        assert matches(atom(label="x"), Path.single("a", "x", "b"), graph)
        assert not matches(atom(label="x"), Path.single("b", "y", "c"), graph)

    def test_join_adjacency(self, graph):
        expr = join(atom(label="x"), atom(label="y"))
        assert matches(expr, Path.of(("a", "x", "b"), ("b", "y", "c")), graph)
        assert not matches(expr, Path.of(("a", "x", "b"), ("p", "y", "q")), graph)

    def test_product_exemption(self, graph):
        expr = product(atom(label="x"), atom(label="y"))
        assert matches(expr, Path.of(("a", "x", "b"), ("p", "y", "q")), graph)

    def test_handover_after_consumption_requires_adjacency(self, graph):
        # (x . y?) . x — if y is taken, next x must be adjacent to y's head.
        expr = join(atom(label="x"), optional(atom(label="y")), atom(label="x"))
        good = Path.of(("a", "x", "b"), ("b", "y", "c"), ("c", "x", "d"))
        bad = Path.of(("a", "x", "b"), ("b", "y", "b"), ("c", "x", "d"))
        assert matches(expr, good, graph)
        assert not matches(expr, bad, graph)

    def test_product_boundary_after_consumption(self, graph):
        # (x & y) where x consumed: boundary into y is free.
        expr = product(atom(label="x"), atom(label="y"))
        assert matches(expr, Path.of(("c", "x", "d"), ("b", "y", "b")), graph)

    def test_join_into_product_subtree(self, graph):
        # x . (y & y): first boundary adjacent, inner boundary free.
        expr = join(atom(label="x"),
                    product(atom(label="y"), atom(label="y")))
        good = Path.of(("a", "x", "b"), ("b", "y", "c"), ("p", "y", "q"))
        bad = Path.of(("a", "x", "b"), ("p", "y", "q"), ("b", "y", "c"))
        assert matches(expr, good, graph)
        assert not matches(expr, bad, graph)

    def test_star(self, graph):
        expr = star(atom(label="y"))
        assert matches(expr, EPSILON_PATH, graph)
        assert matches(expr, Path.of(("b", "y", "b"), ("b", "y", "c")), graph)
        assert not matches(expr, Path.of(("b", "y", "c"), ("p", "y", "q")), graph)

    def test_plus(self, graph):
        expr = plus(atom(label="y"))
        assert not matches(expr, EPSILON_PATH, graph)
        assert matches(expr, Path.single("b", "y", "c"), graph)

    def test_union(self, graph):
        expr = union(atom(label="x"), atom(label="y"))
        assert matches(expr, Path.single("b", "y", "b"), graph)

    def test_multi_edge_literal(self, graph):
        disjoint = Path.of(("u", "r", "v"), ("w", "r", "z"))
        expr = literal(disjoint)
        assert matches(expr, disjoint, graph)
        assert not matches(expr, Path.of(("u", "r", "v"), ("v", "r", "z")), graph)

    def test_literal_prefix_not_enough(self, graph):
        expr = literal(Path.of(("u", "r", "v"), ("v", "r", "w")))
        assert not matches(expr, Path.single("u", "r", "v"), graph)
