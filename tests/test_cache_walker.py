"""Tests for the query cache, graph versioning, the grammar walker, and HITS."""

import pytest

from repro.automata import Recognizer, generate_paths
from repro.datasets.paper import figure1_expression, figure1_graph
from repro.engine import Engine, QueryCache
from repro.graph.graph import MultiRelationalGraph
from repro.regex import atom, join, star
from repro.walker import GrammarWalker

QUERY = "[i, alpha, _] . [_, beta, _]* . (([_, alpha, j] . {(j, alpha, i)}) | [_, alpha, k])"


class TestGraphVersioning:
    def test_version_starts_and_grows(self):
        g = MultiRelationalGraph()
        v0 = g.version()
        g.add_edge("a", "r", "b")
        assert g.version() > v0

    def test_every_mutation_bumps(self):
        g = MultiRelationalGraph([("a", "r", "b")])
        checkpoints = [g.version()]
        g.add_vertex("c")
        checkpoints.append(g.version())
        g.set_vertex_property("c", "k", 1)
        checkpoints.append(g.version())
        g.set_edge_property("a", "r", "b", "k", 1)
        checkpoints.append(g.version())
        g.remove_edge("a", "r", "b")
        checkpoints.append(g.version())
        g.remove_vertex("c")
        checkpoints.append(g.version())
        assert checkpoints == sorted(set(checkpoints))

    def test_reads_do_not_bump(self):
        g = MultiRelationalGraph([("a", "r", "b")])
        version = g.version()
        g.edges(label="r")
        g.vertices()
        g.out_degree("a")
        assert g.version() == version


class TestQueryCache:
    @pytest.fixture
    def engine(self):
        return Engine(figure1_graph(), default_max_length=6,
                      cache=QueryCache(capacity=8))

    def test_second_query_hits(self, engine):
        first = engine.query(QUERY)
        second = engine.query(QUERY)
        assert second.paths == first.paths
        assert engine.cache.hits == 1

    def test_cached_result_reports_zero_elapsed(self, engine):
        engine.query(QUERY)
        assert engine.query(QUERY).elapsed == 0.0

    def test_mutation_invalidates(self, engine):
        before = engine.query(QUERY).paths
        engine.graph.add_edge("i", "alpha", "extra")
        engine.graph.add_edge("extra", "alpha", "k")
        after = engine.query(QUERY).paths
        assert engine.cache.hits == 0
        assert before < after  # new paths through 'extra'

    def test_different_bounds_cached_separately(self, engine):
        engine.query(QUERY, max_length=4)
        engine.query(QUERY, max_length=6)
        assert engine.cache.misses == 2
        engine.query(QUERY, max_length=4)
        assert engine.cache.hits == 1

    def test_limit_queries_bypass_cache(self, engine):
        engine.query(QUERY, strategy="streaming", limit=2)
        engine.query(QUERY, strategy="streaming", limit=2)
        assert len(engine.cache) == 0

    def test_lru_eviction(self):
        cache = QueryCache(capacity=2)
        expressions = [atom(label=str(k)) for k in range(3)]
        for expr in expressions:
            cache.put(expr, 4, 0, "materialized", None or __import__(
                "repro.core.pathset", fromlist=["PathSet"]).PathSet())
        assert len(cache) == 2
        assert cache.get(expressions[0], 4, 0, "materialized") is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            QueryCache(capacity=0)

    def test_shared_cache_distinguishes_graphs(self):
        # Two engines sharing one cache over different graphs that agree on
        # version() must not serve each other's results: the key embeds a
        # per-graph identity token.
        g1 = MultiRelationalGraph([("a", "r", "b")])
        g2 = MultiRelationalGraph([("a", "r", "c")])
        assert g1.version() == g2.version()  # the collision the token fixes
        assert g1.graph_token() != g2.graph_token()
        shared = QueryCache(capacity=8)
        e1 = Engine(g1, cache=shared)
        e2 = Engine(g2, cache=shared)
        first = e1.query("[_, r, _]").paths
        second = e2.query("[_, r, _]").paths
        assert shared.hits == 0  # g2's query must MISS, not reuse g1's entry
        assert first != second
        assert {p.head for p in first} == {"b"}
        assert {p.head for p in second} == {"c"}

    def test_clear(self, engine):
        engine.query(QUERY)
        engine.cache.clear()
        assert len(engine.cache) == 0
        assert engine.cache.hits == 0

    def test_sources_and_targets_key_the_cache(self, engine):
        """PR 7 regression: sources/targets entered ``pairs()`` in PR 3
        but the cache key never learned them, so a source-restricted call
        could poison the unrestricted answer (and vice versa)."""
        full = engine.pairs("[_, alpha, _]")
        restricted = engine.pairs("[_, alpha, _]", sources=["i"])
        assert restricted < full
        # Both answers must round-trip through the cache unmixed.
        assert engine.pairs("[_, alpha, _]") == full
        assert engine.pairs("[_, alpha, _]", sources=["i"]) == restricted
        assert engine.pairs("[_, alpha, _]", targets=["j"]) < full
        assert engine.cache.hits == 2

    def test_cache_get_distinguishes_endpoint_sets(self):
        cache = QueryCache(capacity=8)
        expr = atom(label="r")
        cache.put(expr, 4, 0, "pairs", frozenset({("a", "b")}),
                  sources=frozenset({"a"}), kind="pairs")
        assert cache.get(expr, 4, 0, "pairs",
                         sources=frozenset({"a"}), kind="pairs") is not None
        assert cache.get(expr, 4, 0, "pairs", kind="pairs") is None
        assert cache.get(expr, 4, 0, "pairs",
                         sources=frozenset({"z"}), kind="pairs") is None
        assert cache.get(expr, 4, 0, "pairs", sources=frozenset({"a"}),
                         targets=frozenset({"b"}), kind="pairs") is None

    def test_pairs_and_query_results_never_collide(self, engine):
        """The ``kind`` component keeps frozenset pair answers and PathSet
        query answers apart even for the same expression and bound."""
        pairs = engine.pairs("[_, alpha, _]", max_length=6)
        result = engine.query("[_, alpha, _]", max_length=6)
        assert pairs == {(p.tail, p.head) for p in result.paths}
        assert engine.pairs("[_, alpha, _]", max_length=6) == pairs


class TestGrammarWalker:
    @pytest.fixture
    def walker(self):
        return GrammarWalker(figure1_graph(), figure1_expression(), seed=7)

    def test_accepted_walks_are_language_members(self, walker):
        recognizer = Recognizer(figure1_expression(), figure1_graph())
        samples = walker.sample_paths(40, max_steps=8)
        assert samples
        for p in samples:
            assert recognizer.accepts(p)

    def test_deterministic_under_seed(self):
        a = GrammarWalker(figure1_graph(), figure1_expression(), seed=3)
        b = GrammarWalker(figure1_graph(), figure1_expression(), seed=3)
        assert a.sample_paths(20, 8) == b.sample_paths(20, 8)

    def test_different_seeds_differ(self):
        a = GrammarWalker(figure1_graph(), figure1_expression(), seed=1)
        b = GrammarWalker(figure1_graph(), figure1_expression(), seed=2)
        assert a.sample_paths(30, 8) != b.sample_paths(30, 8)

    def test_samples_are_subset_of_generation(self, walker):
        exact = generate_paths(figure1_graph(), figure1_expression(), 8)
        for p in walker.sample_paths(40, max_steps=8):
            assert p in exact

    def test_visit_counts_cover_reachable_core(self, walker):
        counts = walker.visit_counts(100, max_steps=8)
        # Every walk starts i -alpha-> m, so both are visited every time.
        assert counts["i"] >= 100
        assert counts["m"] >= 100

    def test_dead_end_grammar(self):
        g = MultiRelationalGraph([("a", "x", "b")])
        walker = GrammarWalker(g, join(atom(label="x"), atom(label="zz")),
                               seed=0)
        result = walker.walk(max_steps=4)
        assert not result.accepted

    def test_stop_probability_one_is_shortest_biased(self):
        g = MultiRelationalGraph([("a", "x", "a")])
        walker = GrammarWalker(g, star(atom(label="x")), seed=0,
                               stop_probability=1.0)
        result = walker.walk(max_steps=10)
        assert result.accepted
        assert len(result.path) == 0  # epsilon accepted immediately

    def test_acceptance_rate_bounds(self, walker):
        rate = walker.acceptance_rate(30, max_steps=8)
        assert 0.0 <= rate <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            GrammarWalker(figure1_graph(), figure1_expression(),
                          stop_probability=0.0)
        walker = GrammarWalker(figure1_graph(), figure1_expression())
        with pytest.raises(ValueError):
            walker.acceptance_rate(0)


class TestLinkAnalysis:
    def test_hits_against_networkx(self):
        import random
        import networkx as nx
        from repro.algorithms import DiGraph, hits
        rng = random.Random(4)
        edges = set()
        while len(edges) < 50:
            a, b = rng.randrange(14), rng.randrange(14)
            if a != b:
                edges.add((a, b))
        ours_h, ours_a = hits(DiGraph(edges))
        theirs_h, theirs_a = nx.hits(nx.DiGraph(list(edges)),
                                     max_iter=1000, tol=1e-12)
        for v in ours_h:
            assert ours_h[v] == pytest.approx(theirs_h[v], abs=1e-6)
            assert ours_a[v] == pytest.approx(theirs_a[v], abs=1e-6)

    def test_harmonic_against_networkx(self):
        import random
        import networkx as nx
        from repro.algorithms import DiGraph, harmonic_centrality
        rng = random.Random(5)
        edges = set()
        while len(edges) < 40:
            a, b = rng.randrange(12), rng.randrange(12)
            if a != b:
                edges.add((a, b))
        ours = harmonic_centrality(DiGraph(edges))
        theirs = nx.harmonic_centrality(nx.DiGraph(list(edges)))
        for v in ours:
            assert ours[v] == pytest.approx(theirs[v], abs=1e-9)

    def test_hits_empty_graph(self):
        from repro.algorithms import DiGraph, hits
        assert hits(DiGraph()) == ({}, {})

    def test_harmonic_on_line(self):
        from repro.algorithms import DiGraph, harmonic_centrality
        g = DiGraph([("a", "b"), ("b", "c")])
        scores = harmonic_centrality(g)
        assert scores["c"] == pytest.approx(1.0 + 0.5)
        assert scores["a"] == 0.0
