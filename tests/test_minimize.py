"""Tests for label-DFA minimization and language equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpq import (
    accepts_label_word,
    build_label_nfa,
    determinize,
    lconcat,
    loptional,
    lplus,
    lstar,
    lunion,
    sym,
)
from repro.rpq.labelregex import LabelEpsilon
from repro.rpq.minimize import equivalent, expressions_equivalent, minimize

ALPHABET = ["a", "b"]


def dfa_of(expr):
    return determinize(build_label_nfa(expr), ALPHABET)


class TestMinimize:
    def test_minimization_preserves_language(self):
        expr = lconcat(lunion(sym("a"), sym("b")), lstar(sym("a")))
        dfa = dfa_of(expr)
        small = minimize(dfa, ALPHABET)
        words = [[], ["a"], ["b"], ["a", "a"], ["b", "a", "a"], ["a", "b"],
                 ["b", "b"], ["a", "a", "a"]]
        for word in words:
            assert small.accepts(word) == dfa.accepts(word), word

    def test_minimization_never_grows(self):
        expressions = [
            lstar(lunion(sym("a"), sym("b"))),
            lconcat(sym("a"), sym("a"), sym("a")),
            lunion(lconcat(sym("a"), sym("b")), lconcat(sym("a"), sym("b"))),
            loptional(lplus(sym("a"))),
        ]
        for expr in expressions:
            dfa = dfa_of(expr)
            assert minimize(dfa, ALPHABET).num_states <= dfa.num_states

    def test_redundant_branches_collapse(self):
        # (ab) | (ab) determinizes with duplicated structure; the minimal
        # DFA for 'ab' needs exactly 3 live states.
        expr = lunion(lconcat(sym("a"), sym("b")), lconcat(sym("a"), sym("b")))
        small = minimize(dfa_of(expr), ALPHABET)
        assert small.num_states == 3

    def test_sigma_star_minimizes_to_one_state(self):
        small = minimize(dfa_of(lstar(lunion(sym("a"), sym("b")))), ALPHABET)
        assert small.num_states == 1
        assert small.accepts(["a", "b", "a"])

    def test_empty_language_minimizes_to_trivial(self):
        from repro.rpq.labelregex import LabelEmpty
        small = minimize(dfa_of(LabelEmpty()), ALPHABET)
        assert small.num_states == 1
        assert not small.accepts([])
        assert not small.accepts(["a"])

    def test_idempotent(self):
        dfa = dfa_of(lconcat(sym("a"), lstar(sym("b"))))
        once = minimize(dfa, ALPHABET)
        twice = minimize(once, ALPHABET)
        assert once.num_states == twice.num_states


class TestEquivalence:
    def test_classic_identities(self):
        a, b = sym("a"), sym("b")
        assert expressions_equivalent(lstar(lunion(a, b)),
                                      lstar(lconcat(lstar(a), lstar(b))))
        assert expressions_equivalent(lplus(a), lconcat(a, lstar(a)))
        assert expressions_equivalent(loptional(a), lunion(a, LabelEpsilon()))
        assert expressions_equivalent(lstar(lstar(a)), lstar(a))

    def test_non_equivalent_detected(self):
        a, b = sym("a"), sym("b")
        assert not expressions_equivalent(lconcat(a, b), lconcat(b, a))
        assert not expressions_equivalent(lstar(a), lplus(a))
        assert not expressions_equivalent(a, lunion(a, b))

    def test_equivalence_after_minimization(self):
        expr = lconcat(lunion(sym("a"), sym("b")), sym("a"))
        dfa = dfa_of(expr)
        assert equivalent(dfa, minimize(dfa, ALPHABET), ALPHABET)


def _label_exprs(depth=2):
    base = st.one_of(st.builds(sym, st.sampled_from(ALPHABET)),
                     st.just(LabelEpsilon()))
    if depth == 0:
        return base
    sub = _label_exprs(depth - 1)
    return st.one_of(
        base,
        st.builds(lambda x, y: lconcat(x, y), sub, sub),
        st.builds(lambda x, y: lunion(x, y), sub, sub),
        st.builds(lstar, base),
    )


@settings(max_examples=50, deadline=None)
@given(_label_exprs(), st.lists(st.sampled_from(ALPHABET), max_size=5))
def test_minimized_dfa_agrees_with_nfa_on_random_words(expr, word):
    dfa = minimize(dfa_of(expr), ALPHABET)
    assert dfa.accepts(word) == accepts_label_word(expr, word)


@settings(max_examples=40, deadline=None)
@given(_label_exprs())
def test_every_expression_equivalent_to_itself_minimized(expr):
    dfa = dfa_of(expr)
    assert equivalent(dfa, minimize(dfa, ALPHABET), ALPHABET)
