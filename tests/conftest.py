"""Shared fixtures: the paper's graphs plus small deterministic structures."""

from __future__ import annotations

import pytest

from repro.core.path import Path
from repro.core.pathset import PathSet
from repro.datasets.paper import figure1_graph, section2_graph
from repro.datasets.scenarios import scholarly_graph, software_community
from repro.graph.generators import cycle_graph, line_graph, uniform_random
from repro.graph.graph import MultiRelationalGraph


@pytest.fixture
def section2():
    """The {i, j, k} graph of the paper's section II worked example."""
    return section2_graph()


@pytest.fixture
def figure1():
    """The graph constructed for the Figure 1 automaton."""
    return figure1_graph()


@pytest.fixture
def diamond():
    """A 2-relation diamond: a ->(x2) b/c ->(x2) d, plus a shortcut.

    Hand-countable path structure:
      a -alpha-> b -beta-> d
      a -alpha-> c -beta-> d
      a -beta-> d (shortcut)
    """
    return MultiRelationalGraph([
        ("a", "alpha", "b"),
        ("a", "alpha", "c"),
        ("b", "beta", "d"),
        ("c", "beta", "d"),
        ("a", "beta", "d"),
    ], name="diamond")


@pytest.fixture
def triangle_cycle():
    """A 3-cycle with labels alpha, beta, gamma in order."""
    return cycle_graph(3, labels=("alpha", "beta", "gamma"))


@pytest.fixture
def line5():
    """A 5-vertex directed line with labels cycling alpha/beta."""
    return line_graph(5, labels=("alpha", "beta"))


@pytest.fixture
def random_graph():
    """A seeded 30-vertex / 90-edge / 3-label random graph."""
    return uniform_random(30, 90, labels=("a", "b", "c"), seed=42)


@pytest.fixture
def community():
    """The software-community scenario graph."""
    return software_community()


@pytest.fixture
def scholarly():
    """The authors/papers/venues scenario graph."""
    return scholarly_graph()


@pytest.fixture
def abc_path():
    """The joint 2-path (a, alpha, b, b, beta, c)."""
    return Path.of(("a", "alpha", "b"), ("b", "beta", "c"))


def paths_as_strings(path_set: PathSet):
    """Stable string rendering of a path set, for readable assertions."""
    return sorted(str(p) for p in path_set)
