"""Tests for basic graph pattern (conjunctive query) matching."""

import pytest

from repro.graph.graph import MultiRelationalGraph
from repro.pattern import BGPQuery, PatternError, Var, solve, triple


@pytest.fixture
def graph():
    return MultiRelationalGraph([
        ("alice", "authored", "p1"),
        ("bob", "authored", "p1"),
        ("bob", "authored", "p2"),
        ("carol", "authored", "p3"),
        ("p2", "cites", "p1"),
        ("p3", "cites", "p1"),
        ("p3", "cites", "p2"),
        ("p1", "published_in", "icde"),
        ("p2", "published_in", "icde"),
        ("p3", "published_in", "vldb"),
    ])


class TestTriplePattern:
    def test_question_mark_shorthand(self):
        pattern = triple("?a", "authored", "?p")
        assert pattern.tail == Var("a")
        assert pattern.label == "authored"
        assert pattern.head == Var("p")

    def test_variables(self):
        assert triple("?a", "?r", "x").variables() == {"a", "r"}

    def test_ground(self):
        pattern = triple("?a", "authored", "?p").ground({"a": "bob"})
        assert pattern.tail == "bob"
        assert pattern.head == Var("p")

    def test_constant_parts(self):
        assert triple("?a", "authored", "p1").constant_parts() == \
            (None, "authored", "p1")


class TestSolving:
    def test_single_pattern_all_matches(self, graph):
        solutions = solve(graph, triple("?a", "authored", "?p"))
        assert len(solutions) == 4
        assert {"a": "alice", "p": "p1"} in solutions

    def test_constants_filter(self, graph):
        solutions = solve(graph, triple("?a", "authored", "p1"))
        assert {s["a"] for s in solutions} == {"alice", "bob"}

    def test_conjunction_with_shared_variable(self, graph):
        # Authors of papers published at ICDE.
        solutions = solve(graph,
                          triple("?a", "authored", "?p"),
                          triple("?p", "published_in", "icde"))
        authors = {s["a"] for s in solutions}
        assert authors == {"alice", "bob"}

    def test_three_way_join(self, graph):
        # Who authored a paper citing a paper by alice?
        solutions = solve(graph,
                          triple("?citer", "authored", "?p"),
                          triple("?p", "cites", "?q"),
                          triple("alice", "authored", "?q"))
        assert {s["citer"] for s in solutions} == {"bob", "carol"}

    def test_variable_label(self, graph):
        solutions = solve(graph, triple("p3", "?rel", "?x"))
        assert {s["rel"] for s in solutions} == {"cites", "published_in"}

    def test_repeated_variable_must_agree(self, graph):
        # ?p cites ?p would need a self-citation: none exist.
        assert solve(graph, triple("?p", "cites", "?p")) == []

    def test_no_solutions(self, graph):
        assert solve(graph, triple("nobody", "authored", "?p")) == []

    def test_limit_truncates_lazily(self, graph):
        solutions = solve(graph, triple("?a", "authored", "?p"), limit=2)
        assert len(solutions) == 2

    def test_cross_product_when_disconnected(self, graph):
        solutions = solve(graph,
                          triple("?a", "published_in", "icde"),
                          triple("?b", "published_in", "vldb"))
        assert len(solutions) == 2  # p1/p3 and p2/p3


class TestQueryObject:
    def test_variables_across_patterns(self, graph):
        query = BGPQuery([triple("?a", "authored", "?p"),
                          triple("?p", "cites", "?q")])
        assert query.variables() == {"a", "p", "q"}

    def test_select_projects_distinct(self, graph):
        query = BGPQuery([triple("?a", "authored", "?p"),
                          triple("?p", "published_in", "icde")])
        rows = query.select(graph, "a")
        assert rows == [("alice",), ("bob",)]

    def test_select_unknown_variable_rejected(self, graph):
        query = BGPQuery([triple("?a", "authored", "?p")])
        with pytest.raises(PatternError):
            query.select(graph, "nope")

    def test_solve_all_is_deterministic(self, graph):
        query = BGPQuery([triple("?a", "authored", "?p")])
        assert query.solve_all(graph) == query.solve_all(graph)

    def test_empty_query_rejected(self):
        with pytest.raises(PatternError):
            BGPQuery([])

    def test_ordering_handles_selective_late_pattern(self, graph):
        # The selective pattern (constant tail+label) is listed last; the
        # greedy ordering must still pick it first — verified by the result
        # being correct either way and by the selectivity keys.
        late = triple("alice", "authored", "?q")
        early = triple("?citer", "authored", "?p")
        assert late.selectivity_key(graph, frozenset()) <= \
            early.selectivity_key(graph, frozenset())


class TestComposingWithPaths:
    def test_bgp_seeded_by_path_query(self, graph):
        """Path projection endpoints parameterize a BGP."""
        from repro.core.projection import project_label_sequence
        citing_pairs = project_label_sequence(graph, ["cites"]).pairs
        venues = set()
        for _, cited in citing_pairs:
            for solution in solve(graph, triple(cited, "published_in", "?v")):
                venues.add(solution["v"])
        assert venues == {"icde"}
