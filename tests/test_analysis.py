"""Pre-flight query analysis: pruning, emptiness, engine short-circuits.

Covers the :mod:`repro.analysis.query` analyzer in isolation (DFA pruning
is language-preserving, emptiness verdicts are sound), its wiring into
``Engine.pairs`` / ``pairs_batch`` / ``query`` (provably-empty queries
return the empty result with **zero** kernel dispatch — asserted by
poisoning the kernels), the EXPLAIN ``diagnostics:`` section, the
``repro lint-query`` CLI, and — by hypothesis property test — that a
"provably empty" verdict always implies the reference evaluator returns
the empty pair set on randomized graphs.
"""

import io
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.query import (
    analyze_compiled_query,
    analyze_expression,
    prune_dfa,
    star_height,
)
from repro.cli import main as cli_main
from repro.core.path import Path
from repro.datasets import figure1_graph
from repro.engine import Engine
from repro.graph.graph import MultiRelationalGraph
from repro.regex.ast import Atom, Empty, Join, Literal, Repeat, Star, Union
from repro.rpq.evaluation import compile_rpq, rpq_pairs_basic
from repro.rpq.labelregex import (
    LabelDFA,
    LabelEmpty,
    LabelEpsilon,
    accepts_label_word,
    lconcat,
    lstar,
    lunion,
    sym,
)


def graph_abc():
    return MultiRelationalGraph([
        ("u", "a", "v"), ("v", "b", "w"), ("w", "c", "u"),
    ])


# ----------------------------------------------------------------------
# DFA pruning
# ----------------------------------------------------------------------

class TestPruneDfa:
    def test_removes_trap_state_preserving_language(self):
        # State 2 is a non-accepting trap reachable on 'x': dead weight.
        dfa = LabelDFA(0, frozenset({1}), [
            {"a": 1, "x": 2}, {"a": 1}, {"x": 2},
        ])
        pruned, removed = prune_dfa(dfa)
        assert removed == 1
        assert pruned.num_states == 2
        for word in (["a"], ["a", "a"], ["x"], [], ["a", "x"]):
            assert _dfa_accepts(pruned, word) == _dfa_accepts(dfa, word)

    def test_removes_unreachable_state(self):
        # State 2 accepts but nothing reaches it.
        dfa = LabelDFA(0, frozenset({1, 2}), [
            {"a": 1}, {}, {"b": 2},
        ])
        pruned, removed = prune_dfa(dfa)
        assert removed == 1
        assert _dfa_accepts(pruned, ["a"])
        assert not _dfa_accepts(pruned, ["b"])

    def test_empty_language_collapses_to_reject_state(self):
        dfa = LabelDFA(0, frozenset(), [{"a": 1}, {"a": 0}])
        pruned, removed = prune_dfa(dfa)
        assert pruned.num_states == 1
        assert pruned.accepting == frozenset()
        assert removed == 1

    def test_useful_dfa_untouched(self):
        dfa = compile_rpq(lstar(sym("a")), graph_abc())
        pruned, removed = prune_dfa(dfa)
        assert removed == 0
        assert pruned.num_states == dfa.num_states


def _dfa_accepts(dfa, word):
    state = dfa.start
    for label in word:
        state = dfa.step(state, label)
        if state is None:
            return False
    return state in dfa.accepting


# ----------------------------------------------------------------------
# Compiled-query analysis (label level)
# ----------------------------------------------------------------------

class TestAnalyzeCompiledQuery:
    def test_unknown_labels_reported(self):
        expression = lconcat(sym("a"), sym("zz"))
        dfa = compile_rpq(expression, graph_abc())
        diag = analyze_compiled_query(dfa, expression,
                                      graph_abc().labels())
        assert diag.unknown_labels == frozenset({"zz"})
        assert diag.empty
        assert any("zz" in warning for warning in diag.warnings)

    def test_empty_language_verdict(self):
        dfa = compile_rpq(LabelEmpty(), graph_abc())
        diag = analyze_compiled_query(dfa, LabelEmpty(),
                                      graph_abc().labels())
        assert diag.empty
        assert "language is empty" in diag.empty_reason

    def test_nullable_query_with_absent_label_is_not_empty(self):
        # zz* contains the empty word: reflexive pairs survive, so the
        # analyzer must NOT claim emptiness.
        expression = lstar(sym("zz"))
        dfa = compile_rpq(expression, graph_abc())
        diag = analyze_compiled_query(dfa, expression,
                                      graph_abc().labels())
        assert not diag.empty
        assert diag.unknown_labels == frozenset({"zz"})

    def test_satisfiable_query_reports_complexity(self):
        expression = lconcat(sym("a"), lstar(lunion(sym("b"), sym("c"))))
        dfa = compile_rpq(expression, graph_abc())
        diag = analyze_compiled_query(dfa, expression,
                                      graph_abc().labels())
        assert not diag.empty
        assert diag.star_height == 1
        assert diag.expression_size >= 4
        assert diag.state_count >= 1
        assert "complexity:" in diag.describe()
        assert "satisfiable" in diag.describe()

    def test_star_height(self):
        assert star_height(sym("a")) == 0
        assert star_height(lstar(sym("a"))) == 1
        assert star_height(lstar(lconcat(sym("a"), lstar(sym("b"))))) == 2


# ----------------------------------------------------------------------
# Structural expression analysis (edge-set level)
# ----------------------------------------------------------------------

class TestAnalyzeExpression:
    def test_empty_node(self):
        diag = analyze_expression(Empty(), graph_abc())
        assert diag.empty

    def test_absent_label_atom(self):
        diag = analyze_expression(Atom(None, "zz", None), graph_abc())
        assert diag.empty
        assert diag.unknown_labels == frozenset({"zz"})

    def test_absent_bound_vertex(self):
        diag = analyze_expression(Atom("ghost", "a", None), graph_abc())
        assert diag.empty
        assert "ghost" in diag.unknown_vertices

    def test_join_with_empty_operand_is_empty(self):
        join = Join((Atom(None, "a", None), Atom(None, "zz", None)))
        assert analyze_expression(join, graph_abc()).empty

    def test_union_needs_all_empty(self):
        union = Union((Atom(None, "zz", None), Atom(None, "a", None)))
        assert not analyze_expression(union, graph_abc()).empty
        union = Union((Atom(None, "zz", None), Atom(None, "yy", None)))
        assert analyze_expression(union, graph_abc()).empty

    def test_star_never_empty(self):
        star = Star(Atom(None, "zz", None))
        assert not analyze_expression(star, graph_abc()).empty

    def test_repeat_minimum_zero_not_empty(self):
        inner = Atom(None, "zz", None)
        assert not analyze_expression(Repeat(inner, 0, 3),
                                      graph_abc()).empty
        assert analyze_expression(Repeat(inner, 1, 3), graph_abc()).empty

    def test_empty_literal(self):
        assert analyze_expression(Literal(frozenset()), graph_abc()).empty
        lit = Literal(frozenset({Path([("u", "a", "v")])}))
        assert not analyze_expression(lit, graph_abc()).empty


# ----------------------------------------------------------------------
# Engine wiring: short-circuits with zero kernel dispatch
# ----------------------------------------------------------------------

@pytest.fixture
def poisoned_kernels(monkeypatch):
    """Make every compact RPQ kernel blow up: proves zero dispatch."""
    def boom(*args, **kwargs):
        raise AssertionError("kernel dispatched for a provably-empty query")
    import repro.graph.compact as compact
    for name in ("rpq_pairs_compact", "rpq_pairs_backward",
                 "rpq_pairs_bidirectional"):
        monkeypatch.setattr(compact, name, boom)


class TestEngineShortCircuit:
    def test_pairs_short_circuits_empty_query(self, poisoned_kernels):
        engine = Engine(graph_abc())
        assert engine.pairs("[_, zz, _]") == frozenset()
        assert engine.pairs("[_, a, _] . [_, zz, _]") == frozenset()

    def test_pairs_batch_short_circuits_empty_members(self,
                                                      poisoned_kernels):
        engine = Engine(graph_abc())
        results = engine.pairs_batch(["[_, zz, _]", "[_, yy, _] . [_, a, _]"])
        assert results == [frozenset(), frozenset()]

    def test_pairs_batch_mixes_live_and_empty(self):
        engine = Engine(graph_abc())
        live, empty = engine.pairs_batch(["[_, a, _]", "[_, zz, _]"])
        assert ("u", "v") in live
        assert empty == frozenset()

    def test_query_short_circuits_structurally_empty(self):
        engine = Engine(graph_abc())
        result = engine.query("[_, zz, _]")
        assert len(result.paths) == 0
        assert result.elapsed == 0.0
        result = engine.query("[ghost, a, _]")
        assert len(result.paths) == 0

    def test_bounded_pairs_fallback_short_circuits(self, poisoned_kernels):
        # max_length routes through query(); still no kernel dispatch and
        # still the empty answer.
        engine = Engine(graph_abc())
        assert engine.pairs("[_, zz, _]", max_length=3) == frozenset()

    def test_nullable_star_still_dispatches(self):
        # zz* matches the empty word: every vertex pairs with itself, so
        # the short-circuit must NOT fire.
        engine = Engine(graph_abc())
        pairs = engine.pairs("[_, zz, _]*")
        assert ("u", "u") in pairs

    def test_pruned_dfa_served_from_cache(self):
        engine = Engine(graph_abc())
        first = engine.preflight(lconcat(sym("a"), sym("b")))
        again = engine.preflight(lconcat(sym("a"), sym("b")))
        assert first is again
        hits, misses, entries = engine.dfa_cache_info()
        assert hits >= 1 and misses == 1


class TestExplainDiagnostics:
    def test_satisfiable_query_diagnostics_section(self):
        engine = Engine(figure1_graph())
        text = engine.explain("[_, alpha, _] . [_, beta, _]*")
        assert "diagnostics:" in text
        assert "complexity: star-height 1" in text
        assert "satisfiable" in text

    def test_empty_query_diagnostics_and_routing(self):
        engine = Engine(figure1_graph())
        text = engine.explain("[_, nosuch, _]")
        assert "provably empty" in text
        assert "never occur in this graph" in text
        assert "pairs direction: n/a — pre-flight" in text

    def test_non_lowerable_expression_gets_structural_diagnostics(self):
        engine = Engine(figure1_graph())
        text = engine.explain("[i, alpha, _] . [_, nosuch, j]")
        assert "diagnostics:" in text
        assert "provably empty" in text


class TestLintQueryCli:
    def _graph_file(self, tmp_path):
        path = tmp_path / "g.csv"
        path.write_text("u,a,v\nv,b,w\n")
        return str(path)

    def test_satisfiable_exits_zero(self, tmp_path):
        out = io.StringIO()
        code = cli_main(["lint-query", self._graph_file(tmp_path),
                         "[_, a, _] . [_, b, _]"], out=out)
        assert code == 0
        assert "satisfiable" in out.getvalue()
        assert "pairs fast path" in out.getvalue()

    def test_provably_empty_exits_one(self, tmp_path):
        out = io.StringIO()
        code = cli_main(["lint-query", self._graph_file(tmp_path),
                         "[_, zz, _]"], out=out)
        assert code == 1
        assert "provably empty" in out.getvalue()

    def test_non_lowerable_reports_fallback_route(self, tmp_path):
        out = io.StringIO()
        code = cli_main(["lint-query", self._graph_file(tmp_path),
                         "[u, a, _] . [_, b, w]* . [u, a, v]"], out=out)
        assert code == 0
        assert "bounded automaton fallback" in out.getvalue()


# ----------------------------------------------------------------------
# Regression: label expressions must survive pickling (pool payloads)
# ----------------------------------------------------------------------

class TestLabelExprPickle:
    def test_roundtrip_every_node_type(self):
        expressions = [
            LabelEmpty(), LabelEpsilon(), sym("a"),
            lunion(sym("a"), LabelEpsilon()),
            lconcat(sym("a"), lstar(sym("b"))),
            lstar(lunion(sym("a"), lconcat(sym("b"), sym("c")))),
        ]
        for expression in expressions:
            clone = pickle.loads(pickle.dumps(expression))
            assert clone == expression
            assert hash(clone) == hash(expression)

    def test_restored_instances_stay_immutable(self):
        clone = pickle.loads(pickle.dumps(sym("a")))
        with pytest.raises(AttributeError):
            clone.label = "b"


# ----------------------------------------------------------------------
# Property: "provably empty" is sound on randomized graphs
# ----------------------------------------------------------------------

VERTICES = ["u", "v", "w", "x"]
GRAPH_LABELS = ["a", "b"]
QUERY_LABELS = ["a", "b", "zz"]  # 'zz' never occurs in any generated graph

edge_triples = st.tuples(
    st.sampled_from(VERTICES),
    st.sampled_from(GRAPH_LABELS),
    st.sampled_from(VERTICES),
)

random_graphs = st.lists(edge_triples, min_size=1, max_size=10).map(
    lambda triples: MultiRelationalGraph(triples))


def label_expressions(depth=2):
    base = st.one_of(
        st.sampled_from(QUERY_LABELS).map(sym),
        st.just(LabelEpsilon()),
        st.just(LabelEmpty()),
    )
    if depth == 0:
        return base
    sub = label_expressions(depth - 1)
    return st.one_of(
        base,
        st.builds(lambda a, b: lunion(a, b), sub, sub),
        st.builds(lambda a, b: lconcat(a, b), sub, sub),
        st.builds(lstar, sub),
    )


@settings(max_examples=120, deadline=None)
@given(random_graphs, label_expressions())
def test_provably_empty_implies_no_pairs(graph, expression):
    dfa = compile_rpq(expression, graph)
    diag = analyze_compiled_query(dfa, expression, graph.labels())
    reference = rpq_pairs_basic(graph, expression)
    if diag.empty:
        assert reference == frozenset(), \
            "analyzer claimed empty but reference found {}".format(reference)
    # And pruning never changes the language as the kernels see it: when
    # the query lowers to the unbounded fast path, the engine (pruned DFA)
    # agrees with the reference on every example.  (Non-lowerable shapes
    # route through the *bounded* automaton fallback, where parity with
    # the unbounded reference is out of scope here.)
    from repro.rpq.evaluation import lower_to_constrained_query
    engine = Engine(graph)
    compiled = engine.compile(_as_regex(expression))
    if lower_to_constrained_query(compiled) is not None:
        assert engine.pairs(compiled) == reference


def _as_regex(label_expression):
    """Lift a label expression into the engine's PathQL AST."""
    from repro.regex.ast import Atom as RAtom
    from repro.regex.ast import Empty as REmpty
    from repro.regex.ast import Epsilon as REpsilon
    from repro.regex.ast import Join as RJoin
    from repro.regex.ast import Star as RStar
    from repro.regex.ast import Union as RUnion
    from repro.rpq.labelregex import (
        LabelConcat,
        LabelStar,
        LabelSymbol,
        LabelUnion,
    )
    if isinstance(label_expression, LabelSymbol):
        return RAtom(None, label_expression.label, None)
    if isinstance(label_expression, LabelEpsilon):
        return REpsilon()
    if isinstance(label_expression, LabelEmpty):
        return REmpty()
    if isinstance(label_expression, LabelUnion):
        return RUnion(tuple(_as_regex(p) for p in label_expression.parts))
    if isinstance(label_expression, LabelConcat):
        return RJoin(tuple(_as_regex(p) for p in label_expression.parts))
    if isinstance(label_expression, LabelStar):
        return RStar(_as_regex(label_expression.inner))
    raise AssertionError(label_expression)
