"""Vertex-range sharding: partition structure, serial parity, shard files.

The pool-free half of the sharding test battery (its multiprocessing
sibling is ``tests/test_parallel.py``): range balancing, the per-shard CSR
slices against the global arrays, delta-overlay densification, the serial
executor's merge parity against the compact kernels and dict references
across shard counts {1, 2, 7}, merge determinism, and the shard-file
round trip through :mod:`repro.storage.snapshots`.
"""

import random

import pytest

from repro.algorithms.digraph import DiGraph
from repro.algorithms.pagerank import pagerank as digraph_pagerank
from repro.engine.parallel import ParallelExecutor
from repro.graph.compact import adjacency_snapshot
from repro.graph.generators import uniform_random
from repro.graph.sharding import (
    ShardedSnapshot,
    live_ids_in_range,
    row_degrees,
    shard_ranges,
    sharded_snapshot,
)
from repro.rpq import lconcat, lstar, lunion, sym
from repro.rpq.evaluation import compile_rpq, rpq_pairs, rpq_pairs_basic

SHARD_COUNTS = (1, 2, 7)

EXPRESSIONS = {
    "chain": lconcat(sym("a"), sym("b")),
    "star": lconcat(sym("a"), lstar(sym("b"))),
    "union": lunion(lconcat(sym("a"), sym("b")), lstar(sym("c"))),
}


def small_graph(seed=11, vertices=120, edges=900):
    return uniform_random(vertices, edges, labels=("a", "b", "c"), seed=seed)


def reference_digraph(graph):
    """The MRG collapsed to a DiGraph with multiplicity weights — the dict
    pagerank reference for the executor's label-blind kernel."""
    weights = {}
    for e in graph.edge_set():
        weights[(e.tail, e.head)] = weights.get((e.tail, e.head), 0) + 1
    digraph = DiGraph()
    for v in graph.vertices():
        digraph.add_vertex(v)
    for (tail, head), weight in weights.items():
        digraph.add_edge(tail, head, float(weight))
    return digraph


class TestShardRanges:

    def test_ranges_partition_the_slot_space(self):
        degrees = [3, 0, 5, 1, 1, 0, 9, 2, 2, 1]
        for count in (1, 2, 3, 7, 10, 25):
            ranges = shard_ranges(degrees, count)
            assert ranges[0][0] == 0
            assert ranges[-1][1] == len(degrees)
            for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
                assert hi == lo
            assert len(ranges) == min(max(count, 1), len(degrees))
            assert all(hi > lo for lo, hi in ranges)

    def test_ranges_balance_by_degree_not_count(self):
        # One huge hub up front: the first shard should own few vertices.
        degrees = [1000] + [1] * 99
        ranges = shard_ranges(degrees, 4)
        lo, hi = ranges[0]
        assert hi - lo < 10
        assert ranges[-1][1] == 100

    def test_degenerate_inputs(self):
        assert shard_ranges([], 4) == [(0, 0)]
        assert shard_ranges([5], 4) == [(0, 1)]
        assert shard_ranges([1, 2, 3], 1) == [(0, 3)]


class TestShardedSnapshot:

    @pytest.mark.parametrize("count", SHARD_COUNTS)
    def test_shard_rows_match_the_global_csr(self, count):
        graph = small_graph()
        base = adjacency_snapshot(graph)
        sharded = ShardedSnapshot.build(base, count)
        assert sharded.num_shards == min(count, base.num_vertices)
        assert sum(s.num_edges for s in sharded.shards) == base.num_edges
        for (lo, hi), shard in zip(sharded.ranges, sharded.shards):
            assert shard.num_vertices == base.num_vertices
            for label_id in range(base.num_labels):
                for v in range(base.num_vertices):
                    expected = list(base.out_neighbors(v, label_id)) \
                        if lo <= v < hi else []
                    assert list(shard.out_neighbors(v, label_id)) == expected
                    reverse = list(shard.in_neighbors(v, label_id))
                    assert sorted(reverse) == sorted(
                        t for t in base.in_neighbors(v, label_id)
                        if lo <= t < hi)

    def test_interning_tables_are_shared_references(self):
        graph = small_graph()
        base = adjacency_snapshot(graph)
        sharded = ShardedSnapshot.build(base, 3)
        for shard in sharded.shards:
            assert shard.vertex_ids is base.vertex_ids
            assert shard.label_of is base.label_of

    def test_shard_for_owns_every_range_boundary(self):
        graph = small_graph()
        sharded = sharded_snapshot(graph, 4)
        for index, (lo, hi) in enumerate(sharded.ranges):
            for v in (lo, hi - 1):
                assert sharded.shard_for(v) == index
        with pytest.raises(IndexError):
            sharded.shard_for(sharded.num_vertices)
        with pytest.raises(IndexError):
            sharded.shard_for(-1)

    def test_cache_invalidation_by_version_and_count(self):
        graph = small_graph()
        first = sharded_snapshot(graph, 2)
        assert sharded_snapshot(graph, 2) is first
        assert sharded_snapshot(graph, 3) is not first
        again = sharded_snapshot(graph, 2)
        graph.add_edge(0, "a", 1)
        assert sharded_snapshot(graph, 2) is not again

    def test_overlay_build_densifies_and_matches_fresh_graph(self):
        graph = small_graph(seed=7)
        adjacency_snapshot(graph)  # base build, journal starts here
        rng = random.Random(5)
        vertices = sorted(graph.vertices())
        for step in range(12):
            tail = rng.choice(vertices)
            head = rng.choice(vertices)
            if graph.has_edge(tail, "a", head):
                graph.remove_edge(tail, "a", head)
            else:
                graph.add_edge(tail, "a", head)
        graph.add_vertex("fresh")
        graph.add_edge("fresh", "a", vertices[0])
        view = adjacency_snapshot(graph)
        # The overlay (or freshly compacted base) must shard into the same
        # edge multiset a rebuilt snapshot yields.
        sharded = ShardedSnapshot.build(view, 3)

        def edge_triples(snapshot_view, vertex_of):
            triples = set()
            for (lo, hi), shard in zip(sharded.ranges, sharded.shards):
                for label_id, label in enumerate(shard.label_of):
                    for v in range(lo, hi):
                        for n in shard.out_neighbors(v, label_id):
                            triples.add((vertex_of[v], label, vertex_of[n]))
            return triples

        expected = {(e.tail, e.label, e.head) for e in graph.edge_set()}
        assert edge_triples(sharded, sharded.vertex_of) == expected

    def test_live_ids_in_range_skips_tombstones(self):
        graph = small_graph(seed=3)
        adjacency_snapshot(graph)
        victim = sorted(graph.vertices())[4]
        graph.remove_vertex(victim)
        view = adjacency_snapshot(graph)
        if getattr(view, "dead_vertices", None):
            dead = next(iter(view.dead_vertices))
            ids = list(live_ids_in_range(view, 0, view.num_slots))
            assert dead not in ids
            assert len(ids) == view.num_slots - len(view.dead_vertices)


class TestSerialExecutorParity:
    """processes=1: the fan-out tasks and merge, in-process.

    The single-core half of the differential battery: sharded evaluation
    across {1, 2, 7} shards must equal the unsharded compact kernels and
    the dict references, including under delta overlays.
    """

    @pytest.mark.parametrize("count", SHARD_COUNTS)
    def test_rpq_pairs_matches_kernels_and_reference(self, count):
        graph = small_graph(seed=21)
        executor = ParallelExecutor(graph, processes=1, num_shards=count)
        for expression in EXPRESSIONS.values():
            dfa = compile_rpq(expression, graph)
            sharded_answer = executor.rpq_pairs(dfa)
            assert sharded_answer == rpq_pairs(graph, expression)
            assert sharded_answer == rpq_pairs_basic(graph, expression)
        executor.close()

    @pytest.mark.parametrize("count", SHARD_COUNTS)
    def test_rpq_pairs_with_endpoint_filters(self, count):
        graph = small_graph(seed=23)
        vertices = sorted(graph.vertices())
        sources = frozenset(vertices[::5])
        targets = frozenset(vertices[::7])
        expression = EXPRESSIONS["star"]
        dfa = compile_rpq(expression, graph)
        executor = ParallelExecutor(graph, processes=1, num_shards=count)
        got = executor.rpq_pairs(dfa, sources=sources, targets=targets)
        want = rpq_pairs(graph, expression, sources=sources, targets=targets)
        assert got == want
        assert executor.rpq_pairs(dfa, sources=frozenset()) == frozenset()
        executor.close()

    @pytest.mark.parametrize("count", SHARD_COUNTS)
    def test_rpq_parity_under_delta_overlays(self, count):
        graph = small_graph(seed=29)
        expression = EXPRESSIONS["star"]
        adjacency_snapshot(graph)
        rng = random.Random(31)
        vertices = sorted(graph.vertices())
        executor = ParallelExecutor(graph, processes=1, num_shards=count)
        for step in range(8):
            tail, head = rng.choice(vertices), rng.choice(vertices)
            if graph.has_edge(tail, "b", head):
                graph.remove_edge(tail, "b", head)
            else:
                graph.add_edge(tail, "b", head)
            dfa = compile_rpq(expression, graph)
            assert executor.rpq_pairs(dfa) == \
                rpq_pairs_basic(graph, expression)
        executor.close()

    @pytest.mark.parametrize("count", SHARD_COUNTS)
    def test_pagerank_matches_dict_reference(self, count):
        graph = small_graph(seed=37)
        executor = ParallelExecutor(graph, processes=1, num_shards=count)
        ranks = executor.pagerank(tolerance=1.0e-12)
        reference = digraph_pagerank(reference_digraph(graph),
                                     tolerance=1.0e-12)
        assert set(ranks) == set(reference)
        assert max(abs(ranks[v] - reference[v]) for v in ranks) < 1.0e-8
        assert abs(sum(ranks.values()) - 1.0) < 1.0e-9
        executor.close()

    def test_pagerank_personalization_and_errors(self):
        graph = small_graph(seed=41)
        executor = ParallelExecutor(graph, processes=1, num_shards=2)
        favourite = sorted(graph.vertices())[0]
        ranks = executor.pagerank(personalization={favourite: 1.0},
                                  tolerance=1.0e-10)
        reference = digraph_pagerank(reference_digraph(graph),
                                     personalization={favourite: 1.0},
                                     tolerance=1.0e-10)
        assert max(abs(ranks[v] - reference[v]) for v in ranks) < 1.0e-8
        from repro.errors import AlgorithmError, ConvergenceError
        with pytest.raises(AlgorithmError):
            executor.pagerank(damping=1.5)
        with pytest.raises(AlgorithmError):
            executor.pagerank(personalization={favourite: 0.0})
        with pytest.raises(ConvergenceError):
            executor.pagerank(max_iterations=1, tolerance=0.0)
        executor.close()

    def test_bfs_batch_matches_digraph(self):
        from repro.errors import VertexNotFoundError
        rng = random.Random(43)
        digraph = DiGraph()
        for v in range(150):
            digraph.add_vertex(v)
        while digraph.size() < 1200:
            digraph.add_edge(rng.randrange(150), rng.randrange(150))
        sources = list(range(0, 150, 4))
        executor = ParallelExecutor(digraph, processes=1)
        got = executor.bfs_distances(sources)
        assert got == {s: digraph.bfs_distances(s) for s in sources}
        with pytest.raises(VertexNotFoundError):
            executor.bfs_distances([0, 999])  # same contract as the serial API
        executor.close()


class TestMergeDeterminism:

    def test_rpq_identical_across_shard_counts(self):
        graph = small_graph(seed=47)
        expression = EXPRESSIONS["union"]
        dfa = compile_rpq(expression, graph)
        answers = set()
        for count in SHARD_COUNTS:
            executor = ParallelExecutor(graph, processes=1, num_shards=count)
            answers.add(executor.rpq_pairs(dfa))
            executor.close()
        assert len(answers) == 1

    def test_pagerank_bitwise_stable_per_shard_count(self):
        graph = small_graph(seed=53)
        for count in SHARD_COUNTS:
            executor = ParallelExecutor(graph, processes=1, num_shards=count)
            first = executor.pagerank(tolerance=1.0e-12)
            second = executor.pagerank(tolerance=1.0e-12)
            assert first == second  # bit-identical, not just close
            executor.close()

    def test_pagerank_agrees_across_shard_counts(self):
        graph = small_graph(seed=59)
        results = []
        for count in SHARD_COUNTS:
            executor = ParallelExecutor(graph, processes=1, num_shards=count)
            results.append(executor.pagerank(tolerance=1.0e-12))
            executor.close()
        for other in results[1:]:
            assert max(abs(results[0][v] - other[v])
                       for v in results[0]) < 1.0e-9


class TestShardFiles:

    def test_round_trip_preserves_rows_and_manifest(self, tmp_path):
        from repro.storage.snapshots import (
            open_shard,
            open_sharded_snapshot,
            read_shard_manifest,
            write_sharded_snapshots,
        )
        graph = uniform_random(80, 500, labels=("a", "b"), seed=61)
        sharded = sharded_snapshot(graph, 3)
        directory = str(tmp_path / "shards")
        manifest = write_sharded_snapshots(directory, sharded, name="t")
        assert manifest["num_shards"] == sharded.num_shards
        assert read_shard_manifest(directory)["ranges"] == \
            [[lo, hi] for lo, hi in sharded.ranges]
        reopened = open_sharded_snapshot(directory, mmap=False)
        assert reopened.ranges == sharded.ranges
        assert reopened.num_edges == sharded.num_edges
        for (lo, hi), shard, original in zip(reopened.ranges,
                                             reopened.shards,
                                             sharded.shards):
            id_map = {v: i for i, v in enumerate(reopened.vertex_of)}
            remap = [id_map[v] for v in sharded.vertex_of]
            for label, label_id in original.label_ids.items():
                new_label_id = shard.label_ids[label]
                for v in range(lo, hi):
                    got = sorted(shard.out_neighbors(remap[v], new_label_id))
                    want = sorted(remap[n] for n in
                                  original.out_neighbors(v, label_id))
                    assert got == want
        single, (lo, hi) = open_shard(directory, 1, mmap=False)
        assert (lo, hi) == sharded.ranges[1]
        assert single.num_edges == sharded.shards[1].num_edges

    def test_open_rejects_bad_directories(self, tmp_path):
        from repro.errors import StorageError
        from repro.storage.snapshots import open_shard, read_shard_manifest
        with pytest.raises(StorageError):
            read_shard_manifest(str(tmp_path))
        from repro.storage.snapshots import write_sharded_snapshots
        graph = uniform_random(20, 60, labels=("a",), seed=67)
        directory = str(tmp_path / "s")
        write_sharded_snapshots(directory, sharded_snapshot(graph, 2))
        with pytest.raises(StorageError):
            open_shard(directory, 9)

    def test_file_cache_distinguishes_shard_layouts(self, tmp_path):
        """Same dir + version, different shard count: no stale row slices.

        The worker-side file cache must key on the shard layout too — a
        2-shard ``shard-0001`` owns different rows than a 4-shard one, so
        serving the cached 2-shard file to a 4-shard scatter task would
        silently zero part of the pagerank mass (regression test).
        """
        graph = uniform_random(90, 600, labels=("a", "b"), seed=83)
        directory = str(tmp_path / "shards")
        two = ParallelExecutor(graph, processes=1, num_shards=2,
                               shard_dir=directory)
        ranks_two = two.pagerank(tolerance=1.0e-12)
        four = ParallelExecutor(graph, processes=1, num_shards=4,
                                shard_dir=directory)
        ranks_four = four.pagerank(tolerance=1.0e-12)
        assert max(abs(ranks_two[v] - ranks_four[v])
                   for v in ranks_two) < 1.0e-9
        inline = ParallelExecutor(graph, processes=1, num_shards=4)
        assert ranks_four == inline.pagerank(tolerance=1.0e-12)
        two.close()
        four.close()
        inline.close()

    def test_file_mode_clamps_shard_count_to_vertices(self, tmp_path):
        """num_shards > |V|: the manifest records the clamped layout and
        tasks must ask for that, not the requested count (regression)."""
        graph = uniform_random(3, 4, labels=("a",), seed=89)
        directory = str(tmp_path / "tiny")
        executor = ParallelExecutor(graph, processes=4, num_shards=4,
                                    min_edges=0, shard_dir=directory)
        expression = lstar(sym("a"))
        dfa = compile_rpq(expression, graph)
        assert executor.rpq_pairs(dfa) == rpq_pairs(graph, expression)
        ranks = executor.pagerank(tolerance=1.0e-10)
        assert abs(sum(ranks.values()) - 1.0) < 1.0e-9
        executor.close()

    def test_current_shard_directory_is_adopted_not_rewritten(self, tmp_path):
        import os
        from repro.storage.snapshots import write_sharded_snapshots
        graph = uniform_random(60, 400, labels=("a", "b"), seed=97)
        directory = str(tmp_path / "pre")
        write_sharded_snapshots(directory, sharded_snapshot(graph, 2))
        stamps = {f: os.path.getmtime(os.path.join(directory, f))
                  for f in os.listdir(directory)}
        executor = ParallelExecutor(graph, processes=1, num_shards=2,
                                    shard_dir=directory)
        dfa = compile_rpq(lstar(sym("a")), graph)
        executor.rpq_pairs(dfa)
        after = {f: os.path.getmtime(os.path.join(directory, f))
                 for f in os.listdir(directory)}
        assert after == stamps  # adopted as-is, no refold/rewrite
        executor.close()

    def test_file_backed_rpq_answers_match(self, tmp_path):
        from repro.graph.compact import rpq_pairs_on_snapshot
        from repro.storage.snapshots import (
            open_adjacency_snapshot,
            read_shard_manifest,
            write_sharded_snapshots,
        )
        import os
        graph = uniform_random(80, 500, labels=("a", "b"), seed=71)
        expression = lconcat(sym("a"), lstar(sym("b")))
        dfa = compile_rpq(expression, graph)
        directory = str(tmp_path / "shards")
        write_sharded_snapshots(directory, sharded_snapshot(graph, 2))
        manifest = read_shard_manifest(directory)
        full, _ = open_adjacency_snapshot(
            os.path.join(directory, manifest["full"]))
        assert rpq_pairs_on_snapshot(full, dfa) == \
            rpq_pairs(graph, expression)
