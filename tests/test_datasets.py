"""Dataset sanity tests: the scenario graphs hold their documented invariants."""

import pytest

from repro.core.fluent import Traversal
from repro.datasets import scholarly_graph, software_community, travel_network


class TestSoftwareCommunity:
    def test_kinds_partition(self):
        g = software_community()
        kinds = {g.vertex_properties(v)["kind"] for v in g.vertices()}
        assert kinds == {"person", "software"}

    def test_every_project_has_a_creator(self):
        g = software_community()
        for v in g.vertices():
            if g.vertex_properties(v)["kind"] == "software":
                assert g.in_degree(v, "created") >= 1

    def test_dependencies_form_a_dag(self):
        g = software_community()
        from repro.core.traversal import complete_traversal
        deps = g.subgraph_by_labels(["depends_on"])
        if deps.size() == 0:
            pytest.skip("seed produced no dependencies")
        # A DAG has no walks longer than its vertex count.
        order = deps.order()
        from repro.core.traversal import labeled_traversal
        walks = labeled_traversal(deps, [{"depends_on"}] * order)
        assert len(walks) == 0

    def test_friend_of_friend_is_nonempty(self):
        g = software_community()
        t = Traversal(g).start("person0").out("knows").out("knows")
        assert t.count() > 0

    def test_deterministic(self):
        assert software_community(seed=7) == software_community(seed=7)


class TestScholarly:
    def test_citations_point_backward_in_time(self):
        g = scholarly_graph()
        for e in g.match(label="cites"):
            assert g.vertex_properties(e.tail)["year"] > \
                g.vertex_properties(e.head)["year"]

    def test_every_paper_published_once(self):
        g = scholarly_graph()
        for v in g.vertices():
            if g.vertex_properties(v).get("kind") == "paper":
                assert g.out_degree(v, "published_in") == 1

    def test_every_paper_has_authors(self):
        g = scholarly_graph()
        for v in g.vertices():
            if g.vertex_properties(v).get("kind") == "paper":
                assert 1 <= g.in_degree(v, "authored") <= 4


class TestTravel:
    def test_flights_are_hub_and_spoke(self):
        g = travel_network()
        for e in g.match(label="flight"):
            assert "city0" in (e.tail, e.head)

    def test_edges_carry_costs(self):
        g = travel_network()
        for e in g.edge_set():
            cost = g.edge_properties(e.tail, e.label, e.head)["cost"]
            assert cost > 0

    def test_train_corridor_connects_neighbors(self):
        g = travel_network(num_cities=6)
        assert g.has_edge("city2", "train", "city3")
        assert g.has_edge("city3", "train", "city2")
