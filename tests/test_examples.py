"""Every example script must run cleanly — examples are part of the API."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def example_scripts():
    return sorted(
        name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py"))


@pytest.mark.parametrize("script", example_scripts())
def test_example_runs_cleanly(script):
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True, text=True, timeout=120)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_expected_example_set_present():
    scripts = example_scripts()
    for required in ("quickstart.py", "paper_walkthrough.py",
                     "social_network.py", "knowledge_graph.py",
                     "travel_planner.py", "weighted_and_patterns.py"):
        assert required in scripts


def test_paper_walkthrough_reports_success():
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "paper_walkthrough.py")],
        capture_output=True, text=True, timeout=120)
    assert "All paper artifacts reproduced." in completed.stdout
