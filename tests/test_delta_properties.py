"""Property-based delta-overlay invariants (hypothesis).

The incremental snapshot contract: after **any** mutation sequence, with
snapshots touched at arbitrary points along the way (so deltas accumulate
over whatever base happened to be cached), ``base CSR + delta`` must answer
exactly like a from-scratch rebuild.  Compaction-threshold crossing and the
journal-cap rebuild fallback are exercised explicitly with deterministic
sequences, since they are boundary behaviors a random walk may miss.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.digraph import DiGraph
from repro.graph import compact
from repro.graph.compact import (
    HAVE_NUMPY,
    CompactAdjacency,
    CompactDiGraph,
    DeltaAdjacency,
    adjacency_snapshot,
    digraph_snapshot,
)
from repro.graph.graph import MultiRelationalGraph

VERTICES = list(range(8)) + ["x", "y"]
LABELS = ["a", "b"]

vertex = st.sampled_from(VERTICES)
label = st.sampled_from(LABELS)

mrg_ops = st.lists(
    st.one_of(
        st.tuples(st.just("+e"), vertex, label, vertex),
        st.tuples(st.just("-e"), vertex, label, vertex),
        st.tuples(st.just("+v"), vertex),
        st.tuples(st.just("-v"), vertex),
    ),
    min_size=1, max_size=40,
)

digraph_ops = st.lists(
    st.one_of(
        st.tuples(st.just("+e"), vertex, vertex,
                  st.sampled_from([0.5, 1.0, 2.0])),
        st.tuples(st.just("-e"), vertex, vertex),
        st.tuples(st.just("+v"), vertex),
    ),
    min_size=1, max_size=40,
)


def apply_mrg_op(graph, op):
    kind = op[0]
    if kind == "+e":
        graph.add_edge(op[1], op[2], op[3])
    elif kind == "-e":
        if graph.has_edge(op[1], op[2], op[3]):
            graph.remove_edge(op[1], op[2], op[3])
    elif kind == "+v":
        graph.add_vertex(op[1])
    elif kind == "-v":
        if graph.has_vertex(op[1]):
            graph.remove_vertex(op[1])


def apply_digraph_op(graph, op):
    kind = op[0]
    if kind == "+e":
        graph.add_edge(op[1], op[2], op[3])
    elif kind == "-e":
        if graph.has_edge(op[1], op[2]):
            graph.remove_edge(op[1], op[2])
    elif kind == "+v":
        graph.add_vertex(op[1])


def assert_matches_rebuild(graph):
    """The cached (possibly overlaid) snapshot == a from-scratch rebuild."""
    snapshot = adjacency_snapshot(graph)
    rebuilt = CompactAdjacency.build(graph)
    assert snapshot.num_edges == rebuilt.num_edges == graph.size()
    assert set(snapshot.vertex_ids) == set(graph.vertices())
    assert set(snapshot.label_ids) >= set(graph.labels())
    live = {snapshot.vertex_of[i] for i in snapshot.live_vertex_ids()}
    assert live == set(graph.vertices())
    for v in graph.vertices():
        vid = snapshot.vertex_ids[v]
        for l in graph.labels():
            lid = snapshot.label_ids[l]
            out = {snapshot.vertex_of[i] for i in snapshot.out_neighbors(vid, lid)}
            assert out == set(graph.successors(v, l))
            into = {snapshot.vertex_of[i] for i in snapshot.in_neighbors(vid, lid)}
            assert into == set(graph.predecessors(v, l))


class TestAdjacencyDeltaInvariants:
    @settings(max_examples=60, deadline=None)
    @given(ops=mrg_ops, stride=st.integers(min_value=1, max_value=4))
    def test_overlay_equals_rebuild_after_any_mutation_sequence(self, ops, stride):
        graph = MultiRelationalGraph([(0, "a", 1), (1, "b", 2), (2, "a", 0)])
        adjacency_snapshot(graph)  # pin a base so deltas accumulate over it
        for position, op in enumerate(ops):
            apply_mrg_op(graph, op)
            if position % stride == 0:
                adjacency_snapshot(graph)  # interleaved touches extend the overlay
        assert_matches_rebuild(graph)

    @settings(max_examples=30, deadline=None)
    @given(ops=mrg_ops)
    def test_untouched_journal_replays_in_one_batch(self, ops):
        graph = MultiRelationalGraph([(0, "a", 1), (1, "b", 2)])
        adjacency_snapshot(graph)
        for op in ops:  # no snapshot touches: one big replay at the end
            apply_mrg_op(graph, op)
        assert_matches_rebuild(graph)


class TestCompactionThreshold:
    def test_crossing_folds_overlay_into_fresh_base(self, monkeypatch):
        monkeypatch.setattr(compact, "COMPACTION_MIN_OPS", 4)
        monkeypatch.setattr(compact, "COMPACTION_FRACTION", 0.0)
        graph = MultiRelationalGraph([(0, "a", 1), (1, "a", 2)])
        assert isinstance(adjacency_snapshot(graph), CompactAdjacency)
        seen = []
        for i in range(12):
            graph.add_edge(("n", i), "a", ("n", i + 1))
            snapshot = adjacency_snapshot(graph)
            seen.append(type(snapshot).__name__)
            assert_matches_rebuild(graph)
        # Both sides of the threshold were traversed, repeatedly.
        assert "DeltaAdjacency" in seen
        assert seen.count("CompactAdjacency") >= 2
        # Compaction consumed the journal up to the current version.
        assert graph.journal_since(graph.version()) == []

    def test_default_threshold_scales_with_base_edges(self):
        assert not compact.compaction_due(64, 0)
        assert compact.compaction_due(65, 0)
        # A 10k-edge base tolerates a quarter of its size in deltas.
        assert not compact.compaction_due(2500, 10000)
        assert compact.compaction_due(2501, 10000)

    def test_journal_cap_falls_back_to_full_rebuild(self, monkeypatch):
        monkeypatch.setattr(MultiRelationalGraph, "_JOURNAL_CAP", 8)
        graph = MultiRelationalGraph([(0, "a", 1)])
        base = adjacency_snapshot(graph)
        for i in range(20):  # blows past the cap: journal is dropped wholesale
            graph.add_edge(i, "b", i + 1)
        assert graph.journal_since(base.version) is None
        snapshot = adjacency_snapshot(graph)
        assert isinstance(snapshot, CompactAdjacency)  # rebuilt, not patched
        assert_matches_rebuild(graph)


@pytest.mark.skipif(not HAVE_NUMPY, reason="compact DiGraph kernels need numpy")
class TestDiGraphDeltaInvariants:
    @settings(max_examples=60, deadline=None)
    @given(ops=digraph_ops, stride=st.integers(min_value=1, max_value=4))
    def test_patched_arrays_equal_rebuild(self, ops, stride):
        graph = DiGraph([(0, 1), (1, 2), (2, 0)])
        digraph_snapshot(graph)
        for position, op in enumerate(ops):
            apply_digraph_op(graph, op)
            if position % stride == 0:
                digraph_snapshot(graph)
        snapshot = digraph_snapshot(graph)
        rebuilt = CompactDiGraph(graph)
        assert snapshot.version == graph.version()
        got = {(snapshot.vertex_of[t], snapshot.vertex_of[h]): w
               for t, h, w in zip(snapshot.tails.tolist(),
                                  snapshot.heads.tolist(),
                                  snapshot.weights.tolist())}
        want = {(t, h): w for t, h, w in graph.edges()}
        assert got == want
        assert len(rebuilt.tails) == len(snapshot.tails)
        for source in graph.vertices():
            assert snapshot.bfs_distances(source) == \
                graph._bfs_distances_dict(source)

    def test_compaction_promotes_materialized_base(self, monkeypatch):
        monkeypatch.setattr(compact, "COMPACTION_MIN_OPS", 3)
        monkeypatch.setattr(compact, "COMPACTION_FRACTION", 0.0)
        graph = DiGraph([(0, 1), (1, 2)])
        first = digraph_snapshot(graph)
        cache = getattr(graph, compact._CACHE_ATTR)
        assert cache.base is first
        base_ids = {id(cache.base)}
        for i in range(10):
            graph.add_edge(i, i + 10)
            snapshot = digraph_snapshot(graph)
            assert snapshot.version == graph.version()
            base_ids.add(id(cache.base))
            want = {(t, h) for t, h, _ in graph.edges()}
            got = {(snapshot.vertex_of[t], snapshot.vertex_of[h])
                   for t, h in zip(snapshot.tails.tolist(),
                                   snapshot.heads.tolist())}
            assert got == want
        assert len(base_ids) > 1  # at least one promotion happened
        assert cache.delta_ops <= 3  # deltas were reset by compaction
