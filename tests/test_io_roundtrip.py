"""Round-trip property suite: serialization formats and WAL recovery.

Hypothesis-generated graphs — including empty graphs, isolated vertices,
adversarial identifiers (commas, quotes, newlines, the reserved
``#vertex`` marker itself) and vertex/edge properties — must survive each
format that claims to carry them:

* triple CSV: vertex set + edge set (properties are lossy by design),
* JSON: everything (structure, properties, name),
* GraphML subset: stringified structure.

Plus the write-ahead log's crash-consistency property: truncating the log
at *any* byte offset recovers exactly the records that were fully framed
before that offset — never a torn or reordered suffix.
"""

import io
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SerializationError
from repro.graph import io as graph_io
from repro.graph.graph import MultiRelationalGraph
from repro.storage.wal import WriteAheadLog, scan_wal

# Deliberately hostile identifier alphabet: CSV delimiters, quoting,
# newlines, unicode, leading '#' (the vertex-marker prefix).
IDENT = st.text(alphabet='ab,"\n# é', min_size=1, max_size=6)
LABEL = st.sampled_from(["knows", "created", 'we,"ird', "#vertex"])
PROP_VALUE = st.one_of(
    st.integers(min_value=-2**31, max_value=2**31),
    st.text(max_size=8),
    st.booleans(),
    st.none(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)
# Keys are prefixed so they can never collide with add_edge/add_vertex
# keyword parameters (tail/label/head/strict) when splatted back in.
PROPS = st.dictionaries(
    st.text(min_size=1, max_size=4).map(lambda k: "p_" + k), PROP_VALUE,
    max_size=3)


@st.composite
def graphs(draw, with_properties=False):
    g = MultiRelationalGraph(name=draw(st.text(alphabet="xyz-", max_size=6)))
    for vertex in draw(st.lists(IDENT, max_size=6, unique=True)):
        g.add_vertex(vertex, **(draw(PROPS) if with_properties else {}))
    for tail, label, head in draw(
            st.lists(st.tuples(IDENT, LABEL, IDENT), max_size=12)):
        g.add_edge(tail, label, head,
                   **(draw(PROPS) if with_properties else {}))
    return g


class TestTripleRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(graphs())
    def test_structure_survives(self, g):
        back = graph_io.from_triple_text(graph_io.to_triple_text(g))
        assert back.vertices() == g.vertices()
        assert back.edge_set() == g.edge_set()
        assert back.labels() == g.labels()

    def test_isolated_vertices_survive(self):
        g = MultiRelationalGraph()
        g.add_vertex("lonely")
        g.add_edge("a", "r", "b")
        back = graph_io.from_triple_text(graph_io.to_triple_text(g))
        assert back.vertices() == frozenset({"lonely", "a", "b"})

    def test_vertex_named_like_the_marker_survives(self):
        g = MultiRelationalGraph()
        g.add_vertex("#vertex")
        back = graph_io.from_triple_text(graph_io.to_triple_text(g))
        assert back.vertices() == frozenset({"#vertex"})

    def test_empty_graph(self):
        back = graph_io.from_triple_text(
            graph_io.to_triple_text(MultiRelationalGraph()))
        assert back.order() == 0 and back.size() == 0

    @pytest.mark.parametrize("bad_graph", [
        MultiRelationalGraph([(1, "r", 2)]),
        MultiRelationalGraph([("a", 7, "b")]),
        MultiRelationalGraph([(("t", "uple"), "r", "b")]),
    ])
    def test_non_string_ids_rejected_toward_json(self, bad_graph):
        with pytest.raises(SerializationError) as info:
            graph_io.to_triple_text(bad_graph)
        assert "write_json" in str(info.value)

    def test_non_string_isolated_vertex_rejected(self):
        g = MultiRelationalGraph()
        g.add_vertex(42)
        with pytest.raises(SerializationError) as info:
            graph_io.to_triple_text(g)
        assert "write_json" in str(info.value)


class TestJsonRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(graphs(with_properties=True))
    def test_everything_survives(self, g):
        back = graph_io.from_json_dict(graph_io.to_json_dict(g))
        assert back == g
        assert back.name == g.name
        for v in g.vertices():
            assert back.vertex_properties(v) == g.vertex_properties(v)
        for e in g.edge_set():
            assert back.edge_properties(e.tail, e.label, e.head) == \
                g.edge_properties(e.tail, e.label, e.head)

    def test_empty_graph(self):
        back = graph_io.from_json_dict(
            graph_io.to_json_dict(MultiRelationalGraph()))
        assert back.order() == 0 and back.size() == 0


class TestGraphmlRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(graphs())
    def test_stringified_structure_survives(self, g):
        buffer = io.StringIO()
        graph_io.write_graphml(g, buffer)
        back = graph_io.read_graphml(io.StringIO(buffer.getvalue()))
        assert back.vertices() == frozenset(str(v) for v in g.vertices())
        assert {(e.tail, e.label, e.head) for e in back.edge_set()} == \
            {(str(e.tail), str(e.label), str(e.head)) for e in g.edge_set()}


ENTRY_ARG = st.one_of(st.text(max_size=6), st.integers(), st.booleans())
ENTRIES = st.lists(
    st.tuples(st.integers(min_value=0), st.sampled_from(["+v", "-v", "+e", "-e"]))
    .flatmap(lambda head: st.lists(ENTRY_ARG, min_size=1, max_size=3)
             .map(lambda args: head + tuple(args))),
    max_size=12)


class TestWalTruncationRecovery:
    """Truncate the log anywhere: replay equals the durable prefix."""

    @settings(max_examples=40, deadline=None)
    @given(entries=ENTRIES, data=st.data())
    def test_any_cut_recovers_a_prefix(self, entries, data, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("wal") / "wal.log")
        boundaries = []
        with WriteAheadLog(path, sync="none") as wal:
            for entry in entries:
                wal.append(entry)
                wal.flush()
                boundaries.append(wal.tell())
        full, _, torn = scan_wal(path)
        assert full == entries and not torn
        size = os.path.getsize(path)
        cut = data.draw(st.integers(min_value=8, max_value=size),
                        label="cut offset")
        with open(path, "r+b") as stream:
            stream.truncate(cut)
        recovered, durable_end, _ = scan_wal(path)
        expected = sum(1 for b in boundaries if b <= cut)
        assert recovered == entries[:expected]
        assert durable_end <= cut

    def test_truncated_tail_repaired_on_reopen(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path, sync="none") as wal:
            for i in range(5):
                wal.append((i, "+v", "v{}".format(i)))
        with open(path, "r+b") as stream:
            stream.truncate(os.path.getsize(path) - 3)
        recovered, _, torn = scan_wal(path)
        assert torn and recovered == [(i, "+v", "v{}".format(i))
                                      for i in range(4)]
        with WriteAheadLog(path, sync="none") as wal:
            wal.append((9, "+v", "fresh"))
        final, _, torn = scan_wal(path)
        assert not torn
        assert final == recovered + [(9, "+v", "fresh")]
