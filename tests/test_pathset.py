"""Unit tests for PathSet: union, concatenative join, concatenative product."""

import pytest

from repro.core.edge import Edge
from repro.core.path import EPSILON, Path
from repro.core.pathset import EMPTY, EPSILON_SET, PathSet


class TestConstruction:
    def test_from_triples(self):
        s = PathSet([("i", "a", "j"), ("j", "b", "k")])
        assert len(s) == 2

    def test_from_edges(self):
        s = PathSet.from_edges([Edge("i", "a", "j")])
        assert Path.single("i", "a", "j") in s

    def test_from_paths(self):
        p = Path.of(("i", "a", "j"), ("j", "b", "k"))
        s = PathSet([p])
        assert p in s

    def test_deduplication(self):
        s = PathSet([("i", "a", "j"), ("i", "a", "j")])
        assert len(s) == 1

    def test_of_varargs(self):
        assert len(PathSet.of(("i", "a", "j"), ("j", "a", "k"))) == 2

    def test_empty_and_epsilon_constants(self):
        assert len(EMPTY) == 0
        assert len(EPSILON_SET) == 1
        assert EPSILON in EPSILON_SET

    def test_iteration_is_deterministic(self):
        s = PathSet([("b", "x", "c"), ("a", "x", "b"), ("c", "x", "d")])
        assert list(s) == list(s)

    def test_contains_accepts_triples(self):
        s = PathSet([("i", "a", "j")])
        assert ("i", "a", "j") in s

    def test_equality_with_plain_set(self):
        s = PathSet([("i", "a", "j")])
        assert s == {Path.single("i", "a", "j")}


class TestSetOperations:
    def test_union(self):
        a = PathSet([("i", "a", "j")])
        b = PathSet([("j", "b", "k")])
        assert len(a | b) == 2

    def test_union_identity(self):
        a = PathSet([("i", "a", "j")])
        assert a | EMPTY == a

    def test_intersection(self):
        a = PathSet([("i", "a", "j"), ("j", "b", "k")])
        b = PathSet([("j", "b", "k"), ("x", "y", "z")])
        assert a & b == PathSet([("j", "b", "k")])

    def test_difference(self):
        a = PathSet([("i", "a", "j"), ("j", "b", "k")])
        b = PathSet([("j", "b", "k")])
        assert a - b == PathSet([("i", "a", "j")])

    def test_subset(self):
        a = PathSet([("i", "a", "j")])
        b = PathSet([("i", "a", "j"), ("j", "b", "k")])
        assert a <= b
        assert a < b
        assert b >= a
        assert a.issubset(b)


class TestConcatenativeJoin:
    def test_joins_only_adjacent_pairs(self):
        a = PathSet([("i", "a", "j")])
        b = PathSet([("j", "b", "k"), ("x", "b", "y")])
        joined = a @ b
        assert joined == PathSet([Path.of(("i", "a", "j"), ("j", "b", "k"))])

    def test_empty_operand_annihilates(self):
        a = PathSet([("i", "a", "j")])
        assert a @ EMPTY == EMPTY
        assert EMPTY @ a == EMPTY

    def test_epsilon_set_is_join_identity(self):
        """The paper's definition: a = eps or b = eps always joins."""
        a = PathSet([("i", "a", "j"), ("x", "b", "y")])
        assert EPSILON_SET @ a == a
        assert a @ EPSILON_SET == a

    def test_epsilon_member_passes_through(self):
        a = PathSet([("i", "a", "j")])
        b = PathSet([EPSILON, Path.single("j", "b", "k")])
        joined = a @ b
        # (i,a,j) o eps = (i,a,j) and (i,a,j) o (j,b,k).
        assert Path.single("i", "a", "j") in joined
        assert Path.of(("i", "a", "j"), ("j", "b", "k")) in joined
        assert len(joined) == 2

    def test_join_is_associative(self):
        a = PathSet([("1", "x", "2")])
        b = PathSet([("2", "y", "3"), ("2", "y", "4")])
        c = PathSet([("3", "z", "5"), ("4", "z", "5")])
        assert (a @ b) @ c == a @ (b @ c)

    def test_join_not_commutative(self):
        a = PathSet([("1", "x", "2")])
        b = PathSet([("2", "y", "3")])
        assert a @ b != b @ a

    def test_join_matches_naive_scan(self):
        a = PathSet([("i", "a", "j"), ("j", "a", "k"), ("k", "a", "i")])
        b = PathSet([("j", "b", "j"), ("k", "b", "i"), ("i", "b", "k")])
        assert a.join(b) == a.join_naive(b)

    def test_join_of_multi_edge_paths(self):
        a = PathSet([Path.of(("1", "x", "2"), ("2", "y", "3"))])
        b = PathSet([Path.of(("3", "z", "4"), ("4", "w", "5"))])
        joined = a @ b
        assert len(joined) == 1
        only = next(iter(joined))
        assert len(only) == 4
        assert only.tail == "1"
        assert only.head == "5"

    def test_join_power_zero_is_epsilon_set(self):
        a = PathSet([("i", "a", "j")])
        assert a ** 0 == EPSILON_SET

    def test_join_power_one_is_self(self):
        a = PathSet([("i", "a", "j")])
        assert a ** 1 == a

    def test_join_power_counts_walks(self, triangle_cycle):
        """On a directed 3-cycle there are exactly 3 walks of each length."""
        e = triangle_cycle.all_paths()
        for n in (1, 2, 3, 4):
            assert len(e ** n) == 3

    def test_join_power_negative_rejected(self):
        with pytest.raises(ValueError):
            PathSet([("i", "a", "j")]) ** -1


class TestConcatenativeProduct:
    def test_product_keeps_disjoint_pairs(self):
        a = PathSet([("i", "a", "j")])
        b = PathSet([("x", "b", "y")])
        product = a * b
        assert len(product) == 1
        only = next(iter(product))
        assert not only.is_joint

    def test_product_cardinality_is_pairwise(self):
        a = PathSet([("i", "a", "j"), ("j", "a", "k")])
        b = PathSet([("x", "b", "y"), ("j", "b", "m"), ("k", "b", "n")])
        assert len(a * b) == 6

    def test_join_subset_of_product(self):
        """Footnote 7: R join Q is a subset of R product Q."""
        a = PathSet([("i", "a", "j"), ("j", "a", "k")])
        b = PathSet([("j", "b", "m"), ("x", "b", "y")])
        assert (a @ b) <= (a * b)

    def test_product_with_epsilon_set(self):
        a = PathSet([("i", "a", "j")])
        assert a * EPSILON_SET == a
        assert EPSILON_SET * a == a

    def test_product_with_int_is_an_error(self):
        with pytest.raises(TypeError):
            PathSet([("i", "a", "j")]) * 3


class TestClosure:
    def test_closure_includes_epsilon(self):
        a = PathSet([("i", "a", "j")])
        assert EPSILON in a.closure(3)

    def test_closure_on_acyclic_edge(self):
        a = PathSet([("i", "a", "j")])
        closed = a.closure(5)
        assert closed == PathSet([EPSILON, Path.single("i", "a", "j")])

    def test_closure_on_loop_is_length_bounded(self):
        loop = PathSet([("v", "a", "v")])
        closed = loop.closure(3)
        assert len(closed) == 4  # eps + lengths 1..3

    def test_closure_on_cycle(self, triangle_cycle):
        e = triangle_cycle.all_paths()
        closed = e.closure(4)
        # eps + 3 walks per length 1..4.
        assert len(closed) == 1 + 3 * 4

    def test_closure_negative_rejected(self):
        with pytest.raises(ValueError):
            PathSet([("i", "a", "j")]).closure(-1)


class TestRestrictions:
    def test_starting_in(self):
        s = PathSet([("i", "a", "j"), ("k", "a", "j")])
        assert s.starting_in({"i"}) == PathSet([("i", "a", "j")])

    def test_ending_in(self):
        s = PathSet([("i", "a", "j"), ("i", "a", "k")])
        assert s.ending_in({"k"}) == PathSet([("i", "a", "k")])

    def test_with_labels_everywhere(self):
        s = PathSet([
            Path.of(("1", "a", "2"), ("2", "a", "3")),
            Path.of(("1", "a", "2"), ("2", "b", "3")),
        ])
        assert len(s.with_labels({"a"})) == 1

    def test_with_labels_at_position(self):
        s = PathSet([
            Path.of(("1", "a", "2"), ("2", "b", "3")),
            Path.of(("1", "b", "2"), ("2", "b", "3")),
        ])
        assert len(s.with_labels({"a"}, position=1)) == 1
        assert len(s.with_labels({"b"}, position=2)) == 2

    def test_filter(self):
        s = PathSet([("i", "a", "j"), ("i", "a", "i")])
        loops = s.filter(lambda p: p.tail == p.head)
        assert loops == PathSet([("i", "a", "i")])

    def test_joint_filter(self):
        s = PathSet([
            Path.of(("1", "a", "2"), ("2", "a", "3")),
            Path.of(("1", "a", "2"), ("9", "a", "3")),
        ])
        assert len(s.joint()) == 1

    def test_of_length(self):
        s = PathSet([
            Path.single("i", "a", "j"),
            Path.of(("i", "a", "j"), ("j", "a", "k")),
        ])
        assert len(s.of_length(1)) == 1
        assert len(s.of_length(2)) == 1
        assert len(s.of_length(3)) == 0

    def test_map(self):
        s = PathSet([("i", "a", "j")])
        reversed_set = s.map(lambda p: p.reversed())
        assert Path.single("j", "a", "i") in reversed_set


class TestProjectionHelpers:
    def test_tails_heads(self):
        s = PathSet([("i", "a", "j"), ("k", "a", "m")])
        assert s.tails() == frozenset({"i", "k"})
        assert s.heads() == frozenset({"j", "m"})

    def test_endpoint_pairs(self):
        s = PathSet([Path.of(("i", "a", "j"), ("j", "b", "k"))])
        assert s.endpoint_pairs() == frozenset({("i", "k")})

    def test_label_paths(self):
        s = PathSet([
            Path.of(("i", "a", "j"), ("j", "b", "k")),
            Path.single("i", "c", "j"),
        ])
        assert s.label_paths() == frozenset({("a", "b"), ("c",)})

    def test_epsilon_excluded_from_endpoints(self):
        s = PathSet([EPSILON, Path.single("i", "a", "j")])
        assert s.tails() == frozenset({"i"})
        assert s.endpoint_pairs() == frozenset({("i", "j")})

    def test_max_length(self):
        s = PathSet([EPSILON, Path.of(("i", "a", "j"), ("j", "a", "k"))])
        assert s.max_length() == 2
        assert EMPTY.max_length() == 0
