"""reprorace + runtime-witness suite: static rules, suppressions, CLI,
and the dynamic lock-order / leak-registry semantics.

The static half mirrors ``test_reprolint.py``: each fixture writes a
minimal offending module to a temp tree shaped the way the rule expects
(``storage/`` membership for must-close) and asserts the violation
surfaces with the right rule and line, with negatives proving the rule
does not over-fire.  The dynamic half drives :mod:`repro.concurrency`
directly — including a two-thread, Event-sequenced deadlock fixture the
armed witness must catch *deterministically* (the violation is raised at
the cycle-closing acquire, before it could block).  The final tests hold
the CI gates: ``src/repro`` analyzes clean under every rule.
"""

import json
import os
import subprocess
import sys
import threading

import pytest

from repro.analysis.concurrency import (
    RACE_RULES,
    analyze_paths,
    main as race_main,
)
from repro.concurrency import (
    LeakRegistry,
    LockWitness,
    OrderedLock,
    installed_tracker,
    installed_witness,
    ordered_lock,
    ordered_rlock,
    release_resource,
    track_resource,
    tracking_scope,
    witness_scope,
)
from repro.errors import LockOrderViolation, ResourceLeakError

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src", "repro")


def _analyze_snippet(tmp_path, source, name="mod.py", subdir=""):
    directory = tmp_path / subdir if subdir else tmp_path
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / name
    path.write_text(source)
    return analyze_paths([str(path)])


def _rules(violations):
    return [violation.rule for violation in violations]


COUNTER = (
    "import threading\n"
    "class Counter:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._count = 0\n"          # construction-time: exempt
    "    def bump(self):\n"
    "        with self._lock:\n"
    "            self._count += 1\n"     # teaches inference: guarded
    "    def reset(self):\n"
    "        self._count = 0\n"          # line 10: the race
)


# ----------------------------------------------------------------------
# unguarded-write
# ----------------------------------------------------------------------

class TestUnguardedWrite:
    def test_fires_on_lockless_write_of_inferred_attr(self, tmp_path):
        violations = _analyze_snippet(tmp_path, COUNTER)
        assert _rules(violations) == ["unguarded-write"]
        assert violations[0].line == 10
        assert "'_count'" in violations[0].message
        assert "guarded-by" in violations[0].message

    def test_construction_and_locked_writes_are_clean(self, tmp_path):
        source = (
            "import threading\n"
            "class Counter:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._count = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._count += 1\n"
        )
        assert _analyze_snippet(tmp_path, source) == []

    def test_guarded_by_def_annotation_exempts_helper(self, tmp_path):
        source = COUNTER.replace(
            "    def reset(self):\n",
            "    def reset(self):  # guarded-by: _lock\n")
        assert _analyze_snippet(tmp_path, source) == []

    def test_guarded_by_on_wrapped_signature_line(self, tmp_path):
        source = COUNTER.replace(
            "    def reset(self):\n",
            "    def reset(\n"
            "            self):  # guarded-by: _lock\n")
        assert _analyze_snippet(tmp_path, source) == []

    def test_declared_guard_needs_no_locked_write(self, tmp_path):
        source = (
            "import threading\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = []  # guarded-by: _lock\n"
            "    def drop(self):\n"
            "        self._items = []\n"
        )
        violations = _analyze_snippet(tmp_path, source)
        assert _rules(violations) == ["unguarded-write"]
        assert violations[0].line == 7

    def test_mutator_call_counts_as_write(self, tmp_path):
        source = (
            "import threading\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = []  # guarded-by: _lock\n"
            "    def push(self, item):\n"
            "        self._items.append(item)\n"
        )
        violations = _analyze_snippet(tmp_path, source)
        assert _rules(violations) == ["unguarded-write"]

    def test_unguarded_attrs_stay_free(self, tmp_path):
        source = (
            "class Plain:\n"
            "    def set(self, value):\n"
            "        self.value = value\n"
        )
        assert _analyze_snippet(tmp_path, source) == []


# ----------------------------------------------------------------------
# nested-acquire
# ----------------------------------------------------------------------

class TestNestedAcquire:
    def test_direct_with_nesting_fires(self, tmp_path):
        source = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def bad(self):\n"
            "        with self._lock:\n"
            "            with self._lock:\n"
            "                pass\n"
        )
        violations = _analyze_snippet(tmp_path, source)
        assert _rules(violations) == ["nested-acquire"]
        assert violations[0].line == 7
        assert "self-deadlock" in violations[0].message

    def test_reentrant_lock_is_exempt(self, tmp_path):
        source = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
            "    def fine(self):\n"
            "        with self._lock:\n"
            "            with self._lock:\n"
            "                pass\n"
        )
        assert _analyze_snippet(tmp_path, source) == []

    def test_one_level_self_call_fires(self, tmp_path):
        source = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "    def step(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
            "    def bad(self):\n"
            "        with self._lock:\n"
            "            self.step()\n"
        )
        violations = _analyze_snippet(tmp_path, source)
        assert _rules(violations) == ["nested-acquire"]
        assert violations[0].line == 11
        assert "via self.step()" in violations[0].message

    def test_locked_helper_called_unlocked_is_clean(self, tmp_path):
        source = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "    def step(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
            "    def fine(self):\n"
            "        self.step()\n"
        )
        assert _analyze_snippet(tmp_path, source) == []


# ----------------------------------------------------------------------
# lock-order-cycle
# ----------------------------------------------------------------------

class TestLockOrderCycle:
    def test_inverted_nesting_closes_a_cycle(self, tmp_path):
        source = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._a = threading.Lock()\n"
            "        self._b = threading.Lock()\n"
            "    def forward(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                pass\n"
            "    def backward(self):\n"
            "        with self._b:\n"
            "            with self._a:\n"
            "                pass\n"
        )
        violations = _analyze_snippet(tmp_path, source)
        assert _rules(violations) == ["lock-order-cycle"]
        assert violations[0].line == 12          # the closing acquire
        assert "C._b -> C._a -> C._b" in violations[0].message

    def test_consistent_order_is_clean(self, tmp_path):
        source = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._a = threading.Lock()\n"
            "        self._b = threading.Lock()\n"
            "    def one(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                pass\n"
            "    def two(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                pass\n"
        )
        assert _analyze_snippet(tmp_path, source) == []

    def test_cycle_spans_modules_via_ordered_lock_names(self, tmp_path):
        """ordered_lock string literals are shared graph nodes, so two
        modules nesting the same named pair in opposite orders close a
        cycle neither module exhibits alone."""
        first = tmp_path / "first.py"
        first.write_text(
            "from repro.concurrency import ordered_lock\n"
            "class X:\n"
            "    def __init__(self):\n"
            "        self._a = ordered_lock('order.a')\n"
            "        self._b = ordered_lock('order.b')\n"
            "    def run(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                pass\n"
        )
        second = tmp_path / "second.py"
        second.write_text(
            "from repro.concurrency import ordered_lock\n"
            "class Y:\n"
            "    def __init__(self):\n"
            "        self._b = ordered_lock('order.b')\n"
            "    def run(self, x):\n"
            "        with self._b:\n"
            "            with x._a:\n"      # not a lock attr of Y: inert
            "                pass\n"
            "    def inverted(self):\n"
            "        self._a = ordered_lock('order.a')\n"
            "    def bad(self):\n"
            "        with self._b:\n"
            "            with self._a:\n"
            "                pass\n"
        )
        violations = analyze_paths([str(first), str(second)])
        assert _rules(violations) == ["lock-order-cycle"]
        assert "order.a" in violations[0].message
        assert "order.b" in violations[0].message
        assert "cycle" in violations[0].message

    def test_each_module_alone_is_clean(self, tmp_path):
        source = (
            "from repro.concurrency import ordered_lock\n"
            "class X:\n"
            "    def __init__(self):\n"
            "        self._a = ordered_lock('solo.a')\n"
            "        self._b = ordered_lock('solo.b')\n"
            "    def run(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                pass\n"
        )
        assert _analyze_snippet(tmp_path, source) == []


# ----------------------------------------------------------------------
# must-close
# ----------------------------------------------------------------------

class TestMustClose:
    LEAK = (
        "def load(path):\n"
        "    handle = open(path)\n"
        "    return 1\n"
    )

    def test_leaked_open_fires_in_storage(self, tmp_path):
        violations = _analyze_snippet(tmp_path, self.LEAK, subdir="storage")
        assert _rules(violations) == ["must-close"]
        assert violations[0].line == 2
        assert "'handle'" in violations[0].message

    def test_rule_scoped_to_storage_and_service(self, tmp_path):
        assert _analyze_snippet(tmp_path, self.LEAK) == []
        assert _analyze_snippet(tmp_path, self.LEAK,
                                subdir="service") != []

    def test_close_paths_are_clean(self, tmp_path):
        source = (
            "def managed(path):\n"
            "    with open(path) as handle:\n"
            "        return handle.read()\n"
            "def closed(path):\n"
            "    handle = open(path)\n"
            "    try:\n"
            "        return handle.read()\n"
            "    finally:\n"
            "        handle.close()\n"
            "def handed_to_caller(path):\n"
            "    return open(path)\n"
            "def handed_to_callee(path, wrap):\n"
            "    return wrap(open(path))\n"
        )
        assert _analyze_snippet(tmp_path, source, subdir="storage") == []

    def test_self_attr_requires_a_closer_method(self, tmp_path):
        source = (
            "class NoCloser:\n"
            "    def __init__(self, path):\n"
            "        self._fh = open(path)\n"
        )
        violations = _analyze_snippet(tmp_path, source, subdir="storage")
        assert _rules(violations) == ["must-close"]
        assert "no close()/shutdown()" in violations[0].message

    def test_self_attr_with_closer_is_clean(self, tmp_path):
        source = (
            "class HasCloser:\n"
            "    def __init__(self, path):\n"
            "        self._fh = open(path)\n"
            "    def close(self):\n"
            "        self._fh.close()\n"
        )
        assert _analyze_snippet(tmp_path, source, subdir="storage") == []

    def test_memmap_executor_and_pool_are_tracked(self, tmp_path):
        source = (
            "import multiprocessing as mp\n"
            "import numpy as np\n"
            "def leaky(path):\n"
            "    rows = np.memmap(path)\n"
            "    pool = mp.Pool(2)\n"
            "    workers = ThreadPoolExecutor(2)\n"
            "    return 1\n"
        )
        violations = _analyze_snippet(tmp_path, source, subdir="service")
        assert _rules(violations) == ["must-close"] * 3
        kinds = {v.message.split("(")[0] for v in violations}
        assert kinds == {"memmap", "pool", "executor"}


# ----------------------------------------------------------------------
# Suppressions (reprorace namespace over reprolint's machinery)
# ----------------------------------------------------------------------

class TestSuppressions:
    def test_same_line_named_rule(self, tmp_path):
        source = COUNTER.replace(
            "    def reset(self):\n"
            "        self._count = 0\n",
            "    def reset(self):\n"
            "        self._count = 0  # reprorace: ignore[unguarded-write]\n")
        assert _analyze_snippet(tmp_path, source) == []

    def test_line_above(self, tmp_path):
        source = COUNTER.replace(
            "    def reset(self):\n"
            "        self._count = 0\n",
            "    def reset(self):\n"
            "        # reprorace: ignore[unguarded-write]\n"
            "        self._count = 0\n")
        assert _analyze_snippet(tmp_path, source) == []

    def test_def_header_covers_the_block(self, tmp_path):
        source = COUNTER.replace(
            "    def reset(self):\n",
            "    def reset(self):  # reprorace: ignore[unguarded-write]\n")
        assert _analyze_snippet(tmp_path, source) == []

    def test_skip_file(self, tmp_path):
        assert _analyze_snippet(
            tmp_path, "# reprorace: skip-file\n" + COUNTER) == []

    def test_wrong_rule_does_not_suppress(self, tmp_path):
        source = COUNTER.replace(
            "    def reset(self):\n",
            "    def reset(self):  # reprorace: ignore[must-close]\n")
        assert _rules(_analyze_snippet(tmp_path, source)) == \
            ["unguarded-write"]

    def test_unknown_rule_in_suppression_errors(self, tmp_path):
        source = "x = 1  # reprorace: ignore[no-such-rule]\n"
        with pytest.raises(SystemExit):
            _analyze_snippet(tmp_path, source)

    def test_reprolint_namespace_does_not_silence_reprorace(self, tmp_path):
        source = COUNTER.replace(
            "    def reset(self):\n",
            "    def reset(self):  # reprolint: ignore\n")
        assert _rules(_analyze_snippet(tmp_path, source)) == \
            ["unguarded-write"]


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------

class TestCli:
    def test_list_rules_catalog(self, capsys):
        assert race_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in RACE_RULES:
            assert name in out

    def test_exit_codes_and_location_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(COUNTER)
        assert race_main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "{}:10: unguarded-write:".format(bad) in out
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert race_main([str(good)]) == 0
        assert "reprorace: clean" in capsys.readouterr().out

    def test_no_targets_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            race_main([])
        assert exc.value.code == 2

    def test_json_record_shape(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(COUNTER)
        assert race_main(["--json", str(bad)]) == 1
        record = json.loads(capsys.readouterr().out)
        assert record["tool"] == "reprorace"
        assert record["count"] == 1
        violation = record["violations"][0]
        assert violation["path"] == str(bad)
        assert violation["line"] == 10
        assert violation["rule"] == "unguarded-write"
        assert "'_count'" in violation["message"]

    def test_json_clean_record(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert race_main(["--json", str(good)]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record == {"tool": "reprorace", "count": 0, "violations": []}

    def test_module_entry_point(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(COUNTER)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.concurrency", str(bad)],
            capture_output=True, text=True,
            env=dict(os.environ, PYTHONPATH=os.path.dirname(REPO_SRC)))
        assert proc.returncode == 1
        assert "unguarded-write" in proc.stdout


# ----------------------------------------------------------------------
# Runtime witness
# ----------------------------------------------------------------------

class TestLockWitness:
    def test_two_thread_deadlock_caught_deterministically(self):
        """The seeded deadlock: thread one nests A -> B (recording the
        edge), thread two — sequenced strictly after via an Event —
        nests B -> A.  The witness raises at thread two's inner acquire,
        *before* it could block, every run."""
        a = ordered_lock("deadlock.a")
        b = ordered_lock("deadlock.b")
        forward_done = threading.Event()
        caught = []

        def forward():
            with a:
                with b:
                    pass
            forward_done.set()

        def backward():
            assert forward_done.wait(5.0)
            with b:
                try:
                    with a:
                        pass
                except LockOrderViolation as exc:
                    caught.append(exc)

        with witness_scope() as witness:
            threads = [threading.Thread(target=forward),
                       threading.Thread(target=backward)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(5.0)
            assert [type(exc) for exc in caught] == [LockOrderViolation]
            assert "deadlock.b -> deadlock.a -> deadlock.b" in str(caught[0])
            # The offending edge was rejected, not recorded: the graph
            # stays acyclic and the final sweep agrees.
            assert witness.edges() == {"deadlock.a": ("deadlock.b",)}
            witness.assert_acyclic()
            assert witness.acquisitions >= 4
            assert witness.edges_recorded == 1

    def test_reentrant_reacquire_records_nothing(self):
        lock = ordered_rlock("re.lock")
        with witness_scope() as witness:
            with lock:
                with lock:
                    # Both holds are on the stack; neither records an edge.
                    assert witness.held_names() == ("re.lock", "re.lock")
                assert witness.held_names() == ("re.lock",)
            assert witness.held_names() == ()
            assert witness.edges() == {}

    def test_same_name_different_objects_violate(self):
        first = ordered_lock("dup.name")
        second = ordered_lock("dup.name")
        with witness_scope():
            with first:
                with pytest.raises(LockOrderViolation):
                    with second:
                        pass

    def test_acquire_release_protocol(self):
        lock = ordered_lock("proto.lock")
        with witness_scope() as witness:
            assert lock.acquire()
            assert witness.held_names() == ("proto.lock",)
            lock.release()
            assert witness.held_names() == ()
            assert witness.acquisitions == 1

    def test_scope_restores_previous_witness(self):
        assert installed_witness() is None
        with witness_scope() as outer:
            assert installed_witness() is outer
            with witness_scope() as inner:
                assert installed_witness() is inner
            assert installed_witness() is outer
        assert installed_witness() is None

    def test_disarmed_lock_is_a_plain_lock(self):
        lock = ordered_lock("disarmed.lock")
        assert installed_witness() is None
        with lock:
            assert not lock.acquire(blocking=False)
        assert lock.acquire(blocking=False)
        lock.release()

    def test_repr_and_reentrant_flag(self):
        assert "re.lock" in repr(ordered_rlock("re.lock"))
        assert ordered_rlock("x").reentrant
        assert not ordered_lock("x").reentrant
        assert isinstance(ordered_lock("x"), OrderedLock)

    def test_assert_acyclic_catches_a_planted_cycle(self):
        witness = LockWitness()
        witness._edges = {"a": {"b"}, "b": {"a"}}
        with pytest.raises(LockOrderViolation):
            witness.assert_acyclic()


# ----------------------------------------------------------------------
# Leak registry
# ----------------------------------------------------------------------

class TestLeakRegistry:
    def test_track_release_and_assert_empty(self):
        with tracking_scope() as tracker:
            token = track_resource("wal", "/tmp/wal.log")
            assert isinstance(token, int)
            with pytest.raises(ResourceLeakError) as exc:
                tracker.assert_empty()
            assert "wal" in str(exc.value)
            release_resource(token)
            tracker.assert_empty()
            assert tracker.tracked == 1
            assert tracker.released == 1

    def test_double_release_is_idempotent(self):
        with tracking_scope() as tracker:
            token = track_resource("store")
            release_resource(token)
            release_resource(token)
            assert tracker.released == 1

    def test_disarmed_tokens_are_none_and_inert(self):
        assert installed_tracker() is None
        assert track_resource("wal", "ignored") is None
        release_resource(None)   # must not raise

    def test_scope_restores_previous_tracker(self):
        with tracking_scope() as outer:
            with tracking_scope() as inner:
                assert installed_tracker() is inner
            assert installed_tracker() is outer
        assert installed_tracker() is None

    def test_registry_is_thread_safe(self):
        registry = LeakRegistry()
        tokens = []

        def churn():
            for _ in range(200):
                tokens.append(registry.track("t", "x"))

        threads = [threading.Thread(target=churn) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.tracked == 800
        assert len(set(tokens)) == 800
        for token in tokens:
            registry.untrack(token)
        registry.assert_empty()


# ----------------------------------------------------------------------
# The real tree
# ----------------------------------------------------------------------

class TestGate:
    def test_src_repro_analyzes_clean(self):
        assert analyze_paths([REPO_SRC]) == []
