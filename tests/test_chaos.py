"""Chaos: randomized fault schedules replayed over the differential harness.

The headline robustness gate.  A seeded RNG drives hundreds of steps of
mutate / query / flush / checkpoint against a :class:`PersistentGraph`
while faults are armed at random storage sites, and after *every* step
the compact-kernel answer is checked against the dict-reference answer
on the live graph.  The fail-stop-or-correct contract under test:

    every step either raises a **typed** error (``StorageError`` /
    ``StoreDegradedError``) or the store answers **exactly** — a
    silently wrong pair set fails the run immediately.

Schedules are deterministic (fixed seeds, counter-triggered faults), so
a failure here replays identically under ``pytest -k`` — no flaky chaos.
The pool half does the same over :class:`ParallelExecutor` with workers
being killed at random points mid-schedule.
"""

import random

import pytest

from repro.concurrency import tracking_scope, witness_scope
from repro.engine.parallel import ParallelExecutor, fork_available
from repro.errors import StorageError, StoreDegradedError
from repro.faults import FaultPlan, clear_plan, fault_scope
from repro.graph.generators import uniform_random
from repro.rpq import lconcat, lstar, lunion, rpq_pairs_basic, sym
from repro.rpq.evaluation import compile_rpq
from repro.storage import PersistentGraph

SEEDS = (3, 17)
STEPS_PER_SEED = 120   # x2 seeds = 240 randomized fault-schedule steps

EXPRESSIONS = (
    sym("a"),
    lstar(sym("b")),
    lconcat(sym("a"), lstar(sym("b"))),
    lunion(sym("a"), sym("c")),
    lconcat(lstar(sym("a")), sym("c")),
)

#: (site, kind, options) menu the schedule arms from.  ``times=1`` each:
#: a fault fires once at its site's next crossing, wherever that lands.
FAULT_MENU = (
    ("wal.write", "eio", {}),
    ("wal.write", "enospc", {"fraction": 0.5}),
    ("wal.fsync", "eio", {}),
    ("snapshot.fsync", "eio", {}),
    ("manifest.rename", "eio", {}),
    ("store.pairs", "eio", {}),
)


@pytest.fixture(autouse=True)
def disarmed():
    clear_plan()
    yield
    clear_plan()


@pytest.fixture(autouse=True)
def concurrency_witness():
    """Run the whole chaos schedule under the armed lock-order witness
    and leak registry: every injected fault also proves the acquisition
    order stayed acyclic and every WAL/store/pool handle was released.

    The witness fail-stops (raising ``LockOrderViolation``) the moment a
    cyclic acquisition happens, so a regression surfaces as a typed error
    at the offending acquire, not a wedged run; the final asserts keep
    the arming honest (a disarmed run would pass vacuously) and sweep up
    leaks and any cycle the fail-stop could somehow have missed.
    """
    with witness_scope() as witness, tracking_scope() as tracker:
        yield
        witness.assert_acyclic()
        assert witness.acquisitions > 0, "witness saw no lock traffic"
        tracker.assert_empty()
        assert tracker.released > 0, "leak registry saw no resources"


class Tally:
    """Outcome counters for one chaos run (summed across seeds)."""

    def __init__(self):
        self.steps = 0
        self.typed_errors = 0
        self.degraded_entries = 0
        self.heals = 0

    def __iadd__(self, other):
        self.steps += other.steps
        self.typed_errors += other.typed_errors
        self.degraded_entries += other.degraded_entries
        self.heals += other.heals
        return self


def check_exact(store, expression, tally):
    """The differential invariant: typed error or the exact answer.

    ``times=1`` faults pending at ``store.pairs`` are consumed by the
    failing read, so a bounded number of retries must reach a verdict.
    """
    for _ in range(4):
        try:
            got = store.pairs(expression)
        except StorageError:
            tally.typed_errors += 1
            continue
        reference = rpq_pairs_basic(store.graph(), expression)
        assert got == reference, \
            "silently wrong answer for {!r}".format(expression)
        return
    raise AssertionError("read faults outlived their times=1 bounds")


def storage_chaos_run(directory, seed):
    rng = random.Random(seed)
    graph = uniform_random(50, 300, labels=("a", "b", "c"), seed=seed)
    store = PersistentGraph.create(str(directory), graph,
                                   name="chaos-{}".format(seed),
                                   sync="batch", batch_size=8)
    tally = Tally()
    plan = FaultPlan(seed=seed)
    with fault_scope(plan):
        for _ in range(STEPS_PER_SEED):
            tally.steps += 1
            if rng.random() < 0.30:
                site, kind, options = rng.choice(FAULT_MENU)
                plan.arm(site, kind, times=1, **options)
            op = rng.choice(("mutate", "mutate", "query", "query",
                             "flush", "checkpoint"))
            try:
                if op == "mutate":
                    live = store.graph()
                    if rng.random() < 0.3 and live.size() > 0:
                        edges = sorted(live._edges, key=repr)
                        victim = rng.choice(edges)
                        store.remove_edge(victim.tail, victim.label,
                                          victim.head)
                    else:
                        tail = rng.randrange(60)
                        head = rng.randrange(60)
                        label = rng.choice(("a", "b", "c"))
                        store.add_edge(tail, label, head)
                elif op == "flush":
                    store.flush()
                elif op == "checkpoint":
                    was_degraded = store.degraded
                    store.checkpoint()
                    if was_degraded and not store.degraded:
                        tally.heals += 1
            except StoreDegradedError:
                tally.typed_errors += 1
                tally.degraded_entries += 1
            except StorageError:
                tally.typed_errors += 1
            # The invariant holds after EVERY step, fault or not.
            check_exact(store, rng.choice(EXPRESSIONS), tally)
            # A stuck-degraded store would starve the mutate arm of the
            # schedule, so occasionally heal it on purpose.
            if store.degraded and rng.random() < 0.5:
                try:
                    store.checkpoint()
                    tally.heals += 1
                except StorageError:
                    tally.typed_errors += 1
    # Wind down cleanly: heal if needed, then prove durability.
    final_reference = {(e.tail, e.label, e.head)
                       for e in store.graph()._edges}
    if store.degraded:
        store.checkpoint()
        tally.heals += 1
    else:
        store.checkpoint()
    store.close()
    with PersistentGraph.open(str(directory), materialize=True) as reopened:
        survived = {(e.tail, e.label, e.head)
                    for e in reopened.graph()._edges}
        assert survived == final_reference
        for expression in EXPRESSIONS:
            assert reopened.pairs(expression) == \
                rpq_pairs_basic(reopened.graph(), expression)
    return tally, plan


class TestStorageChaos:
    def test_randomized_schedules_never_answer_wrong(self, tmp_path):
        total = Tally()
        fired = 0
        for seed in SEEDS:
            tally, plan = storage_chaos_run(tmp_path / str(seed), seed)
            total += tally
            fired += plan.fired()
        # The run must have been a real trial, not a quiet walk:
        assert total.steps >= 200
        assert fired >= 10, "schedule armed faults that never fired"
        assert total.typed_errors >= 10
        assert total.degraded_entries >= 1
        assert total.heals >= 1


@pytest.mark.skipif(not fork_available(),
                    reason="pool chaos needs the fork start method")
class TestPoolChaos:
    def test_random_worker_kills_never_corrupt_answers(self, tmp_path):
        rng = random.Random(23)
        graph = uniform_random(80, 600, labels=("a", "b"), seed=23)
        star = lconcat(sym("a"), lstar(sym("b")))
        expected = rpq_pairs_basic(graph, star)
        dfa = compile_rpq(star, graph)
        respawns = fallbacks = kills_armed = 0
        tokens = []
        # Workers inherit the plan at fork, so each step runs a fresh
        # pool: a kill armed this step is guaranteed visible to it.
        for step in range(8):
            plan = FaultPlan(seed=23 + step)
            if rng.random() < 0.5:
                token = tmp_path / "kill-{}".format(step)
                token.write_text("")
                plan.arm("pool.task", "kill", times=None,
                         token=str(token))
                tokens.append(token)
                kills_armed += 1
            with fault_scope(plan):
                with ParallelExecutor(graph, processes=2, min_edges=0,
                                      max_task_retries=2,
                                      stall_timeout=10.0) as executor:
                    answer = executor.rpq_pairs(dfa)
                    assert answer == expected, \
                        "silently wrong answer at step {}".format(step)
                    stats = executor.stats()
            respawns += stats["workers_respawned"]
            fallbacks += stats["serial_fallbacks"]
        assert kills_armed >= 2          # the seed must exercise the arm
        # Every armed kill fired: its token was atomically consumed by
        # exactly one worker, and the executor healed without ever
        # resorting to the serial fallback (one death, bounded retries).
        assert all(not token.exists() for token in tokens)
        assert respawns >= kills_armed
        assert fallbacks == 0
