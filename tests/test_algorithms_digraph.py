"""Tests for the DiGraph substrate."""

import pytest

from repro.algorithms.digraph import DiGraph
from repro.errors import VertexNotFoundError


@pytest.fixture
def graph():
    g = DiGraph()
    g.add_edge("a", "b", weight=2.0)
    g.add_edge("b", "c")
    g.add_edge("c", "a")
    g.add_edge("a", "c")
    return g


class TestStructure:
    def test_counts(self, graph):
        assert graph.order() == 3
        assert graph.size() == 4

    def test_add_vertex_idempotent(self, graph):
        graph.add_vertex("a")
        assert graph.order() == 3

    def test_has_edge(self, graph):
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("b", "a")

    def test_weight(self, graph):
        assert graph.weight("a", "b") == 2.0
        assert graph.weight("b", "c") == 1.0

    def test_reweighting(self, graph):
        graph.add_edge("a", "b", weight=5.0)
        assert graph.weight("a", "b") == 5.0
        assert graph.size() == 4

    def test_remove_edge(self, graph):
        graph.remove_edge("a", "b")
        assert not graph.has_edge("a", "b")
        with pytest.raises(KeyError):
            graph.remove_edge("a", "b")

    def test_successors_predecessors(self, graph):
        assert graph.successors("a") == {"b", "c"}
        assert graph.predecessors("c") == {"b", "a"}

    def test_degrees(self, graph):
        assert graph.out_degree("a") == 2
        assert graph.in_degree("a") == 1
        assert graph.out_degree("a", weighted=True) == 3.0

    def test_missing_vertex_raises(self, graph):
        with pytest.raises(VertexNotFoundError):
            graph.successors("zzz")

    def test_reversed(self, graph):
        rev = graph.reversed()
        assert rev.has_edge("b", "a")
        assert rev.weight("b", "a") == 2.0
        assert rev.size() == graph.size()

    def test_undirected_neighbors(self, graph):
        assert graph.undirected_neighbors("a") == {"b", "c"}

    def test_contains_and_len(self, graph):
        assert "a" in graph
        assert len(graph) == 3

    def test_edges_iteration(self, graph):
        triples = set(graph.edges())
        assert ("a", "b", 2.0) in triples
        assert len(triples) == 4


class TestBfs:
    def test_bfs_distances(self, graph):
        distances = graph.bfs_distances("a")
        assert distances == {"a": 0, "b": 1, "c": 1}

    def test_bfs_unreachable_excluded(self):
        g = DiGraph([("a", "b")])
        g.add_vertex("island")
        assert "island" not in g.bfs_distances("a")

    def test_bfs_on_cycle(self):
        g = DiGraph([("a", "b"), ("b", "c"), ("c", "a")])
        assert g.bfs_distances("a") == {"a": 0, "b": 1, "c": 2}
