"""Geodesics, components, assortativity and spreading activation tests."""

import random

import networkx as nx
import pytest

from repro.algorithms import (
    DiGraph,
    average_clustering,
    average_path_length,
    clustering_coefficient,
    condensation_edges,
    degree_assortativity,
    diameter,
    dijkstra,
    discrete_assortativity,
    eccentricity,
    is_weakly_connected,
    mixing_matrix,
    reachable_set,
    scalar_assortativity,
    shortest_path,
    shortest_path_lengths,
    spreading_activation,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.errors import AlgorithmError


def random_digraph(n, m, seed):
    rng = random.Random(seed)
    edges = set()
    while len(edges) < m:
        tail, head = rng.randrange(n), rng.randrange(n)
        if tail != head:
            edges.add((tail, head))
    return DiGraph(edges), nx.DiGraph(list(edges))


class TestGeodesics:
    def test_shortest_path_lengths_match_networkx(self):
        ours, theirs = random_digraph(12, 30, seed=3)
        for source in ours.vertices():
            assert shortest_path_lengths(ours, source) == \
                nx.single_source_shortest_path_length(theirs, source)

    def test_shortest_path_is_valid_and_minimal(self):
        ours, theirs = random_digraph(12, 30, seed=4)
        lengths = nx.single_source_shortest_path_length(theirs, 0)
        for target, expected in lengths.items():
            path = shortest_path(ours, 0, target)
            assert path[0] == 0 and path[-1] == target
            assert len(path) - 1 == expected
            for a, b in zip(path, path[1:]):
                assert ours.has_edge(a, b)

    def test_shortest_path_unreachable(self):
        g = DiGraph([("a", "b")])
        g.add_vertex("island")
        assert shortest_path(g, "a", "island") is None

    def test_shortest_path_to_self(self):
        g = DiGraph([("a", "b")])
        assert shortest_path(g, "a", "a") == ["a"]

    def test_dijkstra_matches_networkx(self):
        rng = random.Random(5)
        ours = DiGraph()
        theirs = nx.DiGraph()
        for _ in range(40):
            tail, head = rng.randrange(10), rng.randrange(10)
            if tail == head:
                continue
            weight = rng.randint(1, 9)
            ours.add_edge(tail, head, weight=weight)
            theirs.add_edge(tail, head, weight=weight)
        for source in ours.vertices():
            expected = nx.single_source_dijkstra_path_length(theirs, source)
            assert dijkstra(ours, source) == pytest.approx(expected)

    def test_dijkstra_rejects_negative(self):
        g = DiGraph()
        g.add_edge("a", "b", weight=-1)
        with pytest.raises(AlgorithmError):
            dijkstra(g, "a")

    def test_eccentricity_and_diameter(self):
        g = DiGraph([("a", "b"), ("b", "c"), ("c", "d")])
        assert eccentricity(g, "a") == 3
        assert diameter(g) == 3

    def test_eccentricity_undefined_for_sink(self):
        g = DiGraph([("a", "b")])
        with pytest.raises(AlgorithmError):
            eccentricity(g, "b")

    def test_average_path_length(self):
        g = DiGraph([("a", "b"), ("b", "c")])
        # pairs: a->b 1, a->c 2, b->c 1.
        assert average_path_length(g) == pytest.approx(4 / 3)


class TestComponents:
    def test_weak_components_match_networkx(self):
        ours, theirs = random_digraph(15, 20, seed=6)
        ours_parts = {frozenset(c) for c in weakly_connected_components(ours)}
        theirs_parts = {frozenset(c) for c in nx.weakly_connected_components(theirs)}
        assert ours_parts == theirs_parts

    def test_strong_components_match_networkx(self):
        ours, theirs = random_digraph(15, 35, seed=7)
        ours_parts = {frozenset(c) for c in strongly_connected_components(ours)}
        theirs_parts = {frozenset(c) for c in nx.strongly_connected_components(theirs)}
        assert ours_parts == theirs_parts

    def test_strong_components_on_known_graph(self):
        g = DiGraph([("a", "b"), ("b", "a"), ("b", "c"), ("c", "d"), ("d", "c")])
        parts = {frozenset(c) for c in strongly_connected_components(g)}
        assert parts == {frozenset({"a", "b"}), frozenset({"c", "d"})}

    def test_is_weakly_connected(self):
        assert is_weakly_connected(DiGraph([("a", "b"), ("c", "b")]))
        g = DiGraph([("a", "b")])
        g.add_vertex("island")
        assert not is_weakly_connected(g)

    def test_reachable_set(self):
        g = DiGraph([("a", "b"), ("b", "c"), ("x", "a")])
        assert reachable_set(g, "a") == {"a", "b", "c"}

    def test_condensation_is_acyclic_dag(self):
        g = DiGraph([("a", "b"), ("b", "a"), ("b", "c"), ("c", "d"), ("d", "c")])
        edges = condensation_edges(g)
        assert len(edges) == 1  # {a,b} -> {c,d}

    def test_clustering_matches_networkx_on_undirectedized(self):
        # Our definition: triangle density among undirected neighbors.
        g = DiGraph([("a", "b"), ("b", "c"), ("c", "a")])
        assert clustering_coefficient(g, "a") == 1.0
        assert average_clustering(g) == 1.0

    def test_clustering_low_degree_is_zero(self):
        g = DiGraph([("a", "b")])
        assert clustering_coefficient(g, "a") == 0.0


class TestAssortativity:
    def test_scalar_assortativity_matches_networkx(self):
        ours, theirs = random_digraph(12, 40, seed=8)
        attribute = {v: float(v % 4) for v in ours.vertices()}
        nx.set_node_attributes(theirs, attribute, "value")
        expected = nx.numeric_assortativity_coefficient(theirs, "value")
        assert scalar_assortativity(ours, attribute) == pytest.approx(expected, abs=1e-6)

    def test_degree_assortativity_matches_networkx(self):
        ours, theirs = random_digraph(12, 40, seed=9)
        expected = nx.degree_pearson_correlation_coefficient(
            theirs, x="out", y="in")
        assert degree_assortativity(ours) == pytest.approx(expected, abs=1e-6)

    def test_discrete_assortativity_matches_networkx(self):
        ours, theirs = random_digraph(12, 40, seed=10)
        category = {v: "even" if v % 2 == 0 else "odd" for v in ours.vertices()}
        nx.set_node_attributes(theirs, category, "cat")
        expected = nx.attribute_assortativity_coefficient(theirs, "cat")
        assert discrete_assortativity(ours, category) == pytest.approx(expected, abs=1e-6)

    def test_perfectly_assortative(self):
        g = DiGraph([("a1", "a2"), ("b1", "b2")])
        category = {"a1": "a", "a2": "a", "b1": "b", "b2": "b"}
        assert discrete_assortativity(g, category) == pytest.approx(1.0)

    def test_mixing_matrix_sums_to_one(self):
        g = DiGraph([("a", "b"), ("b", "c"), ("c", "a")])
        category = {"a": 0, "b": 0, "c": 1}
        matrix = mixing_matrix(g, category)
        assert sum(matrix.values()) == pytest.approx(1.0)

    def test_errors(self):
        with pytest.raises(AlgorithmError):
            scalar_assortativity(DiGraph(), {})
        with pytest.raises(AlgorithmError):
            degree_assortativity(DiGraph())
        g = DiGraph([("a", "b")])
        with pytest.raises(AlgorithmError):
            scalar_assortativity(g, {"a": 1.0})  # missing b
        with pytest.raises(AlgorithmError):
            discrete_assortativity(g, {"a": "x", "b": "x"})  # single category


class TestSpreadingActivation:
    def test_energy_reaches_neighbors(self):
        g = DiGraph([("s", "a"), ("s", "b"), ("a", "c")])
        activation = spreading_activation(g, {"s": 1.0}, steps=2, decay=1.0)
        assert activation["a"] == pytest.approx(0.5)
        assert activation["b"] == pytest.approx(0.5)
        assert activation["c"] == pytest.approx(0.5)

    def test_decay_reduces_downstream_energy(self):
        g = DiGraph([("s", "a"), ("a", "b")])
        activation = spreading_activation(g, {"s": 1.0}, steps=2, decay=0.5)
        assert activation["a"] == pytest.approx(0.5)
        assert activation["b"] == pytest.approx(0.25)

    def test_weights_split_energy(self):
        g = DiGraph()
        g.add_edge("s", "heavy", weight=3.0)
        g.add_edge("s", "light", weight=1.0)
        activation = spreading_activation(g, {"s": 1.0}, steps=1, decay=1.0)
        assert activation["heavy"] == pytest.approx(0.75)
        assert activation["light"] == pytest.approx(0.25)

    def test_zero_steps_returns_seeds(self):
        g = DiGraph([("s", "a")])
        assert spreading_activation(g, {"s": 2.0}, steps=0) == {"s": 2.0}

    def test_sink_absorbs(self):
        g = DiGraph([("s", "sink")])
        activation = spreading_activation(g, {"s": 1.0}, steps=5, decay=1.0)
        assert activation["sink"] == pytest.approx(1.0)

    def test_validation(self):
        g = DiGraph([("s", "a")])
        with pytest.raises(AlgorithmError):
            spreading_activation(g, {}, steps=1)
        with pytest.raises(AlgorithmError):
            spreading_activation(g, {"s": 1.0}, steps=-1)
        with pytest.raises(AlgorithmError):
            spreading_activation(g, {"s": 1.0}, decay=0.0)
        with pytest.raises(AlgorithmError):
            spreading_activation(g, {"nope": 1.0})
