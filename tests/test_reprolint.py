"""reprolint fixture suite: every rule fires, every suppression works.

Each fixture writes a minimal offending module to a temp tree shaped the
way the rule expects (``storage/`` membership, ``compact.py`` naming) and
asserts the violation surfaces with the right rule name and line; the
suppression tests prove the escape hatches (same line, line above,
class/def-block, skip-file) actually silence them; and the final test
holds the gate the CI job runs: ``src/repro`` itself lints clean.
"""

import os
import subprocess
import sys

import pytest

from repro.analysis.lint import RULES, lint_paths, main as lint_main

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src", "repro")


def _lint_snippet(tmp_path, source, name="mod.py", subdir=""):
    directory = tmp_path / subdir if subdir else tmp_path
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / name
    path.write_text(source)
    return lint_paths([str(path)])


def _rules(violations):
    return [violation.rule for violation in violations]


# ----------------------------------------------------------------------
# Each rule fires
# ----------------------------------------------------------------------

class TestRulesFire:
    def test_numpy_gate_unguarded_import(self, tmp_path):
        violations = _lint_snippet(tmp_path, "import numpy as _np\n")
        assert _rules(violations) == ["numpy-gate"]
        assert violations[0].line == 1
        assert "try/except" in violations[0].message

    def test_numpy_gate_from_import(self, tmp_path):
        violations = _lint_snippet(tmp_path, "from numpy import array\n")
        assert _rules(violations) == ["numpy-gate"]

    def test_numpy_gate_ungated_function_use(self, tmp_path):
        source = (
            "try:\n"
            "    import numpy as _np\n"
            "except ImportError:\n"
            "    _np = None\n"
            "def bad(values):\n"
            "    return _np.asarray(values)\n"
            "def good(values):\n"
            "    if _np is None:\n"
            "        return list(values)\n"
            "    return _np.asarray(values)\n"
            "def also_good(values):\n"
            "    assert HAVE_NUMPY\n"
            "    return _np.asarray(values)\n"
        )
        violations = _lint_snippet(tmp_path, source)
        assert _rules(violations) == ["numpy-gate"]
        assert violations[0].line == 6
        assert "'bad'" in violations[0].message

    def test_numpy_gate_enclosing_scope_counts(self, tmp_path):
        source = (
            "try:\n"
            "    import numpy as _np\n"
            "except ImportError:\n"
            "    _np = None\n"
            "def outer(values):\n"
            "    if _np is None:\n"
            "        return None\n"
            "    def inner():\n"
            "        return _np.asarray(values)\n"
            "    return inner()\n"
        )
        assert _lint_snippet(tmp_path, source) == []

    def test_kernel_mutation_method_call(self, tmp_path):
        source = (
            "def kernel(graph, dfa):\n"
            "    graph._forward.clear()\n"
        )
        violations = _lint_snippet(tmp_path, source, name="compact.py")
        assert _rules(violations) == ["kernel-mutation"]
        assert "graph" in violations[0].message

    def test_kernel_mutation_assignment(self, tmp_path):
        source = (
            "def kernel(snapshot):\n"
            "    snapshot.forward[0] = ()\n"
        )
        violations = _lint_snippet(tmp_path, source, name="sharding.py")
        assert _rules(violations) == ["kernel-mutation"]

    def test_kernel_mutation_scoped_to_kernel_files(self, tmp_path):
        source = (
            "def kernel(graph):\n"
            "    graph._forward.clear()\n"
        )
        assert _lint_snippet(tmp_path, source, name="other.py") == []

    def test_kernel_mutation_allows_local_state(self, tmp_path):
        source = (
            "def kernel(graph):\n"
            "    seen = set()\n"
            "    seen.add(1)\n"
            "    return seen\n"
        )
        assert _lint_snippet(tmp_path, source, name="compact.py") == []

    def test_pickle_slots_raising_setattr_without_state(self, tmp_path):
        source = (
            "class Frozen:\n"
            "    __slots__ = ('x',)\n"
            "    def __setattr__(self, name, value):\n"
            "        raise AttributeError('immutable')\n"
        )
        violations = _lint_snippet(tmp_path, source)
        assert _rules(violations) == ["pickle-slots"]
        assert "'Frozen'" in violations[0].message

    def test_pickle_slots_inherited_protocol_suffices(self, tmp_path):
        source = (
            "class Base:\n"
            "    __slots__ = ()\n"
            "    def __getstate__(self):\n"
            "        return {}\n"
            "    def __setstate__(self, state):\n"
            "        pass\n"
            "class Frozen(Base):\n"
            "    __slots__ = ('x',)\n"
            "    def __setattr__(self, name, value):\n"
            "        raise AttributeError('immutable')\n"
        )
        assert _lint_snippet(tmp_path, source) == []

    def test_pickle_slots_inherited_raising_setattr_detected(self, tmp_path):
        source = (
            "class Base:\n"
            "    __slots__ = ()\n"
            "    def __setattr__(self, name, value):\n"
            "        raise AttributeError('immutable')\n"
            "class Child(Base):\n"
            "    __slots__ = ('x',)\n"
        )
        violations = _lint_snippet(tmp_path, source)
        assert _rules(violations) == ["pickle-slots", "pickle-slots"]
        assert {"'Base'", "'Child'"} == {
            v.message.split(" combines")[0].split("class ")[1]
            for v in violations}

    def test_storage_write_final_path(self, tmp_path):
        source = (
            "def save(directory):\n"
            "    with open(directory + '/manifest.json', 'w') as f:\n"
            "        f.write('{}')\n"
        )
        violations = _lint_snippet(tmp_path, source, subdir="storage")
        assert _rules(violations) == ["storage-write"]
        assert "os.replace" in violations[0].message

    def test_storage_write_tmp_path_allowed(self, tmp_path):
        source = (
            "import os\n"
            "def save(directory):\n"
            "    tmp = directory + '/manifest.json.tmp'\n"
            "    with open(tmp, 'w') as f:\n"
            "        f.write('{}')\n"
            "    os.replace(tmp, directory + '/manifest.json')\n"
        )
        assert _lint_snippet(tmp_path, source, subdir="storage") == []

    def test_storage_write_parameter_path_allowed(self, tmp_path):
        source = (
            "def _write_file(path, payload):\n"
            "    with open(path, 'wb') as f:\n"
            "        f.write(payload)\n"
        )
        assert _lint_snippet(tmp_path, source, subdir="storage") == []

    def test_storage_write_ignores_reads_and_other_dirs(self, tmp_path):
        read_only = (
            "def load(directory):\n"
            "    with open(directory + '/manifest.json') as f:\n"
            "        return f.read()\n"
        )
        assert _lint_snippet(tmp_path, read_only, subdir="storage") == []
        write_elsewhere = (
            "def save(directory):\n"
            "    with open(directory + '/out.json', 'w') as f:\n"
            "        f.write('{}')\n"
        )
        assert _lint_snippet(tmp_path, write_elsewhere) == []

    def test_bare_except(self, tmp_path):
        source = (
            "def risky():\n"
            "    try:\n"
            "        return 1\n"
            "    except:\n"
            "        return None\n"
        )
        violations = _lint_snippet(tmp_path, source)
        assert _rules(violations) == ["bare-except"]
        assert violations[0].line == 4

    def test_typed_except_allowed(self, tmp_path):
        source = (
            "def risky():\n"
            "    try:\n"
            "        return 1\n"
            "    except Exception:\n"
            "        return None\n"
        )
        assert _lint_snippet(tmp_path, source) == []

    def test_mutable_default(self, tmp_path):
        source = (
            "def collect(into=[]):\n"
            "    return into\n"
            "def tally(*, counts={}):\n"
            "    return counts\n"
        )
        violations = _lint_snippet(tmp_path, source)
        assert _rules(violations) == ["mutable-default", "mutable-default"]

    def test_none_default_allowed(self, tmp_path):
        source = (
            "def collect(into=None):\n"
            "    return [] if into is None else into\n"
        )
        assert _lint_snippet(tmp_path, source) == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------

class TestSuppressions:
    def test_same_line_named_rule(self, tmp_path):
        source = "import numpy as _np  # reprolint: ignore[numpy-gate]\n"
        assert _lint_snippet(tmp_path, source) == []

    def test_line_above(self, tmp_path):
        source = (
            "# reprolint: ignore[numpy-gate]\n"
            "import numpy as _np\n"
        )
        assert _lint_snippet(tmp_path, source) == []

    def test_blanket_ignore(self, tmp_path):
        source = "import numpy as _np  # reprolint: ignore\n"
        assert _lint_snippet(tmp_path, source) == []

    def test_wrong_rule_does_not_suppress(self, tmp_path):
        source = "import numpy as _np  # reprolint: ignore[bare-except]\n"
        assert _rules(_lint_snippet(tmp_path, source)) == ["numpy-gate"]

    def test_class_header_suppression_covers_block(self, tmp_path):
        source = (
            "try:\n"
            "    import numpy as _np\n"
            "except ImportError:\n"
            "    _np = None\n"
            "class Dense:  # reprolint: ignore[numpy-gate]\n"
            "    def rows(self):\n"
            "        return _np.zeros(4)\n"
            "    def cols(self):\n"
            "        return _np.zeros(4)\n"
        )
        assert _lint_snippet(tmp_path, source) == []

    def test_skip_file(self, tmp_path):
        source = (
            "# reprolint: skip-file\n"
            "import numpy as _np\n"
            "def bad(into=[]):\n"
            "    pass\n"
        )
        assert _lint_snippet(tmp_path, source) == []

    def test_suppression_in_docstring_is_inert(self, tmp_path):
        source = (
            '"""Docs quoting # reprolint: ignore[numpy-gate] syntax."""\n'
            "import numpy as _np\n"
        )
        assert _rules(_lint_snippet(tmp_path, source)) == ["numpy-gate"]

    def test_unknown_rule_in_suppression_errors(self, tmp_path):
        source = "x = 1  # reprolint: ignore[no-such-rule]\n"
        with pytest.raises(SystemExit):
            _lint_snippet(tmp_path, source)


# ----------------------------------------------------------------------
# CLI surface + the real tree
# ----------------------------------------------------------------------

class TestCliAndGate:
    def test_list_rules_catalog(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in RULES:
            assert name in out

    def test_exit_codes_and_location_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as _np\n")
        assert lint_main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "{}:1: numpy-gate:".format(bad) in out
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert lint_main([str(good)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_module_entry_point(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint", str(bad)],
            capture_output=True, text=True,
            env=dict(os.environ, PYTHONPATH=os.path.dirname(REPO_SRC)))
        assert proc.returncode == 1
        assert "mutable-default" in proc.stdout

    def test_src_repro_is_clean(self):
        assert lint_paths([REPO_SRC]) == []
