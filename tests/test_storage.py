"""Durable storage tests: WAL framing, snapshot files, PersistentGraph.

The acceptance bar this file enforces:

* kill -9 style crash simulation — a WAL with a torn / truncated tail
  recovers **exactly** the durable prefix (verified against an
  independently replayed reference graph, not the recovery code itself),
* a reopened mmap-backed store answers the differential RPQ battery
  identically to the in-memory build, across base, overlay and
  post-checkpoint states,
* checkpoint folds the overlay, bumps the generation, prunes the log and
  retires the old generation's files.
"""

import json
import os
import random

import pytest

from repro.cli import main
from repro.engine import Engine
from repro.errors import StorageError
from repro.graph.compact import (
    HAVE_NUMPY,
    CompactAdjacency,
    DeltaAdjacency,
    adjacency_snapshot,
)
from repro.graph.graph import MultiRelationalGraph
from repro.rpq import lconcat, lstar, lunion, rpq_pairs_basic, sym
from repro.storage import (
    PersistentGraph,
    WriteAheadLog,
    open_adjacency_snapshot,
    scan_wal,
    write_adjacency_snapshot,
)

EXPRESSIONS = [
    sym("a"),
    lconcat(sym("a"), sym("b")),
    lconcat(sym("a"), lstar(sym("b"))),
    lunion(lconcat(sym("a"), sym("b")), lstar(sym("c"))),
]


def reference_pairs(graph, expression):
    return rpq_pairs_basic(graph, expression)


def assert_store_matches(store, reference):
    """The store (however it is currently backed) answers like ``reference``."""
    assert store.order() == reference.order()
    assert store.size() == reference.size()
    assert store.vertices() == reference.vertices()
    for expression in EXPRESSIONS:
        assert store.pairs(expression) == reference_pairs(reference, expression)


def apply_entry(graph, entry):
    """Independent replay of one WAL entry onto a dict graph."""
    op = entry[1]
    if op == "+v":
        graph.add_vertex(entry[2])
    elif op == "-v":
        graph.remove_vertex(entry[2])
    elif op == "+e":
        graph.add_edge(entry[2], entry[3], entry[4])
    elif op == "-e":
        graph.remove_edge(entry[2], entry[3], entry[4])
    elif op == "pv":
        for key, value in entry[3].items():
            graph.set_vertex_property(entry[2], key, value)
    elif op == "pe":
        for key, value in entry[5].items():
            graph.set_edge_property(entry[2], entry[3], entry[4], key, value)


# ----------------------------------------------------------------------
# Write-ahead log
# ----------------------------------------------------------------------

class TestWriteAheadLog:
    def test_append_flush_scan(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path, sync="none") as wal:
            wal.append((1, "+v", "a"))
            wal.append((2, "+e", "a", "r", "b"))
        entries, _, torn = scan_wal(path)
        assert entries == [(1, "+v", "a"), (2, "+e", "a", "r", "b")]
        assert not torn

    def test_batching_defers_until_threshold(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, sync="batch", batch_size=4)
        for i in range(3):
            wal.append((i, "+v", str(i)))
        assert wal.pending == 3
        assert scan_wal(path)[0] == []  # nothing durable yet
        wal.append((3, "+v", "3"))  # hits the batch threshold
        assert wal.pending == 0
        assert len(scan_wal(path)[0]) == 4
        wal.close()

    def test_always_policy_is_immediately_durable(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, sync="always")
        wal.append((1, "+v", "a"))
        assert wal.pending == 0
        assert scan_wal(path)[0] == [(1, "+v", "a")]
        wal.close()

    def test_closed_log_rejects_appends(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        wal.close()
        with pytest.raises(StorageError):
            wal.append((1, "+v", "a"))

    def test_bad_magic_raises(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with open(path, "wb") as stream:
            stream.write(b"NOTAWAL!" + b"x" * 32)
        with pytest.raises(StorageError):
            scan_wal(path)

    def test_non_scalar_ids_rejected(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        with pytest.raises(StorageError) as info:
            wal.append((1, "+v", ("tu", "ple")))
        assert "JSON scalars" in str(info.value)
        wal.close()

    def test_corrupt_record_stops_replay_at_prefix(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path, sync="none") as wal:
            boundaries = []
            for i in range(5):
                wal.append((i, "+v", "vertex-{}".format(i)))
                wal.flush()
                boundaries.append(wal.tell())
        # Flip one payload byte inside the fourth record.
        with open(path, "r+b") as stream:
            stream.seek(boundaries[2] + 12)
            byte = stream.read(1)
            stream.seek(boundaries[2] + 12)
            stream.write(bytes([byte[0] ^ 0xFF]))
        entries, durable_end, torn = scan_wal(path)
        assert torn
        assert entries == [(i, "+v", "vertex-{}".format(i)) for i in range(3)]
        assert durable_end == boundaries[2]


# ----------------------------------------------------------------------
# Snapshot files
# ----------------------------------------------------------------------

def sample_graph():
    g = MultiRelationalGraph(name="snap")
    g.add_edge("a", "a", "b", weight=2)
    g.add_edge("b", "b", "c")
    g.add_edge("c", "a", "a")
    g.add_edge("b", "c", "b")  # self loop
    g.add_vertex("lonely", kind="hermit")
    return g


class TestSnapshotFiles:
    @pytest.mark.parametrize("mmap", [True, False])
    def test_round_trip(self, tmp_path, mmap):
        g = sample_graph()
        path = str(tmp_path / "g.rcsr")
        write_adjacency_snapshot(
            path, adjacency_snapshot(g), name="snap", version=g.version(),
            vertex_properties={"lonely": {"kind": "hermit"}},
            edge_properties={("a", "a", "b"): {"weight": 2}})
        snapshot, metadata = open_adjacency_snapshot(path, mmap=mmap,
                                                     verify=True)
        assert isinstance(snapshot, CompactAdjacency)
        assert snapshot.num_edges == g.size()
        assert set(snapshot.vertex_of) == set(g.vertices())
        assert metadata.vertex_properties == {"lonely": {"kind": "hermit"}}
        assert metadata.edge_properties == {("a", "a", "b"): {"weight": 2}}
        # Adjacency reads match the dict store.
        for label in g.labels():
            label_id = snapshot.label_ids[label]
            for vertex in g.vertices():
                vertex_id = snapshot.vertex_ids[vertex]
                got = {snapshot.vertex_of[i]
                       for i in snapshot.out_neighbors(vertex_id, label_id)}
                assert got == set(g.successors(vertex, label))

    @pytest.mark.skipif(not HAVE_NUMPY, reason="mmap mode needs numpy")
    def test_mmap_arrays_are_memory_mapped(self, tmp_path):
        # The skipif above IS the gate; a bare import keeps the test body
        # honest about needing real numpy.
        import numpy as np  # reprolint: ignore[numpy-gate]
        g = sample_graph()
        path = str(tmp_path / "g.rcsr")
        write_adjacency_snapshot(path, adjacency_snapshot(g))
        snapshot, _ = open_adjacency_snapshot(path, mmap=True)
        indptr, indices = snapshot.forward[0]
        assert isinstance(indptr.base if indptr.base is not None else indptr,
                          np.memmap)

    def test_overlay_folds_with_tombstones(self, tmp_path):
        g = sample_graph()
        base = adjacency_snapshot(g)
        g.remove_vertex("c")
        g.add_edge("b", "a", "d")
        view = adjacency_snapshot(g)
        assert isinstance(view, DeltaAdjacency)
        path = str(tmp_path / "g.rcsr")
        write_adjacency_snapshot(path, view)
        snapshot, _ = open_adjacency_snapshot(path, verify=True)
        assert set(snapshot.vertex_of) == set(g.vertices())
        assert snapshot.num_edges == g.size()
        del base

    def test_verify_detects_corruption(self, tmp_path):
        path = str(tmp_path / "g.rcsr")
        write_adjacency_snapshot(path, adjacency_snapshot(sample_graph()))
        size = os.path.getsize(path)
        with open(path, "r+b") as stream:
            stream.seek(size - 3)
            stream.write(b"\xff")
        with pytest.raises(StorageError):
            open_adjacency_snapshot(path, mmap=False, verify=True)

    def test_bad_magic_raises(self, tmp_path):
        path = str(tmp_path / "g.rcsr")
        with open(path, "wb") as stream:
            stream.write(b"garbage!" * 4)
        with pytest.raises(StorageError):
            open_adjacency_snapshot(path)

    def test_non_scalar_ids_rejected(self, tmp_path):
        g = MultiRelationalGraph([(("tu", "ple"), "r", "b")])
        with pytest.raises(StorageError):
            write_adjacency_snapshot(str(tmp_path / "g.rcsr"),
                                     adjacency_snapshot(g))

    def test_empty_graph_round_trips(self, tmp_path):
        path = str(tmp_path / "empty.rcsr")
        write_adjacency_snapshot(path,
                                 adjacency_snapshot(MultiRelationalGraph()))
        snapshot, _ = open_adjacency_snapshot(path, verify=True)
        assert snapshot.num_vertices == 0 and snapshot.num_edges == 0


@pytest.mark.skipif(not HAVE_NUMPY, reason="digraph snapshots need numpy")
class TestDigraphSnapshotFiles:
    def test_round_trip_serves_kernels(self, tmp_path):
        from repro.algorithms.digraph import DiGraph
        from repro.graph.compact import digraph_snapshot
        from repro.storage import open_digraph_snapshot, write_digraph_snapshot
        rng = random.Random(7)
        g = DiGraph()
        for v in range(30):
            g.add_vertex(v)
        for _ in range(80):
            g.add_edge(rng.randrange(30), rng.randrange(30),
                       rng.choice((0.5, 1.0)))
        built = digraph_snapshot(g)
        path = str(tmp_path / "d.rcsr")
        write_digraph_snapshot(path, built)
        reopened = open_digraph_snapshot(path, mmap=True)
        assert reopened.num_vertices == built.num_vertices
        for source in (0, 7, 29):
            assert reopened.bfs_distances(source) == built.bfs_distances(source)
        assert list(reopened.strongly_connected_component_labels()) == \
            list(built.strongly_connected_component_labels())
        assert reopened.geodesic_summary() == built.geodesic_summary()
        assert reopened.closeness_centrality_scores() == \
            built.closeness_centrality_scores()


# ----------------------------------------------------------------------
# PersistentGraph lifecycle
# ----------------------------------------------------------------------

class TestPersistentGraphLifecycle:
    def test_create_mutate_reopen_lazily(self, tmp_path):
        directory = str(tmp_path / "store")
        g = sample_graph()
        store = PersistentGraph.create(directory, graph=g, name="snap")
        g.add_edge("c", "b", "d")
        g.remove_edge("b", "b", "c")
        g.set_vertex_property("d", "kind", "late")
        store.close()

        reopened = PersistentGraph.open(directory)
        assert not reopened.materialized
        assert_store_matches(reopened, g)
        assert reopened.vertex_properties("d") == {"kind": "late"}
        assert reopened.vertex_properties("lonely") == {"kind": "hermit"}
        assert reopened.edge_properties("a", "a", "b") == {"weight": 2}
        reopened.close()

    def test_materialized_reopen_equals_original(self, tmp_path):
        directory = str(tmp_path / "store")
        g = sample_graph()
        with PersistentGraph.create(directory, graph=g):
            g.add_edge("x", "a", "y")
            g.remove_vertex("c")
        with PersistentGraph.open(directory, materialize=True) as reopened:
            back = reopened.graph()
            assert back == g
            assert back.vertex_properties("lonely") == {"kind": "hermit"}
            # The mapped snapshot was adopted: no rebuild on first query.
            assert getattr(back, "_compact_snapshot_cache") is not None
            assert_store_matches(reopened, g)

    def test_mutation_materializes_and_persists(self, tmp_path):
        directory = str(tmp_path / "store")
        with PersistentGraph.create(directory, graph=sample_graph()):
            pass
        with PersistentGraph.open(directory) as store:
            assert not store.materialized
            store.add_edge("fresh", "a", "b", via="write-path")
            assert store.materialized
        with PersistentGraph.open(directory) as reopened:
            assert "fresh" in reopened.vertices()
            assert reopened.edge_properties("fresh", "a", "b") == \
                {"via": "write-path"}

    def test_checkpoint_folds_and_prunes(self, tmp_path):
        directory = str(tmp_path / "store")
        g = sample_graph()
        store = PersistentGraph.create(directory, graph=g)
        for i in range(5):
            g.add_edge("a", "b", "extra-{}".format(i))
        g.remove_vertex("c")
        info = store.checkpoint()
        assert info["generation"] == 2
        assert info["wal_bytes"] == 8  # fresh log: magic only
        survivors = sorted(os.listdir(directory))
        assert survivors == ["manifest.json", "snapshot-000002.rcsr",
                             "wal-000002.log"]
        store.close()
        with PersistentGraph.open(directory) as reopened:
            assert reopened.info()["recovered_wal_records"] == 0
            assert_store_matches(reopened, g)

    def test_lazy_checkpoint_without_materialization(self, tmp_path):
        directory = str(tmp_path / "store")
        g = sample_graph()
        with PersistentGraph.create(directory, graph=g):
            g.add_edge("c", "c", "c")
            g.remove_edge("a", "a", "b")
        with PersistentGraph.open(directory) as store:
            assert store.info()["overlay_ops"] > 0
            info = store.checkpoint()
            assert not store.materialized
            assert info["overlay_ops"] == 0
            assert_store_matches(store, g)
        with PersistentGraph.open(directory) as reopened:
            assert_store_matches(reopened, g)

    def test_double_create_rejected(self, tmp_path):
        directory = str(tmp_path / "store")
        PersistentGraph.create(directory).close()
        with pytest.raises(StorageError):
            PersistentGraph.create(directory)

    def test_open_missing_store_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            PersistentGraph.open(str(tmp_path / "nope"))

    def test_unloggable_mutation_rejected_before_applying(self, tmp_path):
        # The precheck must veto BEFORE the graph mutates: otherwise the
        # in-memory store would be permanently ahead of journal + WAL.
        directory = str(tmp_path / "store")
        g = sample_graph()
        with PersistentGraph.create(directory, graph=g):
            before = g.version()
            with pytest.raises(StorageError):
                g.add_vertex(("tu", "ple"))
            with pytest.raises(StorageError):
                g.add_edge("a", ("tu", "ple"), "b")
            with pytest.raises(StorageError):
                g.set_vertex_property("a", "k", {1, 2})
            assert not g.has_vertex(("tu", "ple"))
            assert not g.has_label(("tu", "ple"))
            assert g.vertex_properties("a") == {}
            assert g.version() == before  # nothing applied at all
        with PersistentGraph.open(directory) as reopened:
            assert reopened.graph() == g  # durable state agrees too

    def test_closed_store_rejects_reads(self, tmp_path):
        directory = str(tmp_path / "store")
        store = PersistentGraph.create(directory)
        store.close()
        with pytest.raises(StorageError):
            store.order()


class TestCrashRecovery:
    """kill -9 simulation: torn WAL tails recover exactly the durable prefix."""

    def build_store(self, directory):
        g = MultiRelationalGraph(name="crashy")
        store = PersistentGraph.create(directory, graph=g, sync="always")
        initial = g.copy()
        rng = random.Random(99)
        for step in range(40):
            roll = rng.random()
            if roll < 0.55 or g.size() < 3:
                g.add_edge("v{}".format(rng.randrange(12)),
                           rng.choice("abc"),
                           "v{}".format(rng.randrange(12)))
            elif roll < 0.8:
                edge = rng.choice(sorted(g.edge_set(), key=repr))
                g.remove_edge(edge.tail, edge.label, edge.head)
            else:
                g.set_vertex_property(
                    rng.choice(sorted(g.vertices())), "step", step)
        store._wal.flush()
        wal_path = store._wal.path
        store.close()
        return initial, wal_path

    @pytest.mark.parametrize("chopped_bytes", [1, 5, 11, 64])
    def test_truncated_tail_recovers_durable_prefix(self, tmp_path,
                                                    chopped_bytes):
        directory = str(tmp_path / "store")
        initial, wal_path = self.build_store(directory)
        with open(wal_path, "r+b") as stream:
            stream.truncate(os.path.getsize(wal_path) - chopped_bytes)
        surviving, _, _ = scan_wal(wal_path)
        expected = initial.copy()
        for entry in surviving:
            apply_entry(expected, entry)
        with PersistentGraph.open(directory) as store:
            assert_store_matches(store, expected)
            assert store.graph() == expected
        # The torn tail was repaired: a second open replays cleanly.
        with PersistentGraph.open(directory) as store:
            assert not store.info()["recovered_tail_torn"]
            assert_store_matches(store, expected)

    def test_close_flushes_pending_batch_records(self, tmp_path):
        """PR 7 satellite: a clean close() must flush sync="batch" records
        still sitting below batch_size — only a crash loses them."""
        directory = str(tmp_path / "store")
        g = MultiRelationalGraph()
        store = PersistentGraph.create(directory, graph=g, sync="batch",
                                       batch_size=1000)
        g.add_edge("a", "r", "b")
        g.add_edge("b", "r", "c")
        assert store._wal._pending  # below batch_size: still buffered
        store.close()
        with PersistentGraph.open(directory) as reopened:
            assert reopened.graph().has_edge("a", "r", "b")
            assert reopened.graph().has_edge("b", "r", "c")

    def test_unflushed_batch_is_the_loss_window(self, tmp_path):
        directory = str(tmp_path / "store")
        g = MultiRelationalGraph()
        store = PersistentGraph.create(directory, graph=g, sync="batch",
                                       batch_size=1000)
        g.add_edge("a", "r", "b")
        durable = g.copy()
        store.flush()
        g.add_edge("b", "r", "c")  # buffered, never flushed
        # Simulate the crash: abandon the store without close()/flush().
        store._wal._stream.close()
        store._wal._stream = None
        with PersistentGraph.open(directory) as reopened:
            assert reopened.graph() == durable


class TestReopenDifferential:
    """Reopened mmap stores answer the RPQ battery identically under churn."""

    @pytest.mark.parametrize("seed", [3, 17])
    def test_differential_under_churn(self, tmp_path, seed):
        rng = random.Random(seed)
        directory = str(tmp_path / "store-{}".format(seed))
        g = MultiRelationalGraph(name="churn")
        for v in range(14):
            g.add_vertex("v{}".format(v))
        store = PersistentGraph.create(directory, graph=g)
        for round_number in range(6):
            for _ in range(rng.randrange(2, 12)):
                roll = rng.random()
                if roll < 0.6 or g.size() < 4:
                    g.add_edge("v{}".format(rng.randrange(14)),
                               rng.choice("abc"),
                               "v{}".format(rng.randrange(14)))
                elif roll < 0.85:
                    edge = rng.choice(sorted(g.edge_set(), key=repr))
                    g.remove_edge(edge.tail, edge.label, edge.head)
                else:
                    vertex = rng.choice(sorted(g.vertices()))
                    g.remove_vertex(vertex)
                    g.add_vertex(vertex)
            if round_number == 3:
                store.checkpoint()
            store.flush()
            reopened = PersistentGraph.open(directory)
            assert_store_matches(reopened, g)
            reopened.close()
        store.close()


# ----------------------------------------------------------------------
# Engine integration + CLI
# ----------------------------------------------------------------------

class TestEngineOpen:
    def test_engine_over_store(self, tmp_path):
        directory = str(tmp_path / "store")
        g = MultiRelationalGraph([("a", "alpha", "b"), ("b", "beta", "c"),
                                  ("c", "alpha", "d")])
        PersistentGraph.create(directory, graph=g).close()
        engine = Engine.open(directory)
        result = engine.query("[_, alpha, _] . [_, beta, _]")
        assert len(result) == 1
        assert engine.pairs("[_, alpha, _]") == \
            frozenset({("a", "b"), ("c", "d")})
        engine.graph.add_edge("d", "beta", "e")
        engine.store.flush()
        engine.store.close()
        with PersistentGraph.open(directory) as reopened:
            assert ("d", "beta", "e") in reopened.graph()


class TestCliDb:
    def run_cli(self, argv):
        import io as stdlib_io
        out = stdlib_io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_init_open_checkpoint_info(self, tmp_path):
        graph_file = str(tmp_path / "g.csv")
        with open(graph_file, "w") as stream:
            stream.write("a,knows,b\nb,knows,c\n#vertex,lonely\n")
        directory = str(tmp_path / "store")
        code, text = self.run_cli(["db", "init", directory,
                                   "--graph", graph_file, "--name", "demo"])
        assert code == 0 and json.loads(text)["generation"] == 1
        code, text = self.run_cli(["db", "open", directory])
        payload = json.loads(text)
        assert code == 0 and payload["order"] == 4 and payload["size"] == 2
        code, text = self.run_cli(
            ["db", "open", directory, "[_, knows, _] . [_, knows, _]"])
        assert code == 0 and "1 paths" in text
        code, text = self.run_cli(["db", "checkpoint", directory])
        assert code == 0 and json.loads(text)["generation"] == 2
        code, text = self.run_cli(["db", "info", directory, "--verify"])
        payload = json.loads(text)
        assert code == 0 and payload["snapshot_checksum"] == "ok"

    def test_info_on_missing_store_errors(self, tmp_path):
        code, text = self.run_cli(["db", "info", str(tmp_path / "nope")])
        assert code == 1 and "error:" in text
