"""Unit tests for the Edge value type."""

import pytest

from repro.core.edge import Edge, edge


class TestConstruction:
    def test_edge_is_a_triple(self):
        e = Edge("i", "alpha", "j")
        assert tuple(e) == ("i", "alpha", "j")

    def test_projections(self):
        e = Edge("i", "alpha", "j")
        assert e.tail == "i"
        assert e.label == "alpha"
        assert e.head == "j"

    def test_factory_function(self):
        assert edge(1, "knows", 2) == Edge(1, "knows", 2)

    def test_equals_plain_tuple(self):
        assert Edge("i", "a", "j") == ("i", "a", "j")

    def test_hash_matches_tuple(self):
        assert hash(Edge("i", "a", "j")) == hash(("i", "a", "j"))

    def test_usable_in_sets(self):
        s = {Edge("i", "a", "j"), ("i", "a", "j")}
        assert len(s) == 1

    def test_unpacking(self):
        tail, label, head = Edge("x", "r", "y")
        assert (tail, label, head) == ("x", "r", "y")

    def test_non_string_vertices(self):
        e = Edge(1, ("rel", 2), frozenset([3]))
        assert e.tail == 1
        assert e.label == ("rel", 2)
        assert e.head == frozenset([3])

    def test_repr_round_trips_through_eval(self):
        e = Edge("i", "alpha", "j")
        assert eval(repr(e)) == e


class TestDerivedOperations:
    def test_inverted_swaps_endpoints(self):
        assert Edge("i", "a", "j").inverted() == Edge("j", "a", "i")

    def test_inverted_twice_is_identity(self):
        e = Edge("i", "a", "j")
        assert e.inverted().inverted() == e

    def test_relabeled(self):
        assert Edge("i", "a", "j").relabeled("b") == Edge("i", "b", "j")

    def test_is_loop_true(self):
        assert Edge("i", "a", "i").is_loop()

    def test_is_loop_false(self):
        assert not Edge("i", "a", "j").is_loop()

    def test_endpoints_drops_label(self):
        assert Edge("i", "a", "j").endpoints() == ("i", "j")

    def test_ordering_is_tuple_ordering(self):
        assert Edge("a", "x", "b") < Edge("b", "x", "a")

    def test_immutability(self):
        e = Edge("i", "a", "j")
        with pytest.raises((AttributeError, TypeError)):
            e.tail = "z"
