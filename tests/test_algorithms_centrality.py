"""Centrality algorithms cross-validated against NetworkX."""

import random

import networkx as nx
import pytest

from repro.algorithms import (
    DiGraph,
    betweenness_centrality,
    closeness_centrality,
    degree_centrality,
    eigenvector_centrality,
    in_degree_centrality,
    katz_centrality,
    out_degree_centrality,
    pagerank,
)
from repro.errors import AlgorithmError, ConvergenceError


def random_edges(n, m, seed):
    rng = random.Random(seed)
    edges = set()
    while len(edges) < m:
        tail, head = rng.randrange(n), rng.randrange(n)
        if tail != head:
            edges.add((tail, head))
    return edges


@pytest.fixture(params=[0, 1, 2])
def pair(request):
    """(our DiGraph, the same graph in NetworkX) for three random seeds."""
    edges = random_edges(15, 45, seed=request.param)
    ours = DiGraph(edges)
    theirs = nx.DiGraph(list(edges))
    return ours, theirs


def assert_close(ours, theirs, tolerance=1e-6):
    assert set(ours) == set(theirs)
    for vertex, value in ours.items():
        assert value == pytest.approx(theirs[vertex], abs=tolerance), vertex


class TestAgainstNetworkx:
    def test_degree_centrality(self, pair):
        ours, theirs = pair
        assert_close(degree_centrality(ours), nx.degree_centrality(theirs))

    def test_in_degree_centrality(self, pair):
        ours, theirs = pair
        assert_close(in_degree_centrality(ours), nx.in_degree_centrality(theirs))

    def test_out_degree_centrality(self, pair):
        ours, theirs = pair
        assert_close(out_degree_centrality(ours), nx.out_degree_centrality(theirs))

    def test_closeness_centrality(self, pair):
        ours, theirs = pair
        assert_close(closeness_centrality(ours), nx.closeness_centrality(theirs))

    def test_betweenness_centrality(self, pair):
        ours, theirs = pair
        assert_close(betweenness_centrality(ours),
                     nx.betweenness_centrality(theirs))

    def test_betweenness_unnormalized(self, pair):
        ours, theirs = pair
        assert_close(betweenness_centrality(ours, normalized=False),
                     nx.betweenness_centrality(theirs, normalized=False))

    def test_pagerank(self, pair):
        ours, theirs = pair
        assert_close(pagerank(ours), nx.pagerank(theirs, tol=1e-12), 1e-8)

    def test_pagerank_personalized(self, pair):
        ours, theirs = pair
        seeds = {0: 1.0, 1: 2.0}
        assert_close(pagerank(ours, personalization=seeds),
                     nx.pagerank(theirs, personalization=seeds, tol=1e-12),
                     1e-8)

    def test_pagerank_damping(self, pair):
        ours, theirs = pair
        assert_close(pagerank(ours, damping=0.6),
                     nx.pagerank(theirs, alpha=0.6, tol=1e-12), 1e-8)

    def test_eigenvector_centrality(self, pair):
        ours, theirs = pair
        try:
            expected = nx.eigenvector_centrality(theirs, max_iter=2000, tol=1e-10)
        except nx.PowerIterationFailedConvergence:
            pytest.skip("networkx did not converge on this instance")
        assert_close(eigenvector_centrality(ours, max_iterations=2000),
                     expected, 1e-4)

    def test_katz_centrality(self, pair):
        ours, theirs = pair
        assert_close(katz_centrality(ours, alpha=0.05),
                     nx.katz_centrality(theirs, alpha=0.05, tol=1e-10), 1e-5)


class TestEdgeCasesAndErrors:
    def test_single_vertex_centralities_are_zero(self):
        g = DiGraph()
        g.add_vertex("only")
        assert degree_centrality(g) == {"only": 0.0}
        assert closeness_centrality(g) == {"only": 0.0}

    def test_empty_graph(self):
        g = DiGraph()
        assert pagerank(g) == {}
        assert eigenvector_centrality(g) == {}

    def test_pagerank_sums_to_one(self):
        g = DiGraph(random_edges(20, 60, seed=9))
        assert sum(pagerank(g).values()) == pytest.approx(1.0)

    def test_pagerank_dangling_nodes(self):
        g = DiGraph([("a", "b"), ("a", "c")])  # b, c dangle
        ours = pagerank(g)
        theirs = nx.pagerank(nx.DiGraph([("a", "b"), ("a", "c")]), tol=1e-12)
        assert_close(ours, theirs, 1e-8)

    def test_pagerank_validates_damping(self):
        with pytest.raises(AlgorithmError):
            pagerank(DiGraph([("a", "b")]), damping=1.5)

    def test_pagerank_validates_personalization(self):
        with pytest.raises(AlgorithmError):
            pagerank(DiGraph([("a", "b")]), personalization={"a": 0.0})

    def test_weighted_pagerank_biases_ranks(self):
        g = DiGraph()
        g.add_edge("s", "heavy", weight=10.0)
        g.add_edge("s", "light", weight=1.0)
        ranks = pagerank(g)
        assert ranks["heavy"] > ranks["light"]

    def test_eigenvector_non_convergence_raises(self):
        # A directed 2-cycle oscillates under power iteration only if the
        # iterate is antisymmetric; uniform start converges. Use a path
        # graph where mass drains to a sink and norm goes degenerate slowly:
        # force failure with a tiny iteration cap instead.
        g = DiGraph([("a", "b"), ("b", "a"), ("b", "c")])
        with pytest.raises(ConvergenceError):
            eigenvector_centrality(g, max_iterations=1)
