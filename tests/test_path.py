"""Unit tests for Path: the free monoid E*, projections, jointness."""

import pytest

from repro.core.edge import Edge
from repro.core.path import (
    EPSILON,
    Path,
    gamma_minus,
    gamma_plus,
    omega,
    omega_prime,
    sigma,
)
from repro.errors import (
    DisjointConcatenationError,
    EmptyPathProjectionError,
    IndexOutOfRangeError,
)


class TestConstruction:
    def test_empty_path_is_epsilon(self):
        assert Path() == EPSILON
        assert EPSILON.is_epsilon

    def test_single_edge_path(self):
        p = Path.single("i", "a", "j")
        assert len(p) == 1
        assert p[0] == Edge("i", "a", "j")

    def test_of_builds_from_triples(self):
        p = Path.of(("i", "a", "j"), ("j", "b", "k"))
        assert len(p) == 2

    def test_through_builds_joint_paths(self):
        p = Path.through(["i", "j", "k"], ["a", "b"])
        assert p == Path.of(("i", "a", "j"), ("j", "b", "k"))

    def test_through_validates_label_count(self):
        with pytest.raises(ValueError):
            Path.through(["i", "j"], ["a", "b"])

    def test_elements_are_edges(self):
        p = Path.of(("i", "a", "j"))
        assert isinstance(p[0], Edge)

    def test_rejects_non_triples(self):
        with pytest.raises(TypeError):
            Path([("i", "j")])

    def test_any_edge_is_a_length1_path(self):
        """The paper: any edge in E is a path with path length 1."""
        p = Path((Edge("i", "a", "j"),))
        assert len(p) == 1


class TestMonoidLaws:
    def test_concatenation(self, abc_path):
        c = Path.single("c", "g", "d")
        combined = abc_path + c
        assert len(combined) == 3
        assert combined[-1] == Edge("c", "g", "d")

    def test_epsilon_is_left_identity(self, abc_path):
        assert EPSILON + abc_path == abc_path

    def test_epsilon_is_right_identity(self, abc_path):
        assert abc_path + EPSILON == abc_path

    def test_associativity(self):
        a = Path.single("1", "x", "2")
        b = Path.single("2", "y", "3")
        c = Path.single("3", "z", "4")
        assert (a + b) + c == a + (b + c)

    def test_concatenation_not_commutative(self):
        a = Path.single("1", "x", "2")
        b = Path.single("3", "y", "4")
        assert a + b != b + a

    def test_concat_allows_disjoint(self):
        """Plain concatenation is the monoid operation — no join condition."""
        a = Path.single("1", "x", "2")
        b = Path.single("9", "y", "8")
        assert len(a + b) == 2

    def test_joint_concat_rejects_disjoint(self):
        a = Path.single("1", "x", "2")
        b = Path.single("9", "y", "8")
        with pytest.raises(DisjointConcatenationError):
            a.joint_concat(b)

    def test_joint_concat_accepts_adjacent(self):
        a = Path.single("1", "x", "2")
        b = Path.single("2", "y", "3")
        assert a.joint_concat(b) == a + b

    def test_joint_concat_with_epsilon_always_succeeds(self):
        a = Path.single("1", "x", "2")
        assert a.joint_concat(EPSILON) == a
        assert EPSILON.joint_concat(a) == a

    def test_repetition(self):
        loop = Path.single("v", "a", "v")
        assert len(loop * 3) == 3
        assert loop * 0 == EPSILON

    def test_negative_repetition_rejected(self):
        with pytest.raises(ValueError):
            Path.single("v", "a", "v") * -1


class TestProjections:
    def test_sigma_is_one_indexed(self, abc_path):
        """The paper's example: sigma(a, 1) is the first edge."""
        assert sigma(abc_path, 1) == Edge("a", "alpha", "b")
        assert sigma(abc_path, 2) == Edge("b", "beta", "c")

    def test_sigma_out_of_range(self, abc_path):
        with pytest.raises(IndexOutOfRangeError):
            sigma(abc_path, 3)
        with pytest.raises(IndexOutOfRangeError):
            sigma(abc_path, 0)

    def test_gamma_minus_is_first_vertex(self, abc_path):
        assert gamma_minus(abc_path) == "a"
        assert abc_path.tail == "a"

    def test_gamma_plus_is_last_vertex(self, abc_path):
        assert gamma_plus(abc_path) == "c"
        assert abc_path.head == "c"

    def test_gamma_on_single_edge(self):
        e = Edge("i", "a", "j")
        assert gamma_minus(e) == "i"
        assert gamma_plus(e) == "j"

    def test_gamma_undefined_on_epsilon(self):
        with pytest.raises(EmptyPathProjectionError):
            _ = EPSILON.tail
        with pytest.raises(EmptyPathProjectionError):
            _ = EPSILON.head

    def test_omega_on_edge(self):
        assert omega(Edge("i", "a", "j")) == "a"

    def test_omega_prime_is_the_path_label(self, abc_path):
        """Definition 2: omega'(a) concatenates the edge labels."""
        assert omega_prime(abc_path) == ("alpha", "beta")
        assert abc_path.label_path == ("alpha", "beta")

    def test_omega_prime_of_single_edge_is_its_label(self):
        """The paper: omega'(e) = omega(e) for a single edge."""
        p = Path.single("i", "a", "j")
        assert omega_prime(p) == ("a",)

    def test_omega_prime_of_epsilon_is_empty(self):
        assert omega_prime(EPSILON) == ()


class TestJointness:
    def test_single_edge_is_joint(self):
        """Definition 3: ||a|| = 1 implies joint."""
        assert Path.single("i", "a", "j").is_joint

    def test_adjacent_pair_is_joint(self, abc_path):
        assert abc_path.is_joint

    def test_disjoint_pair_detected(self):
        p = Path.of(("i", "a", "j"), ("k", "b", "m"))
        assert not p.is_joint

    def test_epsilon_is_joint_by_convention(self):
        assert EPSILON.is_joint

    def test_long_joint_path(self):
        p = Path.through("abcdef", ["x"] * 5)
        assert p.is_joint

    def test_disjointness_anywhere_breaks_it(self):
        p = Path.of(("a", "x", "b"), ("b", "x", "c"), ("z", "x", "d"))
        assert not p.is_joint


class TestInspection:
    def test_vertices_of_joint_path(self, abc_path):
        assert abc_path.vertices() == ("a", "b", "c")

    def test_vertices_of_disjoint_path_shows_gap(self):
        p = Path.of(("a", "x", "b"), ("c", "y", "d"))
        assert p.vertices() == ("a", "b", "c", "d")

    def test_vertices_of_epsilon(self):
        assert EPSILON.vertices() == ()

    def test_visits(self, abc_path):
        assert abc_path.visits("b")
        assert not abc_path.visits("z")

    def test_uses_label(self, abc_path):
        assert abc_path.uses_label("alpha")
        assert not abc_path.uses_label("gamma")

    def test_simple_path(self, abc_path):
        assert abc_path.is_simple()

    def test_loop_is_not_simple(self):
        assert not Path.single("v", "a", "v").is_simple()

    def test_revisiting_is_not_simple(self):
        p = Path.through("aba", ["x", "y"])
        assert not p.is_simple()

    def test_epsilon_is_simple(self):
        assert EPSILON.is_simple()

    def test_reversed_inverts_edges_and_order(self, abc_path):
        r = abc_path.reversed()
        assert r == Path.of(("c", "beta", "b"), ("b", "alpha", "a"))

    def test_reversal_is_anti_automorphism(self):
        a = Path.single("1", "x", "2")
        b = Path.single("2", "y", "3")
        assert (a + b).reversed() == b.reversed() + a.reversed()

    def test_prefix_suffix(self, abc_path):
        assert abc_path.prefix(1) == Path.single("a", "alpha", "b")
        assert abc_path.suffix(1) == Path.single("b", "beta", "c")
        assert abc_path.prefix(0) == EPSILON
        assert abc_path.suffix(0) == EPSILON

    def test_slicing_returns_path(self, abc_path):
        assert isinstance(abc_path[0:1], Path)
        assert abc_path[0:1] == Path.single("a", "alpha", "b")

    def test_str_renders_like_the_paper(self, abc_path):
        """The paper prints (i, alpha, j, j, beta, k)."""
        assert str(abc_path) == "(a, alpha, b, b, beta, c)"

    def test_str_of_epsilon(self):
        assert str(EPSILON) == "epsilon"

    def test_hashable_and_set_usable(self, abc_path):
        assert len({abc_path, Path(abc_path)}) == 1
