"""WAL-shipped replication: segments, catch-up, chaos, HTTP, promote.

The replication robustness gate.  Four layers of coverage:

* **Segment log units** — rotation, cursor tokens, scrub/verify,
  archival and the reset-base gap semantics replicas depend on.
* **Loopback replication** — a :class:`ReplicaGraph` tailing a
  :class:`PrimaryFeed` in-process: bootstrap, catch-up, durable
  reopen, cursor-gap re-bootstrap, promote-on-failure.
* **Chaos differential** — a seeded fault schedule (torn ships,
  duplicate fetches, apply/cursor I/O errors, primary degradation and
  heal) driven over primary + replica.  The contract after *every*
  step: the replica either raises a **typed** error or — once caught
  up — answers every expression **set-equal** to the primary.  A
  silently diverged replica fails the run immediately.
* **Service tier** — the replica HTTP server end-to-end (lag headers,
  bounded-staleness 503s, read-only 403s, keep-alive, access logs) and
  a kill -9 of a live replica subprocess mid-tail, reopened and
  differentially checked against an independently replayed reference.

Schedules are deterministic (fixed seeds, counter-triggered faults):
a failure replays identically under ``pytest -k``.
"""

import asyncio
import json
import os
import random
import re
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.concurrency import tracking_scope, witness_scope
from repro.errors import (
    ReplicaReadOnlyError,
    ReplicaStaleError,
    ReplicationCorruptionError,
    ReplicationCursorGapError,
    ReplicationError,
    StorageError,
)
from repro.faults import FaultPlan, clear_plan, fault_scope
from repro.graph.graph import MultiRelationalGraph
from repro.replication import (
    PrimaryFeed,
    ReplicaGraph,
    ReplicaTailer,
    promote_replica,
    verify_store,
)
from repro.rpq import lconcat, lstar, lunion, rpq_pairs_basic, sym
from repro.storage import (
    PersistentGraph,
    ReplicationCursor,
    WalSegments,
    decode_frames,
    scrub_wal_file,
)

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

EXPRESSIONS = (
    sym("a"),
    lstar(sym("b")),
    lconcat(sym("a"), lstar(sym("b"))),
    lunion(sym("a"), sym("c")),
)


@pytest.fixture(autouse=True)
def disarmed():
    clear_plan()
    yield
    clear_plan()


@pytest.fixture(autouse=True)
def concurrency_witness():
    """Armed lock-order witness + leak registry over every test here:
    replication adds a lock level (``replication.replica``) and two
    long-lived handle kinds (replica dirs, segment logs), so each run
    also proves ordering stayed acyclic and every handle was released.
    """
    with witness_scope() as witness, tracking_scope() as tracker:
        yield
        witness.assert_acyclic()
        tracker.assert_empty()


# ----------------------------------------------------------------------
# Segment log units
# ----------------------------------------------------------------------

class TestSegments:

    def test_rotation_and_cursor_walk(self, tmp_path):
        with WalSegments(str(tmp_path / "seg"), segment_bytes=256) as log:
            for version in range(1, 61):
                log.append((version, "+v", "v{}".format(version)))
            log.flush()
            assert log.last_version == 60
            manifest = log.verify()
            assert manifest["ok"], manifest
            assert len(manifest["segments"]) > 1, "no rotation at 256B caps"
            # Walk the whole log through the ship cursor in small bites.
            cursor = log.cursor_for_version(0)
            entries = []
            for _ in range(1000):
                result = log.read_from(cursor, max_bytes=300)
                entries.extend(decode_frames(result.data))
                cursor = result.cursor
                if result.at_end:
                    break
            assert [e[0] for e in entries] == list(range(1, 61))
            assert entries == list(log.iter_entries(after_version=0))

    def test_cursor_tokens(self, tmp_path):
        cursor = ReplicationCursor(3, 17)
        assert ReplicationCursor.parse(cursor.token()) == cursor
        for bad in ("", "x", "1", "1:2:3", "0:17", "-1:8", "a:b"):
            with pytest.raises(ReplicationError):
                ReplicationCursor.parse(bad)

    def test_archive_and_reset_gap_stale_cursors(self, tmp_path):
        with WalSegments(str(tmp_path / "seg"), segment_bytes=128) as log:
            for version in range(1, 41):
                log.append((version, "+v", version))
            log.flush()
            stale = log.cursor_for_version(0)
            log.archive_through(20)
            with pytest.raises(ReplicationCursorGapError):
                log.read_from(stale)
            # Survivors are still readable from the retention floor.
            cursor = log.cursor_for_version(log.base_version)
            remaining = []
            while True:
                result = log.read_from(cursor)
                remaining.extend(decode_frames(result.data))
                cursor = result.cursor
                if result.at_end:
                    break
            assert remaining and remaining[-1][0] == 40
            # reset_base never reuses indices: every old cursor gaps.
            log.reset_base(40)
            with pytest.raises(ReplicationCursorGapError):
                log.read_from(stale)

    def test_scrub_reports_first_corrupt_record(self, tmp_path):
        with WalSegments(str(tmp_path / "seg")) as log:
            for version in range(1, 11):
                log.append((version, "+v", "vertex-{}".format(version)))
            log.flush()
            log.seal_tail()
            name = os.path.join(
                str(tmp_path / "seg"),
                sorted(entry for entry in os.listdir(str(tmp_path / "seg"))
                       if entry.endswith(".wal"))[-1])
        records, _end, finding = scrub_wal_file(name)
        assert records == 10 and finding is None
        data = bytearray(open(name, "rb").read())
        data[len(data) // 2] ^= 0xFF
        with open(name + ".tmp", "wb") as stream:
            stream.write(bytes(data))
        os.replace(name + ".tmp", name)
        _records, _end, finding = scrub_wal_file(name)
        assert finding is not None and finding["kind"] == "corrupt"
        assert finding["record"] >= 1 and "crc" in finding["reason"]

    def test_decode_frames_rejects_torn_batch(self):
        with pytest.raises(ReplicationCorruptionError):
            decode_frames(b"\x0c\x00\x00\x00garbage")


# ----------------------------------------------------------------------
# Loopback replication
# ----------------------------------------------------------------------

def _primary(tmp_path, name="loop", edges=20, sync="batch"):
    store = PersistentGraph.create(str(tmp_path / name), name=name,
                                   replicate=True, sync=sync)
    for i in range(edges):
        store.add_edge("u{}".format(i), "a", "u{}".format(i + 1))
        if i % 3 == 0:
            store.add_edge("u{}".format(i), "b", "u{}".format(i // 2))
    return store


def _catch_up(replica, feed, rounds=50):
    for _ in range(rounds):
        report = replica.poll_once(feed)
        if report["at_end"] and report["lag_records"] == 0:
            return report
    raise AssertionError("replica never caught up")


def _assert_equal_answers(replica, store):
    for expression in EXPRESSIONS:
        assert replica.pairs(expression) == \
            rpq_pairs_basic(store.graph(), expression), \
            "replica diverged on {!r}".format(expression)


class TestLoopback:

    def test_bootstrap_catch_up_and_reopen(self, tmp_path):
        with _primary(tmp_path) as store:
            feed = PrimaryFeed(store)
            replica = ReplicaGraph.bootstrap(str(tmp_path / "rep"), feed)
            _catch_up(replica, feed)
            _assert_equal_answers(replica, store)
            store.add_edge("u99", "c", "u0")
            store.remove_edge("u0", "a", "u1")
            store.set_vertex_property("u99", "kind", "late")
            _catch_up(replica, feed)
            _assert_equal_answers(replica, store)
            assert replica.vertex_properties("u99") == {"kind": "late"}
            applied = replica.applied_version
            replica.close()
            # Reopen replays the locally persisted segment log: no
            # network, same applied cursor, same answers.
            replica = ReplicaGraph.open(str(tmp_path / "rep"), verify=True)
            assert replica.applied_version == applied
            _assert_equal_answers(replica, store)
            replica.close()

    def test_checkpoint_archival_gaps_lagging_replica(self, tmp_path):
        with _primary(tmp_path) as store:
            feed = PrimaryFeed(store)
            replica = ReplicaGraph.bootstrap(str(tmp_path / "rep"), feed)
            _catch_up(replica, feed)
            before = replica.rebootstraps
            for i in range(30):
                store.add_edge("n{}".format(i), "c", "n{}".format(i + 1))
            store.checkpoint()  # archives the shipped prefix
            for i in range(30):
                store.add_edge("m{}".format(i), "b", "m{}".format(i + 1))
            tailer = ReplicaTailer(replica, feed, poll_interval=0.01)
            for _ in range(80):
                tailer.step()
                if tailer.state()["ready"]:
                    break
            assert tailer.state()["ready"], tailer.state()
            assert replica.rebootstraps >= before
            _assert_equal_answers(replica, store)
            replica.close()

    def test_stale_bound_and_lag_shape(self, tmp_path):
        with _primary(tmp_path) as store:
            feed = PrimaryFeed(store)
            replica = ReplicaGraph.bootstrap(str(tmp_path / "rep"), feed)
            _catch_up(replica, feed)
            records, seconds = replica.lag()
            assert records == 0 and seconds >= 0.0
            with pytest.raises(ReplicaStaleError) as excinfo:
                replica.check_staleness(0.0)
            assert excinfo.value.retry_after > 0
            assert replica.check_staleness(3_600_000.0)[0] == 0
            replica.close()

    def test_promote_then_writable(self, tmp_path):
        with _primary(tmp_path) as store:
            feed = PrimaryFeed(store)
            replica = ReplicaGraph.bootstrap(str(tmp_path / "rep"), feed)
            _catch_up(replica, feed)
            reference = {
                expr: rpq_pairs_basic(store.graph(), expr)
                for expr in EXPRESSIONS}
            replica.close()
        report = promote_replica(str(tmp_path / "rep"))
        assert report["generation"] >= 2
        # Promoting twice is refused: the directory is a primary now.
        with pytest.raises(StorageError):
            promote_replica(str(tmp_path / "rep"))
        with PersistentGraph.open(str(tmp_path / "rep"),
                                  materialize=True) as promoted:
            for expr, answer in reference.items():
                assert rpq_pairs_basic(promoted.graph(), expr) == answer
            promoted.add_edge("after", "a", "promotion")  # writable again
        assert verify_store(str(tmp_path / "rep"))["ok"]

    def test_verify_store_flags_damage(self, tmp_path):
        with _primary(tmp_path) as store:
            feed = PrimaryFeed(store)
            replica = ReplicaGraph.bootstrap(str(tmp_path / "rep"), feed)
            _catch_up(replica, feed)
            replica.close()
            assert verify_store(str(store.directory))["ok"]
        report = verify_store(str(tmp_path / "rep"))
        assert report["ok"] and report["kind"] == "replica"
        segments_dir = tmp_path / "rep" / "segments"
        victim = sorted(p for p in os.listdir(str(segments_dir))
                        if p.endswith(".wal"))[0]
        path = str(segments_dir / victim)
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        with open(path + ".tmp", "wb") as stream:
            stream.write(bytes(blob))
        os.replace(path + ".tmp", path)
        report = verify_store(str(tmp_path / "rep"))
        assert not report["ok"]
        assert report["first_corrupt"] is not None


# ----------------------------------------------------------------------
# Chaos differential
# ----------------------------------------------------------------------

CHAOS_SEEDS = (7, 29)
CHAOS_STEPS = 60

#: Faults armed at random over the replication path (``times=1`` each).
#: ``wal.write`` degrades the primary so heal-time ``reset_base`` gaps
#: every replica cursor — the forced re-bootstrap path.
CHAOS_MENU = (
    ("replication.ship", "torn", {"fraction": 0.5}),
    ("replication.ship", "torn", {"fraction": 0.05}),
    ("replication.ship", "dup", {}),
    ("replication.ship", "eio", {}),
    ("replication.snapshot", "torn", {"fraction": 0.5}),
    ("replication.snapshot", "eio", {}),
    ("replication.apply", "eio", {}),
    ("replication.cursor", "eio", {}),
    ("wal.write", "eio", {}),
)


def _chaos_run(tmp_path, seed):
    rng = random.Random(seed)
    store = PersistentGraph.create(
        str(tmp_path / "chaos-{}".format(seed)),
        name="chaos", replicate=True, sync="always")
    feed = PrimaryFeed(store)
    replica = ReplicaGraph.bootstrap(
        str(tmp_path / "chaos-{}-rep".format(seed)), feed)
    typed_errors = 0
    caught_up_checks = 0
    plan = FaultPlan(seed=seed)
    try:
        with fault_scope(plan):
            for step in range(CHAOS_STEPS):
                if rng.random() < 0.45:
                    site, kind, options = rng.choice(CHAOS_MENU)
                    plan.arm(site, kind, times=1, **options)
                # Primary-side churn (mutations may degrade the store
                # under an armed wal fault; heal on the next round).
                try:
                    for _ in range(rng.randrange(1, 4)):
                        tail = rng.randrange(30)
                        head = rng.randrange(30)
                        label = rng.choice(("a", "b", "c"))
                        if rng.random() < 0.2 and store.graph().size():
                            edges = sorted(store.graph()._edges, key=repr)
                            victim = rng.choice(edges)
                            store.remove_edge(victim.tail, victim.label,
                                              victim.head)
                        else:
                            store.add_edge(tail, label, head)
                    if rng.random() < 0.1:
                        store.checkpoint()
                except StorageError:
                    typed_errors += 1
                if store.degraded:
                    try:
                        store.checkpoint()
                    except StorageError:
                        typed_errors += 1
                        continue
                # Replica-side tail: every failure must be typed; a
                # cursor gap must recover through re-bootstrap.
                caught_up = False
                for _ in range(40):
                    try:
                        report = replica.poll_once(feed)
                    except ReplicationCursorGapError:
                        typed_errors += 1
                        try:
                            replica.rebootstrap(feed)
                        except (ReplicationError, StorageError):
                            typed_errors += 1
                        continue
                    except (ReplicationError, StorageError):
                        typed_errors += 1
                        continue
                    if report["at_end"] and report["lag_records"] == 0:
                        caught_up = True
                        break
                assert caught_up, \
                    "seed {} step {}: replica wedged".format(seed, step)
                # The differential contract: caught up means set-equal
                # on every expression, every step.
                _assert_equal_answers(replica, store)
                caught_up_checks += 1
    finally:
        replica.close()
        store.close()
    assert caught_up_checks == CHAOS_STEPS
    assert typed_errors > 0, \
        "seed {}: schedule armed faults but none surfaced".format(seed)
    return typed_errors


class TestChaos:

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_fault_schedule_differential(self, tmp_path, seed):
        _chaos_run(tmp_path, seed)


# ----------------------------------------------------------------------
# Service tier
# ----------------------------------------------------------------------

def _http(url, body=None, token="smoke", method=None, headers=None):
    request = urllib.request.Request(
        url, data=json.dumps(body).encode() if body is not None else None,
        headers=dict({"Authorization": "Bearer " + token}, **(headers or {})),
        method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), \
                json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


class TestReplicaHttp:

    def test_replica_service_end_to_end(self, tmp_path):
        from repro.service.http import serve, serve_replica

        root = tmp_path / "root"
        root.mkdir()
        store = _primary(root, name="g", edges=30)
        store.close()
        tokens = {"smoke": "tester"}
        access = []

        async def scenario():
            loop = asyncio.get_running_loop()
            primary_stop, replica_stop = asyncio.Event(), asyncio.Event()
            endpoints = {}
            primary_up, replica_up = asyncio.Event(), asyncio.Event()

            def primary_ready(host, port):
                endpoints["primary"] = "http://{}:{}".format(host, port)
                primary_up.set()

            def replica_ready(host, port):
                endpoints["replica"] = "http://{}:{}".format(host, port)
                endpoints["replica_port"] = port
                replica_up.set()

            primary_task = asyncio.ensure_future(serve(
                str(root), host="127.0.0.1", port=0, tokens=tokens,
                ready=primary_ready, stop_event=primary_stop,
                replicate=True, access_log=access.append))
            await primary_up.wait()
            replica_task = asyncio.ensure_future(serve_replica(
                str(tmp_path / "rep"), endpoints["primary"],
                host="127.0.0.1", port=0, graph="g", tokens=tokens,
                primary_token="smoke", poll_interval=0.02,
                ready=replica_ready, stop_event=replica_stop))
            await replica_up.wait()

            def ready_state():
                return _http(endpoints["replica"] + "/readyz")

            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                status, _headers, state = await loop.run_in_executor(
                    None, ready_state)
                if status == 200:
                    break
                # While catching up /readyz 503s with its phase.
                assert state.get("status") in ("catching-up",
                                               "bootstrapping"), state
                await asyncio.sleep(0.05)
            assert status == 200, state

            query = {"query": "[_, a, _]"}
            qpath = "/v1/graphs/g/query"
            status, _h, primary_ans = await loop.run_in_executor(
                None, lambda: _http(endpoints["primary"] + qpath, query))
            assert status == 200
            status, headers, replica_ans = await loop.run_in_executor(
                None, lambda: _http(endpoints["replica"] + qpath, query))
            assert status == 200
            assert sorted(map(tuple, primary_ans["pairs"])) == \
                sorted(map(tuple, replica_ans["pairs"]))
            lag = headers.get("X-Repro-Replica-Lag", "")
            assert re.match(r"records=\d+; seconds=\d+\.\d+", lag), lag

            # Mutate the primary; the replica converges.
            status, _h, _payload = await loop.run_in_executor(
                None, lambda: _http(
                    endpoints["primary"] + "/v1/graphs/g/mutate",
                    {"add_edges": [["fresh", "a", "edge"]]}))
            assert status == 200
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                _s, _h, converged = await loop.run_in_executor(
                    None, lambda: _http(endpoints["replica"] + qpath, query))
                if converged["count"] == replica_ans["count"] + 1:
                    break
                await asyncio.sleep(0.05)
            assert converged["count"] == replica_ans["count"] + 1

            # Read-only: mutate and checkpoint 403 with a typed body.
            status, _h, payload = await loop.run_in_executor(
                None, lambda: _http(
                    endpoints["replica"] + "/v1/graphs/g/mutate",
                    {"add_edges": [["x", "a", "y"]]}))
            assert status == 403 and payload["read_only"]

            # An impossible staleness bound 503s with backoff + lag.
            status, headers, payload = await loop.run_in_executor(
                None, lambda: _http(
                    endpoints["replica"] + qpath,
                    dict(query, max_staleness_ms=0)))
            assert status == 503 and payload["stale"]
            assert headers.get("Retry-After")
            assert "records=" in headers.get("X-Repro-Replica-Lag", "")

            # Unsupported engine options are rejected, not mis-served.
            status, _h, payload = await loop.run_in_executor(
                None, lambda: _http(endpoints["replica"] + qpath,
                                    dict(query, max_length=4)))
            assert status == 400

            replica_stop.set()
            await asyncio.wait_for(replica_task, 15)
            primary_stop.set()
            await asyncio.wait_for(primary_task, 15)

        asyncio.run(scenario())
        assert access, "primary access log stayed empty"
        entry = access[-1]
        assert {"ts", "remote", "method", "path", "status",
                "elapsed_ms"} <= set(entry)

    def test_keep_alive_and_access_log(self, tmp_path):
        from repro.service.http import serve

        root = tmp_path / "root"
        root.mkdir()
        _primary(root, name="g", edges=5).close()
        access = []

        async def scenario():
            loop = asyncio.get_running_loop()
            stop = asyncio.Event()
            up = asyncio.Event()
            endpoint = {}

            def on_ready(host, port):
                endpoint["port"] = port
                up.set()

            task = asyncio.ensure_future(serve(
                str(root), host="127.0.0.1", port=0,
                ready=on_ready, stop_event=stop,
                access_log=access.append))
            await up.wait()

            def exchange():
                conn = socket.create_connection(
                    ("127.0.0.1", endpoint["port"]), timeout=10)
                try:
                    request = (b"GET /healthz HTTP/1.1\r\nHost: x\r\n"
                               b"Connection: keep-alive\r\n\r\n")
                    chunks = []
                    for _ in range(2):
                        conn.sendall(request)
                        time.sleep(0.2)
                        chunks.append(conn.recv(65536).decode())
                    # Without the header the connection closes after one
                    # response: the reuse is strictly opt-in.
                    plain = socket.create_connection(
                        ("127.0.0.1", endpoint["port"]), timeout=10)
                    try:
                        plain.sendall(b"GET /healthz HTTP/1.1\r\n"
                                      b"Host: x\r\n\r\n")
                        time.sleep(0.2)
                        one = plain.recv(65536).decode()
                        closed = plain.recv(65536)
                    finally:
                        plain.close()
                    return chunks, one, closed
                finally:
                    conn.close()

            chunks, one, closed = await loop.run_in_executor(None, exchange)
            blob = "".join(chunks)
            assert blob.count("HTTP/1.1 200") == 2, blob[:400]
            assert "Keep-Alive:" in blob and "Connection: keep-alive" in blob
            assert "Connection: close" in one and closed == b""
            stop.set()
            await asyncio.wait_for(task, 15)

        asyncio.run(scenario())
        assert len(access) >= 3
        reused = [e for e in access if e["request_on_connection"] == 2]
        assert reused, "access log never saw the reused connection"


class TestKillReplicaSubprocess:

    def test_kill9_mid_tail_reopen_differential(self, tmp_path):
        """kill -9 a live replica server mid-tail; its reopened state
        must exactly match an independent replay of the primary's log
        through the replica's applied cursor — no holes, no ghosts."""
        root = tmp_path / "root"
        root.mkdir()
        _primary(root, name="g", edges=10).close()
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        primary = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", str(root),
             "--port", "0", "--replicate"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env)
        replica_dir = str(tmp_path / "rep")
        replica = None
        try:
            line = primary.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", line)
            assert match, "primary never announced: " + repr(line)
            primary_url = "http://{}:{}".format(match.group(1),
                                                match.group(2))
            replica = subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "serve", replica_dir,
                 "--replica-of", primary_url, "--graph", "g",
                 "--port", "0", "--poll-interval", "0.02"],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
                env=env)
            line = replica.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", line)
            assert match, "replica never announced: " + repr(line)
            replica_url = "http://{}:{}".format(match.group(1),
                                                match.group(2))
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                try:
                    status, _h, _b = _http(replica_url + "/readyz")
                except OSError:
                    status = 0
                if status == 200:
                    break
                time.sleep(0.1)
            assert status == 200, "replica never became ready"
            # Churn while the replica tails, then kill it mid-stream.
            for i in range(40):
                status, _h, _b = _http(
                    primary_url + "/v1/graphs/g/mutate",
                    {"add_edges": [["k{}".format(i), "b",
                                    "k{}".format(i + 1)]]})
                assert status == 200
                if i == 25:
                    os.kill(replica.pid, signal.SIGKILL)
            replica.wait(timeout=10)
            assert replica.returncode == -signal.SIGKILL
        finally:
            if replica is not None and replica.poll() is None:
                replica.kill()
                replica.wait()
            primary.send_signal(signal.SIGTERM)
            try:
                primary.wait(timeout=15)
            except subprocess.TimeoutExpired:
                primary.kill()
                primary.wait()

        # Reopen the killed replica: recovery must verify cleanly.
        reopened = ReplicaGraph.open(replica_dir, verify=True)
        try:
            applied = reopened.applied_version
            # Independent reference: replay the primary's own durable
            # log through the replica's applied cursor.
            reference = MultiRelationalGraph(name="reference")
            with PersistentGraph.open(str(root / "g")) as store:
                assert store.segments is not None
                base = store.info()["snapshot_version"]
                assert applied >= base
                for entry in store.segments.iter_entries(after_version=0):
                    version, op = entry[0], entry[1]
                    if version > applied:
                        break
                    if op == "+v":
                        reference.add_vertex(entry[2])
                    elif op == "-v":
                        reference.remove_vertex(entry[2])
                    elif op == "+e":
                        reference.add_edge(entry[2], entry[3], entry[4])
                    elif op == "-e":
                        reference.remove_edge(entry[2], entry[3], entry[4])
            for expression in EXPRESSIONS:
                assert reopened.pairs(expression) == \
                    rpq_pairs_basic(reference, expression), \
                    "killed replica diverged on {!r}".format(expression)
        finally:
            reopened.close()
        assert verify_store(replica_dir)["ok"]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestCli:

    def test_db_verify_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        with _primary(tmp_path, name="store") as store:
            directory = str(store.directory)
        assert main(["db", "verify", directory]) == 0
        wal = [f for f in os.listdir(directory) if f.startswith("wal-")][0]
        path = os.path.join(directory, wal)
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        with open(path + ".tmp", "wb") as stream:
            stream.write(bytes(blob))
        os.replace(path + ".tmp", path)
        assert main(["db", "verify", directory]) == 1
        out = capsys.readouterr().out
        assert "FIRST CORRUPT" in out

    def test_db_promote_cli(self, tmp_path, capsys):
        from repro.cli import main

        with _primary(tmp_path, name="p") as store:
            feed = PrimaryFeed(store)
            replica = ReplicaGraph.bootstrap(str(tmp_path / "rep"), feed)
            _catch_up(replica, feed)
            replica.close()
        assert main(["db", "promote", str(tmp_path / "rep")]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["generation"] >= 2
        # Promoting a primary store is refused with exit 1.
        assert main(["db", "promote", str(tmp_path / "rep")]) == 1
