"""Exception hierarchy tests: catchability and message quality."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_base(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.PathAlgebraError)

    def test_graph_errors_are_also_keyerrors_where_sensible(self):
        assert issubclass(errors.VertexNotFoundError, KeyError)
        assert issubclass(errors.EdgeNotFoundError, KeyError)
        assert issubclass(errors.LabelNotFoundError, KeyError)

    def test_algebra_errors_are_value_or_index_errors(self):
        assert issubclass(errors.DisjointConcatenationError, ValueError)
        assert issubclass(errors.IndexOutOfRangeError, IndexError)

    def test_syntax_error_is_a_syntaxerror(self):
        assert issubclass(errors.PathQLSyntaxError, SyntaxError)

    def test_one_except_clause_catches_all(self):
        from repro.graph.graph import MultiRelationalGraph
        try:
            MultiRelationalGraph().remove_vertex("nope")
        except errors.PathAlgebraError:
            caught = True
        assert caught


class TestMessages:
    def test_vertex_not_found_mentions_vertex(self):
        assert "marko" in str(errors.VertexNotFoundError("marko"))

    def test_label_not_found_mentions_label(self):
        assert "knows" in str(errors.LabelNotFoundError("knows"))

    def test_syntax_error_mentions_position_and_snippet(self):
        error = errors.PathQLSyntaxError("bad token", 5, "[a, $, c]")
        message = str(error)
        assert "offset 5" in message
        assert "$" in message

    def test_convergence_error_mentions_algorithm(self):
        error = errors.ConvergenceError("pagerank", 100, 1e-8)
        assert "pagerank" in str(error)
        assert "100" in str(error)
