"""Engine tests: strategies, planner, explain, limits, projections."""

import pytest

from repro.core.path import Path
from repro.datasets import figure1_graph
from repro.engine import Engine, GraphStatistics, Planner
from repro.engine.executor import stream_paths
from repro.engine.plan import AtomScan, JoinPlan
from repro.errors import ExecutionError
from repro.graph.generators import uniform_random
from repro.lang import parse
from repro.regex import atom, evaluate, join, star, union

FIGURE1_QUERY = ("[i, alpha, _] . [_, beta, _]* . "
                 "(([_, alpha, j] . {(j, alpha, i)}) | [_, alpha, k])")


@pytest.fixture
def engine():
    return Engine(figure1_graph(), default_max_length=6)


@pytest.fixture
def random_engine():
    return Engine(uniform_random(25, 80, labels=("a", "b", "c"), seed=11),
                  default_max_length=4)


class TestStrategies:
    def test_all_strategies_agree_on_figure1(self, engine):
        results = {
            strategy: engine.query(FIGURE1_QUERY, strategy=strategy).paths
            for strategy in ("materialized", "streaming", "automaton", "stack")
        }
        reference = results["materialized"]
        assert len(reference) > 0
        for strategy, paths in results.items():
            assert paths == reference, strategy

    def test_all_strategies_agree_on_random_graph(self, random_engine):
        query = "[_, a, _] . [_, b, _]* . [_, c, _]"
        results = [
            random_engine.query(query, strategy=strategy).paths
            for strategy in ("materialized", "streaming", "automaton", "stack")
        ]
        assert results[0] == results[1] == results[2] == results[3]

    def test_unknown_strategy_rejected(self, engine):
        with pytest.raises(ExecutionError):
            engine.query(FIGURE1_QUERY, strategy="quantum")

    def test_results_match_reference_evaluator(self, engine):
        expression = parse(FIGURE1_QUERY)
        expected = evaluate(expression, engine.graph, 6)
        assert engine.query(FIGURE1_QUERY).paths == expected

    def test_ast_queries_accepted(self, engine):
        expr = join(atom(tail="i", label="alpha"), atom(label="beta"))
        result = engine.query(expr)
        assert all(p.tail == "i" for p in result.paths)

    def test_max_length_override(self, engine):
        short = engine.query(FIGURE1_QUERY, max_length=2)
        long = engine.query(FIGURE1_QUERY, max_length=6)
        assert short.paths < long.paths


class TestLimit:
    def test_streaming_limit_truncates(self, engine):
        limited = engine.query(FIGURE1_QUERY, strategy="streaming", limit=3)
        assert len(limited.paths) == 3

    def test_limited_results_are_members(self, engine):
        full = engine.query(FIGURE1_QUERY).paths
        limited = engine.query(FIGURE1_QUERY, strategy="streaming", limit=4)
        assert limited.paths <= full

    def test_stream_paths_is_lazy(self, random_engine):
        stream = stream_paths(random_engine.graph,
                              parse("[_, a, _] . [_, b, _]"), 4)
        first = next(stream, None)
        if first is not None:
            assert isinstance(first, Path)


class TestPlanner:
    def test_plan_result_invariance(self, random_engine):
        """Optimized and unoptimized plans return identical path sets."""
        query = "[0, _, _] . [_, _, _] . [_, a, _]"
        optimized = random_engine.query(query).paths
        random_engine.optimize = False
        unoptimized = random_engine.query(query).paths
        assert optimized == unoptimized

    def test_planner_prefers_selective_side(self):
        graph = uniform_random(40, 400, labels=("a", "b"), seed=5)
        stats = GraphStatistics(graph)
        # [v0,_,_] is tiny; [_,_,_] huge: the optimizer should not start by
        # joining the two full scans.
        expr = join(atom(tail=0), atom(), atom())
        optimized = Planner(stats, optimize_joins=True).plan(expr)
        greedy = Planner(stats, optimize_joins=False).plan(expr)
        assert optimized.estimated_cost <= greedy.estimated_cost

    def test_explain_renders_tree(self, engine):
        text = engine.explain(FIGURE1_QUERY)
        assert "AtomScan" in text
        assert "Join" in text
        assert "rows~" in text

    def test_explain_notes_planless_strategies(self, engine):
        result = engine.query(FIGURE1_QUERY, strategy="automaton")
        assert "no plan" in result.explain()

    def test_plan_shape(self, engine):
        plan = engine.plan("[i, alpha, _] . [_, beta, _]")
        assert isinstance(plan, JoinPlan)
        assert isinstance(plan.left, AtomScan)

    def test_statistics_refresh_on_mutation(self, engine):
        before = engine.statistics().edge_count
        engine.graph.add_edge("new1", "alpha", "new2")
        after = engine.statistics().edge_count
        assert after == before + 1

    def test_statistics_atom_cardinality(self, engine):
        stats = engine.statistics()
        assert stats.atom_cardinality(atom(label="beta")) == 5
        assert stats.atom_cardinality(atom()) == engine.graph.size()
        assert stats.atom_cardinality(atom(tail="i", label="alpha")) == 1

    def test_estimates_are_nonnegative(self, random_engine):
        stats = random_engine.statistics()
        expressions = [
            atom(), star(atom(label="a")),
            union(atom(label="a"), atom(label="b")),
            join(atom(), atom()),
        ]
        for expr in expressions:
            assert stats.estimate(expr) >= 0.0


class TestResultObject:
    def test_result_metadata(self, engine):
        result = engine.query(FIGURE1_QUERY)
        assert result.strategy == "materialized"
        assert result.max_length == 6
        assert result.elapsed >= 0.0
        assert len(result) == len(result.paths)
        assert set(iter(result)) == set(result.paths)

    def test_heads_and_tails(self, engine):
        result = engine.query(FIGURE1_QUERY)
        assert result.tails() == {"i"}
        assert result.heads() <= {"i", "k"}

    def test_projection(self, engine):
        projection = engine.project(FIGURE1_QUERY, max_length=6)
        assert projection.pairs <= {("i", "i"), ("i", "k")}
        assert len(projection.pairs) == 2


class TestRecognition:
    def test_recognize_accepts_query_member(self, engine):
        member = Path.of(("i", "alpha", "m"), ("m", "alpha", "k"))
        assert engine.recognize(FIGURE1_QUERY, member)

    def test_recognize_rejects_non_member(self, engine):
        assert not engine.recognize(FIGURE1_QUERY,
                                    Path.single("i", "beta", "m"))
