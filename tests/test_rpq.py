"""Tests for the label-level RPQ baseline (Mendelzon & Wood [8])."""

import pytest

from repro.automata import generate_paths
from repro.core.path import EPSILON, Path
from repro.graph.graph import MultiRelationalGraph
from repro.rpq import (
    accepts_label_word,
    build_label_nfa,
    compile_rpq,
    determinize,
    lconcat,
    lift_to_edge_expression,
    loptional,
    lplus,
    lstar,
    lunion,
    regular_simple_paths,
    rpq_pairs,
    rpq_paths,
    sym,
)


@pytest.fixture
def graph():
    return MultiRelationalGraph([
        ("a", "x", "b"),
        ("b", "y", "c"),
        ("c", "y", "d"),
        ("b", "y", "b"),   # loop: star languages are infinite
        ("a", "z", "d"),
        ("d", "x", "a"),
    ])


class TestLabelRegex:
    def test_symbol_word(self):
        assert accepts_label_word(sym("x"), ["x"])
        assert not accepts_label_word(sym("x"), ["y"])
        assert not accepts_label_word(sym("x"), [])

    def test_concat_and_union(self):
        expr = lconcat(sym("x"), lunion(sym("y"), sym("z")))
        assert accepts_label_word(expr, ["x", "y"])
        assert accepts_label_word(expr, ["x", "z"])
        assert not accepts_label_word(expr, ["x", "x"])

    def test_star_plus_optional(self):
        assert accepts_label_word(lstar(sym("y")), [])
        assert accepts_label_word(lstar(sym("y")), ["y", "y", "y"])
        assert not accepts_label_word(lplus(sym("y")), [])
        assert accepts_label_word(loptional(sym("y")), [])
        assert not accepts_label_word(loptional(sym("y")), ["y", "y"])

    def test_symbols_enumeration(self):
        expr = lconcat(sym("x"), lstar(lunion(sym("y"), sym("z"))))
        assert expr.symbols() == {"x", "y", "z"}


class TestDeterminization:
    def test_dfa_agrees_with_nfa(self):
        expr = lconcat(sym("x"), lstar(sym("y")), sym("z"))
        nfa = build_label_nfa(expr)
        dfa = determinize(nfa, ["x", "y", "z"])
        words = [
            [], ["x"], ["x", "z"], ["x", "y", "z"], ["x", "y", "y", "z"],
            ["y", "z"], ["x", "y"], ["z"],
        ]
        for word in words:
            assert dfa.accepts(word) == accepts_label_word(expr, word), word

    def test_dfa_is_deterministic(self):
        expr = lunion(lconcat(sym("x"), sym("y")), lconcat(sym("x"), sym("z")))
        dfa = determinize(build_label_nfa(expr), ["x", "y", "z"])
        for row in dfa.transitions:
            assert len(row) == len(set(row))  # one target per label

    def test_dead_input_rejected_fast(self):
        dfa = determinize(build_label_nfa(sym("x")), ["x", "y"])
        assert not dfa.accepts(["y", "x", "x"])


class TestRpqEvaluation:
    def test_rpq_pairs_simple_chain(self, graph):
        pairs = rpq_pairs(graph, lconcat(sym("x"), sym("y")))
        assert ("a", "c") in pairs
        assert ("a", "b") in pairs  # via the (b,y,b) loop: x then y to b

    def test_rpq_pairs_with_star(self, graph):
        pairs = rpq_pairs(graph, lconcat(sym("x"), lstar(sym("y"))))
        assert ("a", "b") in pairs   # zero y's
        assert ("a", "c") in pairs
        assert ("a", "d") in pairs   # x y y

    def test_rpq_pairs_epsilon_includes_self(self, graph):
        pairs = rpq_pairs(graph, lstar(sym("x")))
        assert ("a", "a") in pairs

    def test_rpq_pairs_restricted_sources(self, graph):
        pairs = rpq_pairs(graph, sym("y"), sources=frozenset({"b"}))
        assert all(tail == "b" for tail, _ in pairs)

    def test_rpq_paths_bounded(self, graph):
        paths = rpq_paths(graph, lconcat(sym("x"), lstar(sym("y"))), 3)
        assert all(len(p) <= 3 for p in paths)
        assert Path.of(("a", "x", "b"), ("b", "y", "c")) in paths

    def test_rpq_paths_all_labels_in_language(self, graph):
        expr = lconcat(sym("x"), lstar(sym("y")))
        for p in rpq_paths(graph, expr, 4):
            if p is EPSILON:
                continue
            assert accepts_label_word(expr, list(p.label_path))


class TestRegularSimplePaths:
    def test_simple_paths_exclude_loops(self, graph):
        expr = lconcat(sym("x"), lstar(sym("y")))
        paths = regular_simple_paths(graph, expr, "a", "d")
        assert paths  # a -x-> b -y-> c -y-> d
        for p in paths:
            assert p.is_simple()
            assert p.tail == "a" and p.head == "d"

    def test_loop_witnesses_are_rejected(self, graph):
        # Only way to reach b with >= 2 y's involves the (b,y,b) loop — not simple.
        expr = lconcat(sym("x"), sym("y"), sym("y"))
        paths = regular_simple_paths(graph, expr, "a", "b")
        assert len(paths) == 0

    def test_missing_vertices_give_empty(self, graph):
        assert len(regular_simple_paths(graph, sym("x"), "a", "nope")) == 0

    def test_source_equals_target_with_nullable_expr(self, graph):
        paths = regular_simple_paths(graph, lstar(sym("q")), "a", "a")
        assert EPSILON in paths


class TestLiftToEdgeExpression:
    def test_lift_agrees_with_edge_generation(self, graph):
        """[8]'s label formulation embeds into the paper's edge formulation."""
        label_expr = lconcat(sym("x"), lstar(sym("y")))
        edge_expr = lift_to_edge_expression(label_expr)
        via_rpq = rpq_paths(graph, label_expr, 4)
        via_algebra = generate_paths(graph, edge_expr, 4)
        assert via_rpq == via_algebra

    def test_lift_union_and_epsilon(self, graph):
        from repro.rpq.labelregex import LabelEpsilon
        label_expr = lunion(sym("z"), LabelEpsilon())
        edge_expr = lift_to_edge_expression(label_expr)
        via_rpq = rpq_paths(graph, label_expr, 2)
        via_algebra = generate_paths(graph, edge_expr, 2)
        assert via_rpq == via_algebra

    def test_compile_rpq_handles_foreign_symbols(self, graph):
        dfa = compile_rpq(sym("not-a-graph-label"), graph)
        assert dfa.num_states >= 1
