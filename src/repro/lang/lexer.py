"""PathQL tokenizer.

PathQL is the textual form of the paper's regular path expressions, using
the paper's own set-builder syntax for atoms:

.. code-block:: text

    [i, alpha, _] . [_, beta, _]* . (([_, alpha, j] . {(j, alpha, i)}) | [_, alpha, k])

Token inventory:

* punctuation — ``[ ] ( ) { } , ;``
* operators — ``.`` (concatenative join), ``&`` (concatenative product),
  ``|`` (union), ``*`` (star), ``+`` (plus), ``?`` (optional)
* ``_`` — the wildcard
* values — bare identifiers (``alpha``, ``person0``), integers (``42``,
  taken as int vertex/label values), and single- or double-quoted strings
  for anything else (``'has space'``)
* keywords — ``eps`` (the empty path language) and ``empty`` (the empty
  language); both usable only where a primary expression is expected, so
  they remain usable as quoted vertex names.

The lexer is a hand-rolled scanner with precise error positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Union

from repro.errors import PathQLSyntaxError

__all__ = ["Token", "tokenize", "TokenKind"]


class TokenKind:
    """Token kind constants (plain strings for cheap comparisons)."""

    LBRACKET = "LBRACKET"
    RBRACKET = "RBRACKET"
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    LBRACE = "LBRACE"
    RBRACE = "RBRACE"
    COMMA = "COMMA"
    SEMICOLON = "SEMICOLON"
    DOT = "DOT"
    AMP = "AMP"
    PIPE = "PIPE"
    STAR = "STAR"
    PLUS = "PLUS"
    QUESTION = "QUESTION"
    UNDERSCORE = "UNDERSCORE"
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    END = "END"


_PUNCTUATION = {
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMICOLON,
    ".": TokenKind.DOT,
    "&": TokenKind.AMP,
    "|": TokenKind.PIPE,
    "*": TokenKind.STAR,
    "+": TokenKind.PLUS,
    "?": TokenKind.QUESTION,
}


@dataclass(frozen=True)
class Token:
    """One lexical token: kind, value (decoded for strings/numbers), offset."""

    kind: str
    value: Union[str, int, None]
    position: int

    def __repr__(self) -> str:
        return "Token({}, {!r}, @{})".format(self.kind, self.value, self.position)


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_part(ch: str) -> bool:
    return ch.isalnum() or ch in ("_", "-")


def tokenize(text: str) -> List[Token]:
    """Scan PathQL source into tokens (a trailing END token is appended).

    Raises
    ------
    PathQLSyntaxError
        On an unexpected character or an unterminated string.
    """
    tokens: List[Token] = []
    position = 0
    length = len(text)
    while position < length:
        ch = text[position]
        if ch.isspace():
            position += 1
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(_PUNCTUATION[ch], ch, position))
            position += 1
            continue
        if ch in ("'", '"'):
            end = position + 1
            pieces = []
            while end < length and text[end] != ch:
                pieces.append(text[end])
                end += 1
            if end >= length:
                raise PathQLSyntaxError("unterminated string", position, text)
            tokens.append(Token(TokenKind.STRING, "".join(pieces), position))
            position = end + 1
            continue
        if ch.isdigit():
            end = position
            while end < length and text[end].isdigit():
                end += 1
            tokens.append(Token(TokenKind.NUMBER, int(text[position:end]), position))
            position = end
            continue
        if _is_ident_start(ch):
            end = position
            while end < length and _is_ident_part(text[end]):
                end += 1
            word = text[position:end]
            if word == "_":
                tokens.append(Token(TokenKind.UNDERSCORE, "_", position))
            else:
                tokens.append(Token(TokenKind.IDENT, word, position))
            position = end
            continue
        raise PathQLSyntaxError(
            "unexpected character {!r}".format(ch), position, text)
    tokens.append(Token(TokenKind.END, None, length))
    return tokens
