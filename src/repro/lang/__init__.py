"""PathQL — the textual query language for the path algebra.

One entry point: :func:`parse` turns PathQL source into a
:mod:`repro.regex` AST, which the engine (or :func:`repro.regex.evaluate`,
or the automata) can execute.

.. code-block:: text

    [i, alpha, _] . [_, beta, _]* . (([_, alpha, j] . {(j, alpha, i)}) | [_, alpha, k])

is the paper's Figure 1 expression.
"""

from repro.lang.parser import parse

__all__ = ["parse"]
