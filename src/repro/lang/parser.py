"""PathQL recursive-descent parser.

Grammar (precedence low to high; ``.``/``&`` bind tighter than ``|``,
postfix repetition tightest):

.. code-block:: text

    expression := concat ('|' concat)*
    concat     := postfix (('.' | '&') postfix)*
    postfix    := primary ('*' | '+' | '?' | '{' NUMBER (',' NUMBER?)? '}')*
    primary    := atom | literal_set | '(' expression ')' | 'eps' | 'empty'
    atom       := '[' part ',' part ',' part ']'
    part       := '_' | value
    literal_set:= '{' path (';' path)* '}' | '{' '}'
    path       := '(' value ',' value ',' value (',' value ',' value ',' value)* ')'
    value      := IDENT | STRING | NUMBER

Atoms are the paper's ``[tail, label, head]`` patterns; literal path sets
are written as parenthesized flat triples (``(j, alpha, i)``), with longer
paths as repeated triples (``(a,x,b, b,y,c)``), exactly like the paper
prints them.  The brace ambiguity (``{`` opens both repetition and literal
sets) resolves by position: repetition only follows a postfix expression.

The parser produces :mod:`repro.regex` AST nodes directly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.core.path import Path
from repro.core.pathset import PathSet
from repro.errors import PathQLSyntaxError
from repro.lang.lexer import Token, TokenKind, tokenize
from repro.regex.ast import (
    EMPTY,
    EPSILON,
    Atom,
    Join,
    Literal,
    Product,
    RegexExpr,
    Repeat,
    Star,
    Union,
)

__all__ = ["parse"]


class _Parser:
    """Token-stream cursor with the grammar's productions as methods."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # -- cursor helpers ----------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise PathQLSyntaxError(
                "expected {} but found {}".format(kind, token.kind),
                token.position, self.text)
        return self.advance()

    def error(self, message: str) -> PathQLSyntaxError:
        token = self.peek()
        return PathQLSyntaxError(message, token.position, self.text)

    # -- productions ---------------------------------------------------------

    def parse_expression(self) -> RegexExpr:
        parts = [self.parse_concat()]
        while self.peek().kind == TokenKind.PIPE:
            self.advance()
            parts.append(self.parse_concat())
        if len(parts) == 1:
            return parts[0]
        return Union(tuple(parts))

    def parse_concat(self) -> RegexExpr:
        first = self.parse_postfix()
        items: List[Tuple[str, RegexExpr]] = []
        while self.peek().kind in (TokenKind.DOT, TokenKind.AMP):
            operator = self.advance().kind
            items.append((operator, self.parse_postfix()))
        if not items:
            return first
        # Group maximal runs of one operator so mixed chains keep their
        # left-to-right structure: a . b & c . d == ((a . b) & c) . d? No:
        # '.' and '&' share precedence and associate left, pairwise.
        result = first
        for operator, operand in items:
            if operator == TokenKind.DOT:
                result = (Join(result.parts + (operand,))
                          if isinstance(result, Join) else Join((result, operand)))
            else:
                result = (Product(result.parts + (operand,))
                          if isinstance(result, Product) else Product((result, operand)))
        return result

    def parse_postfix(self) -> RegexExpr:
        expr = self.parse_primary()
        while True:
            kind = self.peek().kind
            if kind == TokenKind.STAR:
                self.advance()
                expr = Star(expr)
            elif kind == TokenKind.PLUS:
                self.advance()
                expr = Repeat(expr, 1, None)
            elif kind == TokenKind.QUESTION:
                self.advance()
                expr = Repeat(expr, 0, 1)
            elif kind == TokenKind.LBRACE and self._brace_is_repetition():
                expr = self._parse_repetition(expr)
            else:
                return expr

    def _brace_is_repetition(self) -> bool:
        """A ``{`` after a postfix expression is a repetition iff a number follows."""
        return self.tokens[self.index + 1].kind == TokenKind.NUMBER

    def _parse_repetition(self, expr: RegexExpr) -> RegexExpr:
        self.expect(TokenKind.LBRACE)
        minimum = self.expect(TokenKind.NUMBER).value
        maximum: Optional[int] = minimum
        if self.peek().kind == TokenKind.COMMA:
            self.advance()
            if self.peek().kind == TokenKind.NUMBER:
                maximum = self.advance().value
            else:
                maximum = None
        self.expect(TokenKind.RBRACE)
        return Repeat(expr, minimum, maximum)

    def parse_primary(self) -> RegexExpr:
        token = self.peek()
        if token.kind == TokenKind.LBRACKET:
            return self.parse_atom()
        if token.kind == TokenKind.LBRACE:
            return self.parse_literal_set()
        if token.kind == TokenKind.LPAREN:
            self.advance()
            inner = self.parse_expression()
            self.expect(TokenKind.RPAREN)
            return inner
        if token.kind == TokenKind.IDENT and token.value == "eps":
            self.advance()
            return EPSILON
        if token.kind == TokenKind.IDENT and token.value == "empty":
            self.advance()
            return EMPTY
        raise self.error("expected an atom, literal set, '(', 'eps' or 'empty'")

    def parse_atom(self) -> Atom:
        self.expect(TokenKind.LBRACKET)
        tail = self.parse_part()
        self.expect(TokenKind.COMMA)
        label = self.parse_part()
        self.expect(TokenKind.COMMA)
        head = self.parse_part()
        self.expect(TokenKind.RBRACKET)
        return Atom(tail=tail, label=label, head=head)

    def parse_part(self):
        token = self.peek()
        if token.kind == TokenKind.UNDERSCORE:
            self.advance()
            return None
        return self.parse_value()

    def parse_value(self):
        token = self.peek()
        if token.kind in (TokenKind.IDENT, TokenKind.STRING, TokenKind.NUMBER):
            return self.advance().value
        raise self.error("expected a value (identifier, string or number)")

    def parse_literal_set(self) -> Literal:
        self.expect(TokenKind.LBRACE)
        paths: List[Path] = []
        if self.peek().kind != TokenKind.RBRACE:
            paths.append(self.parse_literal_path())
            while self.peek().kind == TokenKind.SEMICOLON:
                self.advance()
                paths.append(self.parse_literal_path())
        self.expect(TokenKind.RBRACE)
        return Literal(PathSet(paths))

    def parse_literal_path(self) -> Path:
        self.expect(TokenKind.LPAREN)
        values = [self.parse_value()]
        while self.peek().kind == TokenKind.COMMA:
            self.advance()
            values.append(self.parse_value())
        closer = self.expect(TokenKind.RPAREN)
        if len(values) % 3 != 0:
            raise PathQLSyntaxError(
                "a literal path needs a multiple of 3 values "
                "(tail, label, head triples), got {}".format(len(values)),
                closer.position, self.text)
        edges = [
            (values[base], values[base + 1], values[base + 2])
            for base in range(0, len(values), 3)
        ]
        return Path(edges)


def parse(text: str) -> RegexExpr:
    """Parse PathQL source into a regular path expression AST.

    Raises
    ------
    PathQLSyntaxError
        With the offending position, on any lexical or grammatical error.
    """
    parser = _Parser(text)
    expression = parser.parse_expression()
    trailing = parser.peek()
    if trailing.kind != TokenKind.END:
        raise PathQLSyntaxError(
            "unexpected trailing {}".format(trailing.kind),
            trailing.position, text)
    return expression
