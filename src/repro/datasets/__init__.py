"""Built-in datasets: the paper's literal examples plus scenario graphs.

``repro.datasets.paper`` carries the exact structures written out in the
paper's text (the section II join example, the Figure 1 automaton's
supporting graph).  ``repro.datasets.scenarios`` builds the richer synthetic
domains used by the examples and the E5 experiment (a software-community
social graph and a scholarly collaboration/citation graph).
"""

from repro.datasets.paper import (
    section2_edges,
    section2_left_operand,
    section2_right_operand,
    section2_expected_join,
    figure1_graph,
    figure1_expression,
)
from repro.datasets.scenarios import (
    software_community,
    scholarly_graph,
    travel_network,
)

__all__ = [
    "section2_edges",
    "section2_left_operand",
    "section2_right_operand",
    "section2_expected_join",
    "figure1_graph",
    "figure1_expression",
    "software_community",
    "scholarly_graph",
    "travel_network",
]
