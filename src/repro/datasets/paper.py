"""The paper's literal worked examples, reproduced as data.

Two artifacts appear verbatim in the paper:

* the **section II join example** — path sets ``A`` and ``B`` over a small
  {i, j, k} graph and the four paths of ``A ><_o B`` the paper lists;
* the **Figure 1 automaton** — the regular path expression
  ``[i,a,_] ><_o [_,b,_]* ><_o (([_,a,j] ><_o {(j,a,i)}) U [_,a,k])``
  together with a graph on which it recognizes/generates non-trivial paths.

Everything here is deterministic and used directly by
``tests/test_paper_examples.py`` and the E1/E2/E4 benchmarks.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.path import Path
from repro.core.pathset import PathSet
from repro.graph.graph import MultiRelationalGraph

__all__ = [
    "ALPHA",
    "BETA",
    "section2_edges",
    "section2_graph",
    "section2_left_operand",
    "section2_right_operand",
    "section2_expected_join",
    "figure1_graph",
    "figure1_expression",
]

#: The paper's two labels, spelled out (the text uses Greek alpha/beta).
ALPHA = "alpha"
BETA = "beta"


def section2_edges() -> Tuple[Tuple[str, str, str], ...]:
    """The seven edges the section II example declares to be in ``E``."""
    return (
        ("i", ALPHA, "j"),
        ("j", BETA, "k"),
        ("k", ALPHA, "j"),
        ("j", BETA, "j"),
        ("j", BETA, "i"),
        ("i", ALPHA, "k"),
        ("i", BETA, "k"),
    )


def section2_graph() -> MultiRelationalGraph:
    """The {i, j, k} multi-relational graph of the section II example."""
    return MultiRelationalGraph(section2_edges(), name="paper-section2")


def section2_left_operand() -> PathSet:
    """The paper's ``A = {(i,a,j), (j,b,k, k,a,j)}``."""
    return PathSet([
        Path.single("i", ALPHA, "j"),
        Path.of(("j", BETA, "k"), ("k", ALPHA, "j")),
    ])


def section2_right_operand() -> PathSet:
    """The paper's ``B = {(j,b,j), (j,b,i, i,a,k), (i,b,k)}``."""
    return PathSet([
        Path.single("j", BETA, "j"),
        Path.of(("j", BETA, "i"), ("i", ALPHA, "k")),
        Path.single("i", BETA, "k"),
    ])


def section2_expected_join() -> PathSet:
    """The four paths the paper lists as ``A ><_o B``."""
    return PathSet([
        Path.of(("i", ALPHA, "j"), ("j", BETA, "j")),
        Path.of(("i", ALPHA, "j"), ("j", BETA, "i"), ("i", ALPHA, "k")),
        Path.of(("j", BETA, "k"), ("k", ALPHA, "j"), ("j", BETA, "j")),
        Path.of(("j", BETA, "k"), ("k", ALPHA, "j"), ("j", BETA, "i"),
                ("i", ALPHA, "k")),
    ])


def figure1_graph() -> MultiRelationalGraph:
    """A graph on which the Figure 1 expression is non-trivially satisfiable.

    The paper draws the automaton but fixes no graph, so this one is
    constructed to exercise every branch of the state machine:

    * paths taking **zero** beta steps: ``i -a-> m -a-> k``;
    * paths taking **one or more** beta steps through the ``m <-> n`` beta
      cycle (the cycle makes the star unbounded, so bounded generation is
      meaningfully tested);
    * both accepting branches: the ``[_,a,j] ><_o {(j,a,i)}`` suffix (via
      ``m -a-> j -a-> i`` and ``n -a-> j -a-> i``) and the ``[_,a,k]``
      suffix;
    * decoys that must **not** be accepted: a beta edge out of ``i`` (wrong
      first label), a gamma edge into ``k`` (wrong label), and an alpha edge
      into ``j`` *not* followed by the literal ``(j, a, i)`` requirement
      failing (there is exactly one ``(j, a, i)`` edge, so that branch always
      completes — the decoy is ``(j, a, q)`` which the literal set excludes).
    """
    return MultiRelationalGraph([
        # entry
        ("i", ALPHA, "m"),
        # beta machinery (a 2-cycle, so beta* is infinite)
        ("m", BETA, "n"),
        ("n", BETA, "m"),
        ("m", BETA, "m"),
        # accepting branch 1: alpha into j, then the literal (j, alpha, i)
        ("m", ALPHA, "j"),
        ("n", ALPHA, "j"),
        ("j", ALPHA, "i"),
        # accepting branch 2: alpha into k
        ("m", ALPHA, "k"),
        ("n", ALPHA, "k"),
        # decoys
        ("i", BETA, "m"),      # wrong first label
        ("m", "gamma", "k"),   # wrong label entirely
        ("j", ALPHA, "q"),     # alpha out of j that is not (j, alpha, i)
        ("k", BETA, "i"),      # continues past an accept state
    ], name="paper-figure1")


def figure1_expression():
    """The Figure 1 regular path expression as a regex AST.

    ``[i,a,_] ><_o [_,b,_]* ><_o (([_,a,j] ><_o {(j,a,i)}) U [_,a,k])``

    Imported lazily so :mod:`repro.datasets` does not cycle with
    :mod:`repro.regex` at package-import time.
    """
    from repro.regex import atom, join, literal, star, union
    return join(
        atom(tail="i", label=ALPHA),
        star(atom(label=BETA)),
        union(
            join(atom(label=ALPHA, head="j"), literal(("j", ALPHA, "i"))),
            atom(label=ALPHA, head="k"),
        ),
    )
