"""Scenario graphs: realistic multi-relational domains for examples and E5.

Three domains, each deterministic given its seed:

* :func:`software_community` — the developer/software world the authors'
  own systems (Gremlin, Neo4j) are usually demonstrated on: people *know*
  each other, *create* software, software *depends_on* software.
* :func:`scholarly_graph` — authors, papers, venues with *authored*,
  *cites*, *published_in*: the co-citation / co-authorship projections of
  section IV-C have crisp meaning here, so E5 runs on this graph.
* :func:`travel_network` — cities connected by *flight*, *train*, *bus*
  with per-edge costs: regular path queries ("flights then any number of
  trains") are natural, so PathQL examples use it.
"""

from __future__ import annotations

import random
from typing import List

from repro.graph.graph import MultiRelationalGraph

__all__ = ["software_community", "scholarly_graph", "travel_network"]


def software_community(num_people: int = 12, num_projects: int = 8,
                       seed: int = 7) -> MultiRelationalGraph:
    """People who *know* each other and *create* software that *depends_on* software.

    Structure guarantees: the knows-relation is connected enough for
    friend-of-friend queries to be non-empty, every project has at least one
    creator, and dependency edges form a DAG (no project depends on itself
    transitively) so dependency closures terminate.
    """
    rng = random.Random(seed)
    graph = MultiRelationalGraph(name="software-community")
    people = ["person{}".format(k) for k in range(num_people)]
    projects = ["project{}".format(k) for k in range(num_projects)]
    for index, person in enumerate(people):
        graph.add_vertex(person, kind="person", seniority=index % 5)
    for index, project in enumerate(projects):
        graph.add_vertex(project, kind="software", age=index)
    # knows: a ring (guaranteed connectivity) plus random chords.
    for index, person in enumerate(people):
        graph.add_edge(person, "knows", people[(index + 1) % num_people])
    for _ in range(num_people):
        a, b = rng.sample(people, 2)
        graph.add_edge(a, "knows", b)
    # created: each project gets 1-3 creators.
    for project in projects:
        for person in rng.sample(people, rng.randint(1, 3)):
            graph.add_edge(person, "created", project)
    # depends_on: DAG by only depending on strictly older projects.
    for index, project in enumerate(projects):
        for older in range(index):
            if rng.random() < 0.4:
                graph.add_edge(project, "depends_on", projects[older])
    return graph


def scholarly_graph(num_authors: int = 15, num_papers: int = 25,
                    num_venues: int = 4, seed: int = 11) -> MultiRelationalGraph:
    """Authors/papers/venues with *authored*, *cites*, *published_in*.

    Citations point only to earlier papers (a DAG, as in reality), each
    paper has 1-4 authors and one venue.  The E5 experiment derives
    co-authorship (``authored ><_o authored^-1``) and author-level citation
    (``authored ><_o cites ><_o authored^-1``) projections from this graph.
    """
    rng = random.Random(seed)
    graph = MultiRelationalGraph(name="scholarly")
    authors = ["author{}".format(k) for k in range(num_authors)]
    papers = ["paper{}".format(k) for k in range(num_papers)]
    venues = ["venue{}".format(k) for k in range(num_venues)]
    for author in authors:
        graph.add_vertex(author, kind="author")
    for year, paper in enumerate(papers):
        graph.add_vertex(paper, kind="paper", year=2000 + year)
    for venue in venues:
        graph.add_vertex(venue, kind="venue")
    for index, paper in enumerate(papers):
        for author in rng.sample(authors, rng.randint(1, 4)):
            graph.add_edge(author, "authored", paper)
        graph.add_edge(paper, "published_in", rng.choice(venues))
        # cite up to 4 strictly earlier papers
        if index:
            cited = rng.sample(papers[:index], min(index, rng.randint(0, 4)))
            for target in cited:
                graph.add_edge(paper, "cites", target)
    return graph


def travel_network(num_cities: int = 10, seed: int = 3) -> MultiRelationalGraph:
    """Cities linked by *flight*, *train* and *bus* edges with cost properties.

    Flights form a hub-and-spoke star around city0; trains form a corridor
    along consecutive cities; buses add random short hops.  Costs are edge
    properties (flights expensive, buses cheap) so weighted examples have
    something to optimize.
    """
    rng = random.Random(seed)
    graph = MultiRelationalGraph(name="travel")
    cities = ["city{}".format(k) for k in range(num_cities)]
    for city in cities:
        graph.add_vertex(city, kind="city")
    hub = cities[0]
    for city in cities[1:]:
        graph.add_edge(hub, "flight", city, cost=200 + rng.randint(0, 200))
        graph.add_edge(city, "flight", hub, cost=200 + rng.randint(0, 200))
    for index in range(num_cities - 1):
        graph.add_edge(cities[index], "train", cities[index + 1],
                       cost=40 + rng.randint(0, 40))
        graph.add_edge(cities[index + 1], "train", cities[index],
                       cost=40 + rng.randint(0, 40))
    for _ in range(num_cities):
        a, b = rng.sample(cities, 2)
        graph.add_edge(a, "bus", b, cost=10 + rng.randint(0, 20))
    return graph
