"""WAL-shipped replication: primary feed, replica catch-up, promote.

Topology is single-primary, N read replicas, shipping the journal::

    primary store                          replica store
    ---------------                        --------------
    manifest.json                          replica.json   (cursor, lineage)
    snapshot-*.rcsr   --- bootstrap --->   snapshot-*.rcsr (copied bytes)
    wal-*.log                              segments/       (records fetched)
    segments/         ---- tailing ---->     applied via DeltaAdjacency

The **primary side** (:class:`PrimaryFeed`) serves two reads off a store
whose :class:`~repro.storage.segments.WalSegments` log is on: the current
snapshot's raw bytes (bootstrap) and the CRC-framed WAL suffix at a
:class:`~repro.storage.segments.ReplicationCursor` (catch-up).  Records
ship as the exact frames the primary wrote — the per-record CRC32
protects them end-to-end from the primary's disk to the replica's apply
loop, and a byte-count in the reply metadata catches a frame-aligned
truncation the CRCs cannot.

The **replica side** (:class:`ReplicaGraph`) bootstraps by copying the
snapshot, then tails the feed: each poll fetches a byte run, decodes and
CRC-checks it (:func:`~repro.storage.segments.decode_frames`), drops
records at or below its ``applied_version`` (duplicate and re-ordered
fetches are absorbed by version dedup — the journal's versions are
strictly monotonic), persists the survivors to a *local* segment log,
applies them through the existing
:class:`~repro.graph.compact.DeltaAdjacency` overlay, and only then
advances its durable cursor.  A crash at any point recovers to a state
that re-fetches at most the unacknowledged suffix; it can never skip
records.  Queries (:meth:`ReplicaGraph.pairs`) serve throughout.

Failure contract (the robustness tentpole): every abnormal event is a
**typed error** — torn ship / corrupt frame raises
:class:`~repro.errors.ReplicationCorruptionError` and the batch is
rejected whole; a cursor that fell off the primary's retained log raises
:class:`~repro.errors.ReplicationCursorGapError` and the replica
re-bootstraps; a staleness bound the replica cannot meet raises
:class:`~repro.errors.ReplicaStaleError`.  At its applied cursor the
replica's answers are bit-identical to the primary's — there is no state
in which it serves a silently divergent view.

:func:`promote_replica` is the failover path: seal the local tail,
CRC-verify everything, fold snapshot + applied records into a standard
:class:`~repro.storage.persistent.PersistentGraph` generation, and
publish a ``manifest.json`` — the directory then opens writable as an
ordinary (and immediately replicable) primary.
"""

from __future__ import annotations

import json
import os
import random
import re
import shutil
import time
from threading import Event
from typing import Any, Callable, Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from repro.concurrency import ordered_lock, release_resource, track_resource
from repro.errors import (
    ReplicaStaleError,
    ReplicationCorruptionError,
    ReplicationCursorGapError,
    ReplicationError,
    StorageError,
)
from repro.faults import fault_hook, fault_point
from repro.graph.compact import DeltaAdjacency
from repro.storage.persistent import (
    MANIFEST_NAME,
    PersistentGraph,
    _CompactGraphAdapter,
    _write_manifest,
)
from repro.storage.segments import (
    SEGMENTS_DIRNAME,
    SEGMENTS_MANIFEST_NAME,
    ReplicationCursor,
    WalSegments,
    decode_frames,
    scrub_wal_file,
)
from repro.storage.snapshots import open_adjacency_snapshot, \
    write_adjacency_snapshot
from repro.storage.wal import WriteAheadLog

__all__ = [
    "PrimaryFeed",
    "ReplicaGraph",
    "ReplicaTailer",
    "promote_replica",
    "verify_store",
    "REPLICA_META_NAME",
]

#: The replica directory's metadata file (lineage, cursor, applied state).
REPLICA_META_NAME = "replica.json"

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{6})\.rcsr$")


def _write_json(path: str, payload: Dict[str, Any]) -> None:
    """Durable small-file write: tmp sibling + fsync + atomic replace."""
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=1, sort_keys=True)
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(tmp_path, path)


def _read_json(path: str) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as stream:
            payload = json.load(stream)
    except (OSError, ValueError) as exc:
        raise StorageError("unreadable {}: {}".format(path, exc)) from exc
    if not isinstance(payload, dict):
        raise StorageError("{} is not a JSON object".format(path))
    return payload


# ----------------------------------------------------------------------
# Primary side
# ----------------------------------------------------------------------

class PrimaryFeed:
    """The primary's replication read surface over one open store.

    Both reads return ``(bytes, meta)`` where ``meta`` is JSON-scalar
    metadata the HTTP tier forwards as ``X-Repro-*`` headers (and the
    in-process loopback used by tests and benches passes through
    verbatim).  ``meta["bytes"]`` is always the *intended* payload length
    — the replica rejects any reply whose body does not match, which is
    what turns a torn ship into a typed error even when the cut lands on
    a frame boundary.

    Fault sites (kinds in parentheses): ``replication.snapshot`` (torn,
    eio) models primary death mid-bootstrap; ``replication.ship`` (torn,
    dup, eio) models a segment cut mid-ship and duplicate/re-ordered
    fetch delivery.
    """

    def __init__(self, store: PersistentGraph):
        self.store = store

    def snapshot(self) -> Tuple[bytes, Dict[str, Any]]:
        """Snapshot bytes + bootstrap metadata (version, start cursor)."""
        data, meta = self.store.replication_bootstrap()
        meta["bytes"] = len(data)
        fault = fault_hook("replication.snapshot")
        if fault is not None:
            if fault.kind == "torn" and data:
                cut = min(len(data) - 1, max(1, int(len(data)
                                                    * fault.fraction)))
                data = data[:cut]
            elif fault.kind in ("eio", "enospc"):
                raise ReplicationError(
                    "injected snapshot feed failure at replication.snapshot")
        return data, meta

    def wal(self, cursor_token: str,
            max_bytes: int = 1 << 20) -> Tuple[bytes, Dict[str, Any]]:
        """The CRC-framed record run at ``cursor_token`` + next cursor."""
        cursor = ReplicationCursor.parse(cursor_token)
        result = self.store.replication_read(cursor, max_bytes=max_bytes)
        data, next_cursor, at_end = result.data, result.cursor, result.at_end
        meta: Dict[str, Any] = {
            "graph": self.store.name,
            "bytes": len(data),
            "version": self.store.replication_version(),
        }
        fault = fault_hook("replication.ship")
        if fault is not None:
            if fault.kind == "torn" and data:
                cut = min(len(data) - 1, max(1, int(len(data)
                                                    * fault.fraction)))
                data = data[:cut]
            elif fault.kind == "dup":
                # Re-serve this run on the next poll too: the replica
                # sees the same records twice (and, interleaved with
                # fresh runs, out of order) — version dedup must absorb
                # them without double-applying.
                next_cursor, at_end = cursor, False
            elif fault.kind in ("eio", "enospc"):
                raise ReplicationError(
                    "injected wal feed failure at replication.ship")
        meta["cursor"] = next_cursor.token()
        meta["at_end"] = at_end
        return data, meta


# ----------------------------------------------------------------------
# Replica side
# ----------------------------------------------------------------------

def _clear_replica_files(directory: str) -> None:
    """Drop any half-bootstrapped replica state (crash before commit)."""
    for entry in os.listdir(directory):
        path = os.path.join(directory, entry)
        if entry == SEGMENTS_DIRNAME and os.path.isdir(path):
            shutil.rmtree(path)
        elif _SNAPSHOT_RE.match(entry) or entry == REPLICA_META_NAME \
                or entry.endswith(".tmp"):
            os.unlink(path)


class ReplicaGraph:
    """A read-only graph tailing a primary's WAL feed.

    Built by :meth:`bootstrap` (fresh, from a primary snapshot) or
    :meth:`open` (crash recovery: replay the local segment log over the
    local snapshot copy).  One ``replication.replica`` ordered lock
    serializes applies, queries, cursor persistence, and re-bootstrap, so
    a query always sees a whole applied batch or none of it.
    """

    def __init__(self, directory: str, meta: Dict[str, Any],
                 base: Any, vertex_props: Dict[Hashable, Dict[str, Any]],
                 edge_props: Dict[Tuple, Dict[str, Any]],
                 segments: WalSegments):
        self.directory = os.path.abspath(directory)
        self._meta = meta
        self._base = base
        self._overlay: Optional[DeltaAdjacency] = None
        self._vertex_props = vertex_props
        self._edge_props = edge_props
        self._segments = segments
        self._cursor = ReplicationCursor.parse(str(meta["cursor"]))
        self._applied_version = int(meta["applied_version"])
        self._primary_version = int(meta.get("primary_version",
                                             meta["applied_version"]))
        self._adapter = _CompactGraphAdapter()
        self._lock = ordered_lock("replication.replica")
        self._closed = False
        now = time.monotonic()
        self._last_contact = now
        self._caught_up_at = now if self._applied_version \
            >= self._primary_version else None
        self._rebootstraps = 0
        self._leak_token = track_resource("replica", self.directory)

    # -- construction --------------------------------------------------

    @classmethod
    def bootstrap(cls, directory: str, source: Any,
                  primary: str = "") -> "ReplicaGraph":
        """Create (or re-create) a replica from the primary's snapshot.

        ``source`` is anything with the feed protocol (``snapshot()`` /
        ``wal(cursor_token, max_bytes)``): a :class:`PrimaryFeed` in
        process, or the HTTP client adapter.  The fetched bytes are
        length- and CRC-verified before anything is committed; the
        ``replica.json`` write is the commit point, so a primary dying
        mid-bootstrap leaves a directory the next attempt wipes cleanly.
        """
        data, meta = source.snapshot()
        expected = int(meta.get("bytes", len(data)))
        if len(data) != expected:
            raise ReplicationCorruptionError(
                "bootstrap snapshot truncated: got {} of {} bytes (primary "
                "died mid-ship?)".format(len(data), expected))
        os.makedirs(directory, exist_ok=True)
        _clear_replica_files(directory)
        snapshot_name = os.path.basename(str(meta["snapshot"]))
        if not _SNAPSHOT_RE.match(snapshot_name):
            raise ReplicationError(
                "primary sent unexpected snapshot name {!r}".format(
                    snapshot_name))
        snapshot_path = os.path.join(directory, snapshot_name)
        tmp_path = snapshot_path + ".tmp"
        with open(tmp_path, "wb") as stream:
            stream.write(data)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp_path, snapshot_path)
        try:
            base, smeta = open_adjacency_snapshot(snapshot_path, mmap=True,
                                                  verify=True)
        except StorageError as exc:
            raise ReplicationCorruptionError(
                "bootstrap snapshot failed verification: {}".format(exc)) \
                from exc
        snapshot_version = int(meta["snapshot_version"])
        segments = WalSegments(os.path.join(directory, SEGMENTS_DIRNAME),
                               base_version=snapshot_version)
        replica_meta = {
            "format": 1,
            "kind": "replica",
            "graph": str(meta.get("graph", "")),
            "primary": primary,
            "snapshot": snapshot_name,
            "snapshot_version": snapshot_version,
            "cursor": str(meta["cursor"]),
            "applied_version": snapshot_version,
            "primary_version": int(meta.get("version", snapshot_version)),
        }
        _write_json(os.path.join(directory, REPLICA_META_NAME), replica_meta)
        return cls(directory, replica_meta, base,
                   dict(smeta.vertex_properties),
                   dict(smeta.edge_properties), segments)

    @classmethod
    def open(cls, directory: str, verify: bool = False) -> "ReplicaGraph":
        """Recover a replica from its local snapshot + segment log.

        The local segments are the durable record of what was applied:
        everything after ``snapshot_version`` is replayed through the
        overlay, and ``applied_version`` resumes from the last local
        record — the persisted cursor then re-fetches at most the
        unacknowledged suffix (dropped by dedup if already present).
        """
        meta_path = os.path.join(directory, REPLICA_META_NAME)
        if not os.path.exists(meta_path):
            raise StorageError(
                "{} is not a replica (no {})".format(directory,
                                                     REPLICA_META_NAME))
        meta = _read_json(meta_path)
        if meta.get("format") != 1 or meta.get("kind") != "replica":
            raise StorageError(
                "{} has unsupported replica metadata".format(meta_path))
        snapshot_path = os.path.join(
            directory, os.path.basename(str(meta["snapshot"])))
        try:
            base, smeta = open_adjacency_snapshot(snapshot_path, mmap=True,
                                                  verify=verify)
        except StorageError as exc:
            if verify:
                raise ReplicationCorruptionError(
                    "replica snapshot failed verification: {}".format(exc)) \
                    from exc
            raise
        segments = WalSegments(os.path.join(directory, SEGMENTS_DIRNAME))
        replica = cls(directory, meta, base, dict(smeta.vertex_properties),
                      dict(smeta.edge_properties), segments)
        snapshot_version = int(meta["snapshot_version"])
        replayed = 0
        batch: List[Tuple] = []
        for entry in segments.iter_entries(after_version=snapshot_version):
            batch.append(entry)
            replayed += 1
        if batch:
            replica._ingest(batch)
            replica._applied_version = int(batch[-1][0])
        replica._meta["applied_version"] = replica._applied_version
        return replica

    # -- applying ------------------------------------------------------

    def _ingest(self, entries: List[Tuple]) -> None:  # guarded-by: _lock
        """Apply decoded records: structure to the overlay, props aside.

        The mirror of ``PersistentGraph._replay``, incremental: the
        overlay is a live view, extended batch by batch.
        """
        structural: List[Tuple] = []
        for entry in entries:
            op = entry[1]
            if op == "pv":
                self._vertex_props.setdefault(entry[2], {}).update(entry[3])
            elif op == "pe":
                self._edge_props.setdefault(
                    (entry[2], entry[3], entry[4]), {}).update(entry[5])
            else:
                structural.append(entry)
                if op == "-v":
                    self._vertex_props.pop(entry[2], None)
                elif op == "-e":
                    self._edge_props.pop((entry[2], entry[3], entry[4]),
                                         None)
        if structural:
            if self._overlay is None:
                self._overlay = DeltaAdjacency(self._base)
            self._overlay.apply(structural)
        if entries and self._overlay is not None:
            self._overlay.version = int(entries[-1][0])

    def poll_once(self, source: Any,
                  max_bytes: int = 1 << 20) -> Dict[str, Any]:
        """One tail step: fetch at the cursor, verify, apply, advance.

        Nothing is applied unless the *whole* fetched run decodes and
        CRC-checks (a torn ship rejects the batch and leaves the cursor
        where it was); records at or below ``applied_version`` are
        dropped (duplicate/re-ordered delivery); survivors are made
        durable in the local segment log *before* the in-memory apply
        and cursor advance, so a crash replays rather than skips.
        Raises the typed :class:`~repro.errors.ReplicationError` family
        on every abnormal path.
        """
        with self._lock:
            self._check_open()
            cursor = self._cursor
        # Fetch and decode outside the lock: a poll must never stall
        # concurrent reads (or, in single-process setups, the very
        # event loop serving the primary) on the network.
        data, meta = source.wal(cursor.token(), max_bytes=max_bytes)
        expected = int(meta.get("bytes", len(data)))
        if len(data) != expected:
            raise ReplicationCorruptionError(
                "wal ship truncated: got {} of {} bytes at cursor "
                "{}".format(len(data), expected, cursor))
        entries, offsets = decode_frames(data, with_spans=True)
        with self._lock:
            self._check_open()
            if self._cursor != cursor:
                # A concurrent re-bootstrap moved the cursor while this
                # fetch was in flight; its records belong to a discarded
                # lineage position — drop the batch, the next poll
                # refetches from the live cursor.
                records, seconds = self._lag_locked()
                return {"fetched": len(entries), "applied": 0,
                        "at_end": False, "lag_records": records,
                        "lag_seconds": seconds,
                        "cursor": self._cursor.token()}
            # The whole run must be version-monotonic (the journal it
            # was cut from is), which also proves the already-applied
            # records form a *prefix* — so the fresh remainder is a
            # contiguous byte suffix of the verified ship, journaled
            # below without re-framing a single record.
            for first, second in zip(entries, entries[1:]):
                if int(second[0]) <= int(first[0]):
                    raise ReplicationCorruptionError(
                        "shipped run is not version-monotonic at cursor "
                        "{} ({} then {})".format(self._cursor, first[0],
                                                 second[0]))
            stale = 0
            while stale < len(entries) \
                    and int(entries[stale][0]) <= self._applied_version:
                stale += 1
            fresh = entries[stale:]
            try:
                fault_point("replication.apply")
            except OSError as exc:
                raise ReplicationError(
                    "replica apply failed at cursor {}: {}".format(
                        self._cursor, exc)) from exc
            self._segments.extend_run(fresh, data, offsets[stale:])
            self._segments.flush()
            self._ingest(fresh)
            if fresh:
                self._applied_version = int(fresh[-1][0])
            self._cursor = ReplicationCursor.parse(str(meta["cursor"]))
            self._primary_version = max(
                self._applied_version, int(meta.get("version",
                                                    self._applied_version)))
            now = time.monotonic()
            self._last_contact = now
            if self._applied_version >= self._primary_version:
                self._caught_up_at = now
            self._persist_meta()
            records, seconds = self._lag_locked()
            return {"fetched": len(entries), "applied": len(fresh),
                    "at_end": bool(meta.get("at_end", False)),
                    "lag_records": records, "lag_seconds": seconds,
                    "cursor": self._cursor.token()}

    def _persist_meta(self) -> None:  # guarded-by: _lock
        self._meta.update(cursor=self._cursor.token(),
                          applied_version=self._applied_version,
                          primary_version=self._primary_version)
        try:
            fault_point("replication.cursor")
            _write_json(os.path.join(self.directory, REPLICA_META_NAME),
                        self._meta)
        except OSError as exc:
            # The records themselves are durable in the local segments;
            # a stale cursor only means refetching an already-applied
            # suffix after a crash (dropped by dedup).  Still a typed
            # error: the tailer counts it and retries.
            raise ReplicationError(
                "replica cursor persist failed: {}".format(exc)) from exc

    def rebootstrap(self, source: Any) -> None:
        """Discard local state and bootstrap afresh (cursor gap recovery).

        The fetch and verification happen before the lock is taken, so
        queries keep serving the old view until the new one is ready to
        swap in atomically.
        """
        data, meta = source.snapshot()
        expected = int(meta.get("bytes", len(data)))
        if len(data) != expected:
            raise ReplicationCorruptionError(
                "re-bootstrap snapshot truncated: got {} of {} "
                "bytes".format(len(data), expected))
        snapshot_name = os.path.basename(str(meta["snapshot"]))
        if not _SNAPSHOT_RE.match(snapshot_name):
            raise ReplicationError(
                "primary sent unexpected snapshot name {!r}".format(
                    snapshot_name))
        snapshot_path = os.path.join(self.directory, snapshot_name)
        tmp_path = snapshot_path + ".tmp"
        with open(tmp_path, "wb") as stream:
            stream.write(data)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp_path, snapshot_path)
        try:
            base, smeta = open_adjacency_snapshot(snapshot_path, mmap=True,
                                                  verify=True)
        except StorageError as exc:
            raise ReplicationCorruptionError(
                "re-bootstrap snapshot failed verification: {}".format(
                    exc)) from exc
        with self._lock:
            self._check_open()
            old_snapshot = os.path.join(
                self.directory, os.path.basename(str(self._meta["snapshot"])))
            self._segments.close()
            shutil.rmtree(os.path.join(self.directory, SEGMENTS_DIRNAME),
                          ignore_errors=True)
            snapshot_version = int(meta["snapshot_version"])
            self._segments = WalSegments(
                os.path.join(self.directory, SEGMENTS_DIRNAME),
                base_version=snapshot_version)
            self._base = base
            self._overlay = None
            self._vertex_props = dict(smeta.vertex_properties)
            self._edge_props = dict(smeta.edge_properties)
            self._cursor = ReplicationCursor.parse(str(meta["cursor"]))
            self._applied_version = snapshot_version
            self._primary_version = int(meta.get("version",
                                                 snapshot_version))
            self._meta.update(snapshot=snapshot_name,
                              snapshot_version=snapshot_version)
            now = time.monotonic()
            self._last_contact = now
            self._caught_up_at = now if self._applied_version \
                >= self._primary_version else None
            self._rebootstraps += 1
            self._persist_meta()
            if os.path.basename(old_snapshot) != snapshot_name:
                try:
                    os.unlink(old_snapshot)
                except OSError:
                    pass

    # -- reads ---------------------------------------------------------

    def view(self) -> Any:
        """The live compact adjacency (overlay once records applied)."""
        with self._lock:
            self._check_open()
            return self._overlay if self._overlay is not None else self._base

    def pairs(self, expression: Any,
              sources: Optional[Iterable[Hashable]] = None,
              targets: Optional[Iterable[Hashable]] = None) -> FrozenSet:
        """RPQ reachability at the replica's applied cursor.

        Runs the same compact product-BFS kernels the primary runs; at
        equal versions the answer sets are identical by construction
        (same snapshot bytes, same records, same kernels).
        """
        from repro.rpq.evaluation import rpq_pairs
        with self._lock:
            self._check_open()
            view = self._overlay if self._overlay is not None else self._base
            return rpq_pairs(self._adapter.pin(view), expression, sources,
                             targets=targets)

    def vertex_properties(self, vertex: Hashable) -> Dict[str, Any]:
        with self._lock:
            return dict(self._vertex_props.get(vertex, {}))

    def edge_properties(self, tail: Hashable, label: Hashable,
                        head: Hashable) -> Dict[str, Any]:
        with self._lock:
            return dict(self._edge_props.get((tail, label, head), {}))

    # -- staleness -----------------------------------------------------

    @property
    def applied_version(self) -> int:
        return self._applied_version

    @property
    def primary_version(self) -> int:
        return self._primary_version

    @property
    def graph_name(self) -> str:
        return str(self._meta.get("graph", ""))

    @property
    def cursor(self) -> ReplicationCursor:
        return self._cursor

    @property
    def rebootstraps(self) -> int:
        return self._rebootstraps

    def lag(self) -> Tuple[int, float]:
        """``(records, seconds)`` behind the primary.

        ``records`` is the version gap at the last successful poll;
        ``seconds`` is the *uncertainty window* — time since the replica
        last confirmed it was caught up (or, while catching up, since it
        was last caught up at all).  Both grow monotonically while the
        primary is unreachable, which is what a staleness bound needs.
        """
        with self._lock:
            return self._lag_locked()

    def _lag_locked(self) -> Tuple[int, float]:
        records = max(0, self._primary_version - self._applied_version)
        now = time.monotonic()
        if records == 0:
            seconds = now - self._last_contact
        else:
            seconds = now - (self._caught_up_at
                             if self._caught_up_at is not None
                             else self._last_contact)
        return records, max(0.0, seconds)

    def check_staleness(self, bound_ms: float) -> Tuple[int, float]:
        """Enforce a per-request staleness bound; returns the lag.

        Raises :class:`~repro.errors.ReplicaStaleError` (HTTP 503 with
        ``Retry-After``) when the uncertainty window exceeds
        ``bound_ms`` — refusing is the contract; silently serving an
        out-of-bound view never is.
        """
        records, seconds = self.lag()
        if seconds * 1000.0 > bound_ms:
            raise ReplicaStaleError(records, seconds, bound_ms)
        return records, seconds

    def info(self) -> Dict[str, Any]:
        with self._lock:
            self._check_open()
            view = self._overlay if self._overlay is not None \
                else self._base
            records, seconds = self._lag_locked()
            return {
                "directory": self.directory,
                "kind": "replica",
                "graph": self.graph_name,
                "primary": str(self._meta.get("primary", "")),
                "snapshot": str(self._meta.get("snapshot", "")),
                "snapshot_version": int(self._meta["snapshot_version"]),
                "applied_version": self._applied_version,
                "primary_version": self._primary_version,
                "cursor": self._cursor.token(),
                "lag_records": records,
                "lag_seconds": seconds,
                "rebootstraps": self._rebootstraps,
                "order": view.num_vertices,
                "size": view.num_edges,
            }

    # -- lifecycle -----------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(
                "replica {} is closed".format(self.directory))

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._segments.close()
            finally:
                self._base = None
                self._overlay = None
                release_resource(self._leak_token)

    def __enter__(self) -> "ReplicaGraph":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return "ReplicaGraph<{}, applied={}, cursor={}{}>".format(
            self.directory, self._applied_version, self._cursor,
            ", closed" if self._closed else "")


class ReplicaTailer:
    """The poll loop driving one replica against one feed.

    Poll-based with equal-jitter pacing (the same discipline as the
    client SDK's retry backoff): a drained feed sleeps about
    ``poll_interval`` (half fixed, half seeded-random — a fleet of
    replicas never thunders in phase), a non-drained one polls straight
    through, and errors back off exponentially up to ``backoff_cap``.
    Cursor gaps trigger an automatic re-bootstrap.  Runs inline
    (:meth:`run` blocks until ``stop`` is set) — callers give it a
    thread; it never spawns its own.
    """

    def __init__(self, replica: ReplicaGraph, source: Any,
                 poll_interval: float = 0.2,
                 backoff_base: float = 0.05,
                 backoff_cap: float = 2.0,
                 max_bytes: int = 1 << 20,
                 seed: int = 0,
                 on_event: Optional[Callable[[str, Dict[str, Any]], None]]
                 = None):
        self.replica = replica
        self.source = source
        self.poll_interval = poll_interval
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_bytes = max_bytes
        self._rng = random.Random(seed)
        self._on_event = on_event
        self.polls = 0
        self.failures = 0
        self.consecutive_failures = 0
        self.last_error: Optional[str] = None
        self._ever_caught_up = False

    def _emit(self, kind: str, detail: Dict[str, Any]) -> None:
        if self._on_event is not None:
            self._on_event(kind, detail)

    def _jitter(self, delay: float) -> float:
        # Equal jitter, the client SDK's discipline: half fixed, half
        # seeded-random — a fleet of replicas never polls in phase.
        return delay / 2.0 + self._rng.random() * (delay / 2.0)

    def step(self) -> float:
        """One poll; returns how long to sleep before the next one."""
        try:
            report = self.replica.poll_once(self.source,
                                            max_bytes=self.max_bytes)
        except ReplicationCursorGapError as exc:
            self.failures += 1
            self.consecutive_failures += 1
            self.last_error = str(exc)
            self._emit("gap", {"error": str(exc)})
            self.replica.rebootstrap(self.source)
            self._emit("rebootstrap", self.replica.info())
            self.consecutive_failures = 0
            self.last_error = None
            return 0.0
        except (ReplicationError, StorageError, OSError) as exc:
            self.failures += 1
            self.consecutive_failures += 1
            self.last_error = "{}: {}".format(type(exc).__name__, exc)
            self._emit("error", {"error": self.last_error,
                                 "consecutive": self.consecutive_failures})
            return self._jitter(
                min(self.backoff_cap,
                    self.backoff_base * (2 ** min(
                        10, self.consecutive_failures - 1))))
        self.polls += 1
        self.consecutive_failures = 0
        self.last_error = None
        if report["lag_records"] == 0:
            self._ever_caught_up = True
        if not report["at_end"]:
            return 0.0
        return self._jitter(self.poll_interval)

    def run(self, stop: Event) -> None:
        """Poll until ``stop`` is set (the serve tier's tail thread)."""
        while not stop.is_set():
            delay = self.step()
            if delay > 0:
                stop.wait(delay)

    def state(self) -> Dict[str, Any]:
        """Readiness detail for ``/readyz``: catching-up vs ready."""
        records, seconds = self.replica.lag()
        ready = self._ever_caught_up and self.consecutive_failures == 0 \
            and records == 0
        return {
            "ready": ready,
            "phase": "ready" if ready else "catching-up",
            "lag_records": records,
            "lag_seconds": seconds,
            "polls": self.polls,
            "failures": self.failures,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
            "rebootstraps": self.replica.rebootstraps,
        }


# ----------------------------------------------------------------------
# Promote
# ----------------------------------------------------------------------

def promote_replica(directory: str) -> Dict[str, Any]:
    """Flip a replica store into a writable primary (operator failover).

    Seals the local segment tail, CRC-verifies the snapshot copy and
    every retained segment (a corrupt replica must fail promotion, not
    become the new source of truth), folds snapshot + applied records
    into a fresh :class:`PersistentGraph` generation, publishes its
    ``manifest.json``, archives the shipped segments, and retires
    ``replica.json``.  The directory then opens writable — and, because
    a fresh segment log is started at the promoted version, immediately
    serves as a replication primary whose old replicas re-bootstrap.
    """
    meta_path = os.path.join(directory, REPLICA_META_NAME)
    if not os.path.exists(meta_path):
        if os.path.exists(os.path.join(directory, MANIFEST_NAME)):
            raise StorageError(
                "{} is already a writable primary".format(directory))
        raise StorageError(
            "{} is not a replica (no {})".format(directory,
                                                 REPLICA_META_NAME))
    replica = ReplicaGraph.open(directory, verify=True)
    try:
        replica._segments.seal_tail()
        report = replica._segments.verify()
        if not report["ok"]:
            raise ReplicationCorruptionError(
                "segment scrub failed at {}".format(report["first_corrupt"]))
        with replica._lock:
            view = replica._overlay if replica._overlay is not None \
                else replica._base
            version = replica._applied_version
            vertex_props = {v: dict(p) for v, p in
                            replica._vertex_props.items() if p}
            edge_props = {k: dict(p) for k, p in
                          replica._edge_props.items() if p}
            old_snapshot = os.path.basename(str(replica._meta["snapshot"]))
            match = _SNAPSHOT_RE.match(old_snapshot)
            generation = int(match.group(1)) + 1 if match else 1
            snapshot_name = "snapshot-{:06d}.rcsr".format(generation)
            wal_name = "wal-{:06d}.log".format(generation)
            write_adjacency_snapshot(
                os.path.join(directory, snapshot_name), view,
                name=replica.graph_name, version=version,
                vertex_properties=vertex_props,
                edge_properties=edge_props)
            new_wal = WriteAheadLog(os.path.join(directory, wal_name))
            try:
                manifest = {
                    "format": 1,
                    "kind": "multirelational",
                    "name": replica.graph_name,
                    "generation": generation,
                    "snapshot": snapshot_name,
                    "wal": wal_name,
                    "snapshot_version": version,
                }
                _write_manifest(directory, manifest)
            finally:
                new_wal.close()
            # Shipped segments are provenance now: archive them and
            # restart the log at the promoted version, so this store
            # can immediately serve as a primary in its own right.
            replica._segments.reset_base(version)
            os.replace(meta_path, meta_path + ".promoted")
            if old_snapshot != snapshot_name:
                try:
                    os.unlink(os.path.join(directory, old_snapshot))
                except OSError:
                    pass
            return {"directory": os.path.abspath(directory),
                    "generation": generation,
                    "snapshot": snapshot_name,
                    "snapshot_version": version,
                    "promoted_from": str(replica._meta.get("primary", ""))}
    finally:
        replica.close()


# ----------------------------------------------------------------------
# Offline verification (repro db verify)
# ----------------------------------------------------------------------

def _scrub_segments_dir(directory: str,
                        findings: List[Dict[str, Any]]) -> None:
    """Read-only scrub of a segments/ tree (no tail repair, no writes)."""
    manifest_path = os.path.join(directory, SEGMENTS_MANIFEST_NAME)
    try:
        manifest = WalSegments._load_manifest(manifest_path)
    except StorageError as exc:
        findings.append({"artifact": manifest_path, "kind": "corrupt",
                         "reason": str(exc)})
        return
    for entry in manifest.get("segments", []):
        name = str(entry.get("name", ""))
        path = os.path.join(directory, name)
        limit = int(entry["end_offset"]) if entry.get("sealed") else None
        records, durable_end, finding = scrub_wal_file(path, limit=limit)
        if finding is None and limit is not None and durable_end < limit:
            finding = {"kind": "corrupt", "record": records,
                       "offset": durable_end,
                       "reason": "sealed segment shorter than its "
                                 "recorded durable length"}
        if finding is not None:
            findings.append(dict(finding, artifact=path))


def verify_store(directory: str) -> Dict[str, Any]:
    """Offline CRC scrub of a store directory (primary or replica).

    Checks every snapshot file's header + data-region CRC, every WAL /
    segment record's frame CRC, and the manifests — reusing the exact
    frame and header readers the live paths use (no second format
    implementation to drift).  Returns ``{"ok", "kind", "artifacts",
    "first_corrupt", "notes"}``; a torn WAL tail is a *note* (the
    documented crash artifact, repaired on open), while any CRC mismatch
    or short committed region is a corruption that fails the scrub.
    """
    directory = os.path.abspath(directory)
    findings: List[Dict[str, Any]] = []
    notes: List[Dict[str, Any]] = []
    artifacts: List[str] = []

    def scrub_snapshot(path: str) -> None:
        artifacts.append(path)
        try:
            open_adjacency_snapshot(path, mmap=True, verify=True)
        except StorageError as exc:
            findings.append({"artifact": path, "kind": "corrupt",
                             "reason": str(exc)})

    def scrub_wal(path: str, limit: Optional[int] = None) -> None:
        artifacts.append(path)
        _, _, finding = scrub_wal_file(path, limit=limit)
        if finding is None:
            return
        if finding["kind"] == "torn-tail":
            notes.append(dict(finding, artifact=path))
        else:
            findings.append(dict(finding, artifact=path))

    manifest_path = os.path.join(directory, MANIFEST_NAME)
    replica_path = os.path.join(directory, REPLICA_META_NAME)
    segments_dir = os.path.join(directory, SEGMENTS_DIRNAME)
    if os.path.exists(manifest_path):
        kind = "store"
        artifacts.append(manifest_path)
        try:
            manifest = _read_json(manifest_path)
            scrub_snapshot(os.path.join(
                directory, os.path.basename(str(manifest["snapshot"]))))
            scrub_wal(os.path.join(
                directory, os.path.basename(str(manifest["wal"]))))
        except (StorageError, KeyError) as exc:
            findings.append({"artifact": manifest_path, "kind": "corrupt",
                             "reason": str(exc)})
    elif os.path.exists(replica_path):
        kind = "replica"
        artifacts.append(replica_path)
        try:
            meta = _read_json(replica_path)
            scrub_snapshot(os.path.join(
                directory, os.path.basename(str(meta["snapshot"]))))
        except (StorageError, KeyError) as exc:
            findings.append({"artifact": replica_path, "kind": "corrupt",
                             "reason": str(exc)})
    else:
        raise StorageError(
            "{} is neither a graph store nor a replica".format(directory))
    if os.path.isdir(segments_dir):
        artifacts.append(os.path.join(segments_dir, SEGMENTS_MANIFEST_NAME))
        before = len(findings)
        _scrub_segments_dir(segments_dir, findings)
        for entry in findings[before:]:
            artifacts.append(str(entry.get("artifact", "")))
    return {
        "ok": not findings,
        "kind": kind,
        "directory": directory,
        "artifacts": artifacts,
        "first_corrupt": findings[0] if findings else None,
        "corrupt": findings,
        "notes": notes,
    }
