"""Basic graph patterns: conjunctive queries over the ternary store.

A traversal engine needs more than linear path expressions: real queries
("find authors of papers that cite a paper published in venue V") are
*conjunctions* of triple patterns sharing variables — SPARQL's basic graph
patterns, Cypher's MATCH clauses.  This module adds that layer on top of
the store's indices:

* :class:`Var` — a query variable (``Var("x")``, or the ``?x`` shorthand in
  :func:`triple`),
* :class:`TriplePattern` — one ``(tail, label, head)`` pattern over
  constants and variables,
* :class:`BGPQuery` — a conjunction, solved by index-backed backtracking
  with greedy most-selective-first pattern ordering (the same statistics
  rationale as the path planner).

Solutions are immutable bindings ``variable name -> value``.  Path atoms
and BGPs compose: a path query's endpoint pairs can seed a BGP via
constants, and a BGP's bindings can parameterize path queries (see
``examples/knowledge_graph.py`` and the integration tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import PathAlgebraError
from repro.graph.graph import MultiRelationalGraph

__all__ = ["Var", "TriplePattern", "BGPQuery", "triple", "solve"]


class PatternError(PathAlgebraError):
    """Raised for malformed patterns (e.g. a query with no patterns)."""


@dataclass(frozen=True)
class Var:
    """A query variable, identified by name."""

    name: str

    def __repr__(self) -> str:
        return "?{}".format(self.name)


Term = Union[Var, Hashable]


def _parse_term(term: Term) -> Term:
    """Strings beginning with ``?`` become variables; all else is constant."""
    if isinstance(term, str) and term.startswith("?") and len(term) > 1:
        return Var(term[1:])
    return term


def triple(tail: Term, label: Term, head: Term) -> "TriplePattern":
    """Build a pattern with the ``?name`` shorthand for variables.

    >>> triple("?author", "authored", "?paper")
    TriplePattern(?author, 'authored', ?paper)
    """
    return TriplePattern(_parse_term(tail), _parse_term(label), _parse_term(head))


@dataclass(frozen=True)
class TriplePattern:
    """One ``(tail, label, head)`` pattern over constants and variables."""

    tail: Term
    label: Term
    head: Term

    def variables(self) -> FrozenSet[str]:
        """Names of the variables this pattern mentions."""
        return frozenset(
            term.name for term in (self.tail, self.label, self.head)
            if isinstance(term, Var))

    def ground(self, binding: Dict[str, Hashable]) -> "TriplePattern":
        """Substitute bound variables with their values."""
        def substitute(term: Term) -> Term:
            if isinstance(term, Var) and term.name in binding:
                return binding[term.name]
            return term
        return TriplePattern(substitute(self.tail), substitute(self.label),
                             substitute(self.head))

    def constant_parts(self) -> Tuple[Optional[Hashable], Optional[Hashable],
                                      Optional[Hashable]]:
        """The (tail, label, head) constants, None where a variable sits."""
        def constant(term: Term) -> Optional[Hashable]:
            return None if isinstance(term, Var) else term
        return (constant(self.tail), constant(self.label), constant(self.head))

    def selectivity_key(self, graph: MultiRelationalGraph,
                        bound: FrozenSet[str]) -> int:
        """Estimated candidate count after grounding the ``bound`` variables.

        Used by the greedy join-ordering: patterns whose constants (or
        already-bound variables) pin an index come first.
        """
        tail, label, head = self.constant_parts()
        tail_known = tail is not None or (
            isinstance(self.tail, Var) and self.tail.name in bound)
        label_known = label is not None or (
            isinstance(self.label, Var) and self.label.name in bound)
        head_known = head is not None or (
            isinstance(self.head, Var) and self.head.name in bound)
        # Rough cardinalities per index shape; exact values are not needed,
        # only a sensible ordering.
        if tail_known and label_known:
            return 1
        if label_known and head_known:
            return 1
        if tail_known or head_known:
            return max(1, graph.size() // max(1, graph.order()))
        if label_known:
            histogram = graph.label_histogram()
            if label is not None:
                return histogram.get(label, graph.size())
            return max(histogram.values(), default=graph.size())
        return graph.size()

    def __repr__(self) -> str:
        return "TriplePattern({!r}, {!r}, {!r})".format(
            self.tail, self.label, self.head)


class BGPQuery:
    """A conjunction of triple patterns, solved against one graph.

    >>> q = BGPQuery([
    ...     triple("?a", "authored", "?p"),
    ...     triple("?p", "published_in", "venue0"),
    ... ])
    >>> # solutions = list(q.solve(graph))
    """

    def __init__(self, patterns: Iterable[TriplePattern]):
        self.patterns: List[TriplePattern] = list(patterns)
        if not self.patterns:
            raise PatternError("a BGP needs at least one triple pattern")

    def variables(self) -> FrozenSet[str]:
        """All variable names across the conjunction."""
        out: set = set()
        for pattern in self.patterns:
            out |= pattern.variables()
        return frozenset(out)

    def solve(self, graph: MultiRelationalGraph,
              limit: Optional[int] = None) -> Iterator[Dict[str, Hashable]]:
        """Yield solution bindings, lazily.

        Backtracking with greedy dynamic ordering: at each depth the
        remaining pattern with the smallest selectivity key (given the
        variables bound so far) is expanded next.
        """
        produced = 0

        def backtrack(remaining: List[TriplePattern],
                      binding: Dict[str, Hashable]) -> Iterator[Dict[str, Hashable]]:
            if not remaining:
                yield dict(binding)
                return
            bound = frozenset(binding)
            ordered = sorted(
                range(len(remaining)),
                key=lambda i: remaining[i].selectivity_key(graph, bound))
            chosen = remaining[ordered[0]]
            rest = [p for i, p in enumerate(remaining) if i != ordered[0]]
            grounded = chosen.ground(binding)
            tail_c, label_c, head_c = grounded.constant_parts()
            for e in graph.match(tail=tail_c, label=label_c, head=head_c):
                extension = dict(binding)
                consistent = True
                for term, value in ((grounded.tail, e.tail),
                                    (grounded.label, e.label),
                                    (grounded.head, e.head)):
                    if isinstance(term, Var):
                        if term.name in extension and extension[term.name] != value:
                            consistent = False
                            break
                        extension[term.name] = value
                    elif term != value:
                        consistent = False
                        break
                if consistent:
                    yield from backtrack(rest, extension)

        for solution in backtrack(self.patterns, {}):
            yield solution
            produced += 1
            if limit is not None and produced >= limit:
                return

    def solve_all(self, graph: MultiRelationalGraph) -> List[Dict[str, Hashable]]:
        """All solutions, materialized and deduplicated, deterministic order."""
        unique = {tuple(sorted(s.items(), key=repr)): s
                  for s in self.solve(graph)}
        return [unique[key] for key in sorted(unique, key=repr)]

    def select(self, graph: MultiRelationalGraph,
               *variables: str) -> List[Tuple[Hashable, ...]]:
        """Project solutions onto the named variables (distinct rows).

        Raises
        ------
        PatternError
            If a projected variable does not occur in the query.
        """
        known = self.variables()
        for name in variables:
            if name not in known:
                raise PatternError(
                    "variable ?{} does not occur in the query".format(name))
        rows = {tuple(s[name] for name in variables) for s in self.solve(graph)}
        return sorted(rows, key=repr)

    def __repr__(self) -> str:
        return "BGPQuery<{} patterns, vars={}>".format(
            len(self.patterns), sorted(self.variables()))


def solve(graph: MultiRelationalGraph, *patterns: TriplePattern,
          limit: Optional[int] = None) -> List[Dict[str, Hashable]]:
    """One-shot convenience: build the query and materialize its solutions."""
    out = []
    for solution in BGPQuery(patterns).solve(graph, limit=limit):
        out.append(solution)
    return out
