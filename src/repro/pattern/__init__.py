"""Basic graph patterns (conjunctive queries) over the ternary store."""

from repro.pattern.bgp import BGPQuery, PatternError, TriplePattern, Var, solve, triple

__all__ = ["Var", "TriplePattern", "BGPQuery", "triple", "solve", "PatternError"]
