"""Command-line interface for the traversal engine.

Usage (after ``pip install -e .``)::

    python -m repro.cli query GRAPH_FILE 'PATHQL'   [--strategy S] [--max-length N] [--limit K]
    python -m repro.cli explain GRAPH_FILE 'PATHQL' [--max-length N]
    python -m repro.cli stats GRAPH_FILE
    python -m repro.cli dot GRAPH_FILE
    python -m repro.cli demo

``GRAPH_FILE`` may be triple CSV (``.csv``/``.txt``), JSON (``.json``) or
GraphML (``.graphml``/``.xml``); the loader dispatches on extension.
``demo`` runs the Figure 1 query on the built-in Figure 1 graph.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.datasets.paper import figure1_graph
from repro.engine import Engine
from repro.errors import PathAlgebraError
from repro.graph import io as graph_io
from repro.graph import statistics
from repro.graph.graph import MultiRelationalGraph
from repro.viz import graph_to_dot

__all__ = ["main", "load_graph", "build_parser"]

FIGURE1_QUERY = ("[i, alpha, _] . [_, beta, _]* . "
                 "(([_, alpha, j] . {(j, alpha, i)}) | [_, alpha, k])")


def load_graph(path: str) -> MultiRelationalGraph:
    """Load a graph file, dispatching on its extension."""
    lower = path.lower()
    if lower.endswith(".json"):
        return graph_io.read_json(path)
    if lower.endswith((".graphml", ".xml")):
        return graph_io.read_graphml(path)
    return graph_io.read_triples(path)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument grammar."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-relational path algebra traversal engine")
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser("query", help="run a PathQL query")
    query.add_argument("graph", help="graph file (csv/json/graphml)")
    query.add_argument("pathql", help="PathQL query text")
    query.add_argument("--strategy", default="materialized",
                       choices=["materialized", "streaming", "automaton", "stack"])
    query.add_argument("--max-length", type=int, default=8)
    query.add_argument("--limit", type=int, default=None)
    query.add_argument("--json", action="store_true",
                       help="emit results as JSON instead of text")

    explain = commands.add_parser("explain", help="show the query plan")
    explain.add_argument("graph")
    explain.add_argument("pathql")
    explain.add_argument("--max-length", type=int, default=8)

    stats = commands.add_parser("stats", help="summarize a graph file")
    stats.add_argument("graph")

    dot = commands.add_parser("dot", help="emit Graphviz DOT for a graph file")
    dot.add_argument("graph")

    commands.add_parser("demo", help="run the paper's Figure 1 query")
    return parser


def _run_query(graph: MultiRelationalGraph, pathql: str, strategy: str,
               max_length: int, limit: Optional[int], as_json: bool,
               out) -> None:
    engine = Engine(graph)
    result = engine.query(pathql, strategy=strategy,
                          max_length=max_length, limit=limit)
    if as_json:
        payload = {
            "query": pathql,
            "strategy": result.strategy,
            "elapsed_seconds": result.elapsed,
            "count": len(result),
            "paths": [
                [[e.tail, e.label, e.head] for e in p] for p in result.paths
            ],
        }
        out.write(json.dumps(payload, indent=2, default=str) + "\n")
        return
    out.write("{} paths via {} in {:.4f}s\n".format(
        len(result), result.strategy, result.elapsed))
    for p in result.paths:
        out.write("  {}\n".format(p))


def main(argv: Optional[list] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "query":
            _run_query(load_graph(args.graph), args.pathql, args.strategy,
                       args.max_length, args.limit, args.json, out)
        elif args.command == "explain":
            engine = Engine(load_graph(args.graph))
            out.write(engine.explain(args.pathql, max_length=args.max_length) + "\n")
        elif args.command == "stats":
            summary = statistics.summarize(load_graph(args.graph))
            out.write(json.dumps(summary, indent=2, default=str) + "\n")
        elif args.command == "dot":
            out.write(graph_to_dot(load_graph(args.graph)) + "\n")
        elif args.command == "demo":
            out.write("Figure 1 query over the built-in Figure 1 graph:\n")
            out.write("  {}\n\n".format(FIGURE1_QUERY))
            _run_query(figure1_graph(), FIGURE1_QUERY, "automaton", 6, None,
                       False, out)
        return 0
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except (PathAlgebraError, OSError) as error:
        try:
            out.write("error: {}\n".format(error))
        except BrokenPipeError:
            pass
        return 1


if __name__ == "__main__":
    sys.exit(main())
