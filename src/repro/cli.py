"""Command-line interface for the traversal engine.

Usage (after ``pip install -e .``)::

    python -m repro.cli query GRAPH_FILE 'PATHQL'   [--strategy S] [--max-length N] [--limit K]
    python -m repro.cli explain GRAPH_FILE 'PATHQL' [--max-length N]
    python -m repro.cli stats GRAPH_FILE
    python -m repro.cli dot GRAPH_FILE
    python -m repro.cli demo
    python -m repro.cli db init DIR [--graph GRAPH_FILE] [--name NAME]
    python -m repro.cli db open DIR ['PATHQL' ...query options]
    python -m repro.cli db checkpoint DIR
    python -m repro.cli db info DIR [--verify]
    python -m repro.cli db shard DIR [--shards N] [--out SUBDIR]
    python -m repro.cli serve ROOT [--host H] [--port P] [--token T=TENANT]
                                   [--workers N] [--max-concurrency N]
                                   [--queue-depth N] [--deadline-ms MS]
                                   [--cache N] [--quota TENANT=N]

``GRAPH_FILE`` may be triple CSV (``.csv``/``.txt``), JSON (``.json``) or
GraphML (``.graphml``/``.xml``); the loader dispatches on extension.
``demo`` runs the Figure 1 query on the built-in Figure 1 graph.  The
``db`` family manages durable graph stores (write-ahead log + mmap'd CSR
snapshots, see ``docs/persistence.md``): ``init`` seeds a store from a
graph file, ``open`` recovers one (optionally running a query against it),
``checkpoint`` folds the log into a fresh snapshot generation, ``info``
reports manifest/WAL/recovery state as JSON, and ``shard`` spills the
store's snapshot as per-vertex-range shard files (``docs/sharding.md``)
so parallel worker processes can mmap just the rows they own.

``serve`` runs the async HTTP/JSON query service (``docs/serving.md``)
over a directory of stores: one subdirectory per graph name, multi-tenant
bearer-token auth, per-request deadlines, 429 shedding with
``Retry-After``, and a version-keyed result cache shared across graphs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

from repro.datasets.paper import figure1_graph
from repro.engine import Engine
from repro.errors import PathAlgebraError
from repro.graph import io as graph_io
from repro.graph import statistics
from repro.graph.graph import MultiRelationalGraph
from repro.viz import graph_to_dot

__all__ = ["main", "load_graph", "build_parser"]

FIGURE1_QUERY = ("[i, alpha, _] . [_, beta, _]* . "
                 "(([_, alpha, j] . {(j, alpha, i)}) | [_, alpha, k])")


def load_graph(path: str) -> MultiRelationalGraph:
    """Load a graph file, dispatching on its extension."""
    lower = path.lower()
    if lower.endswith(".json"):
        return graph_io.read_json(path)
    if lower.endswith((".graphml", ".xml")):
        return graph_io.read_graphml(path)
    return graph_io.read_triples(path)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument grammar."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-relational path algebra traversal engine")
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser("query", help="run a PathQL query")
    query.add_argument("graph", help="graph file (csv/json/graphml)")
    query.add_argument("pathql", help="PathQL query text")
    query.add_argument("--strategy", default="materialized",
                       choices=["materialized", "streaming", "automaton", "stack"])
    query.add_argument("--max-length", type=int, default=8)
    query.add_argument("--limit", type=int, default=None)
    query.add_argument("--json", action="store_true",
                       help="emit results as JSON instead of text")

    explain = commands.add_parser("explain", help="show the query plan")
    explain.add_argument("graph")
    explain.add_argument("pathql")
    explain.add_argument("--max-length", type=int, default=8)

    lint_query = commands.add_parser(
        "lint-query", help="pre-flight analysis report for a query "
                           "(unknown labels, DFA pruning, provable "
                           "emptiness) without running it")
    lint_query.add_argument("graph", help="graph file (csv/json/graphml)")
    lint_query.add_argument("pathql", help="PathQL query text")

    stats = commands.add_parser("stats", help="summarize a graph file")
    stats.add_argument("graph")

    dot = commands.add_parser("dot", help="emit Graphviz DOT for a graph file")
    dot.add_argument("graph")

    commands.add_parser("demo", help="run the paper's Figure 1 query")

    db = commands.add_parser(
        "db", help="durable graph stores (write-ahead log + snapshots)")
    db_commands = db.add_subparsers(dest="db_command", required=True)

    db_init = db_commands.add_parser(
        "init", help="create a store, optionally seeded from a graph file")
    db_init.add_argument("directory", help="store directory to create")
    db_init.add_argument("--graph", default=None,
                         help="graph file (csv/json/graphml) to seed from")
    db_init.add_argument("--name", default="", help="graph name")

    db_open = db_commands.add_parser(
        "open", help="open a store (recover the WAL), optionally query it")
    db_open.add_argument("directory", help="store directory")
    db_open.add_argument("pathql", nargs="?", default=None,
                         help="optional PathQL query to run after opening")
    db_open.add_argument("--strategy", default="materialized",
                         choices=["materialized", "streaming", "automaton",
                                  "stack"])
    db_open.add_argument("--max-length", type=int, default=8)
    db_open.add_argument("--limit", type=int, default=None)
    db_open.add_argument("--json", action="store_true",
                         help="emit results as JSON instead of text")

    db_checkpoint = db_commands.add_parser(
        "checkpoint", help="fold the WAL into a fresh snapshot generation")
    db_checkpoint.add_argument("directory", help="store directory")

    db_info = db_commands.add_parser(
        "info", help="report manifest / WAL / recovery state as JSON")
    db_info.add_argument("directory", help="store directory")
    db_info.add_argument("--verify", action="store_true",
                         help="also checksum the snapshot data region")

    db_shard = db_commands.add_parser(
        "shard", help="spill the store's snapshot as vertex-range shard "
                      "files for the parallel executor")
    db_shard.add_argument("directory", help="store directory")
    db_shard.add_argument("--shards", type=int, default=None,
                          help="shard count (default: cpu count)")
    db_shard.add_argument("--out", default="shards",
                          help="output subdirectory inside the store "
                               "(default: shards)")

    db_verify = db_commands.add_parser(
        "verify", help="offline CRC scrub of a store or replica directory; "
                       "exit 1 and report the first corrupt record on "
                       "damage")
    db_verify.add_argument("directory", help="store or replica directory")

    db_promote = db_commands.add_parser(
        "promote", help="promote a replica directory to a writable "
                        "primary store (seals and verifies the shipped "
                        "log first)")
    db_promote.add_argument("directory", help="replica directory")

    serve = commands.add_parser(
        "serve", help="run the async HTTP/JSON query service over a "
                      "directory of graph stores")
    serve.add_argument("root", help="directory holding one store "
                                    "subdirectory per graph name")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="listen port (0 picks a free one and prints it)")
    serve.add_argument("--token", action="append", default=[],
                       metavar="TOKEN=TENANT",
                       help="accept bearer TOKEN for TENANT (repeatable; "
                            "none = open access as tenant 'anonymous')")
    serve.add_argument("--workers", type=int, default=4,
                       help="query worker threads shared across graphs")
    serve.add_argument("--max-concurrency", type=int, default=None,
                       help="concurrent queries per graph "
                            "(default: --workers)")
    serve.add_argument("--queue-depth", type=int, default=32,
                       help="waiting queries per graph before shedding "
                            "with 429 (default: 32)")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       help="default per-query deadline in milliseconds")
    serve.add_argument("--cache", type=int, default=256,
                       help="shared result-cache capacity (0 disables)")
    serve.add_argument("--quota", action="append", default=[],
                       metavar="TENANT=N",
                       help="per-tenant concurrent-query quota "
                            "(repeatable; default 8 each)")
    serve.add_argument("--replicate", action="store_true",
                       help="open stores with a shippable segment log and "
                            "serve GET /replication/* to replicas")
    serve.add_argument("--access-log", nargs="?", const="-", default=None,
                       metavar="PATH",
                       help="write one JSON access-log line per request "
                            "to PATH ('-' or no value = stderr; off by "
                            "default)")
    serve.add_argument("--replica-of", default=None, metavar="URL",
                       help="serve ROOT as a read-only replica tailing "
                            "the primary at URL (ROOT is the replica "
                            "state directory)")
    serve.add_argument("--graph", default=None,
                       help="with --replica-of: the graph name to "
                            "replicate (default: the primary's only "
                            "graph)")
    serve.add_argument("--primary-token", default=None,
                       help="with --replica-of: bearer token presented "
                            "to the primary's /replication endpoints")
    serve.add_argument("--poll-interval", type=float, default=0.2,
                       help="with --replica-of: WAL tail poll interval "
                            "in seconds (default: 0.2)")
    return parser


def _run_lint_query(graph: MultiRelationalGraph, pathql: str, out) -> int:
    """``repro lint-query``: print the pre-flight report, run nothing.

    Exit code 0 when the query is satisfiable, 1 when pre-flight analysis
    proves it empty over this graph — so the command doubles as a gate in
    scripts that vet queries before shipping them.
    """
    from repro.analysis.query import analyze_expression
    from repro.rpq.evaluation import lower_to_constrained_query
    engine = Engine(graph)
    expression = engine.compile(pathql)
    constrained = lower_to_constrained_query(expression)
    if constrained is not None:
        diagnostics = engine.preflight(constrained.label_expression)
        out.write("route: pairs fast path ({})\n".format(
            constrained.describe()))
    else:
        diagnostics = analyze_expression(expression, graph)
        out.write("route: bounded automaton fallback (edge-set algebra)\n")
    out.write(diagnostics.describe() + "\n")
    return 1 if diagnostics.empty else 0


def _run_query(graph: MultiRelationalGraph, pathql: str, strategy: str,
               max_length: int, limit: Optional[int], as_json: bool,
               out) -> None:
    engine = Engine(graph)
    result = engine.query(pathql, strategy=strategy,
                          max_length=max_length, limit=limit)
    if as_json:
        payload = {
            "query": pathql,
            "strategy": result.strategy,
            "elapsed_seconds": result.elapsed,
            "count": len(result),
            "paths": [
                [[e.tail, e.label, e.head] for e in p] for p in result.paths
            ],
        }
        out.write(json.dumps(payload, indent=2, default=str) + "\n")
        return
    out.write("{} paths via {} in {:.4f}s\n".format(
        len(result), result.strategy, result.elapsed))
    for p in result.paths:
        out.write("  {}\n".format(p))


def _run_db(args, out) -> int:
    """The ``db`` subcommand family over :class:`repro.storage.PersistentGraph`."""
    from repro.storage import PersistentGraph

    if args.db_command == "init":
        graph = load_graph(args.graph) if args.graph else None
        with PersistentGraph.create(args.directory, graph=graph,
                                    name=args.name) as store:
            out.write(json.dumps(store.info(), indent=2, default=str) + "\n")
    elif args.db_command == "open":
        with PersistentGraph.open(args.directory,
                                  materialize=args.pathql is not None) as store:
            if args.pathql is None:
                out.write(json.dumps(store.info(), indent=2, default=str) + "\n")
            else:
                _run_query(store.graph(), args.pathql, args.strategy,
                           args.max_length, args.limit, args.json, out)
    elif args.db_command == "checkpoint":
        with PersistentGraph.open(args.directory) as store:
            out.write(json.dumps(store.checkpoint(), indent=2,
                                 default=str) + "\n")
    elif args.db_command == "info":
        with PersistentGraph.open(args.directory) as store:
            info = store.info()
            if args.verify:
                from repro.storage import open_adjacency_snapshot
                open_adjacency_snapshot(
                    os.path.join(args.directory, info["snapshot"]),
                    mmap=False, verify=True)
                info["snapshot_checksum"] = "ok"
            out.write(json.dumps(info, indent=2, default=str) + "\n")
    elif args.db_command == "shard":
        from repro.graph.sharding import sharded_snapshot
        from repro.storage import write_sharded_snapshots
        shards = args.shards if args.shards else (os.cpu_count() or 1)
        with PersistentGraph.open(args.directory,
                                  materialize=True) as store:
            manifest = write_sharded_snapshots(
                os.path.join(args.directory, args.out),
                sharded_snapshot(store.graph(), shards),
                name=store.info().get("name", ""))
        manifest["directory"] = args.out
        out.write(json.dumps(manifest, indent=2, default=str) + "\n")
    elif args.db_command == "verify":
        from repro.replication import verify_store
        report = verify_store(args.directory)
        out.write(json.dumps(report, indent=2, default=str) + "\n")
        if not report["ok"]:
            first = report.get("first_corrupt")
            out.write("FIRST CORRUPT: {}\n".format(
                json.dumps(first, default=str)))
            return 1
    elif args.db_command == "promote":
        from repro.replication import promote_replica
        report = promote_replica(args.directory)
        out.write(json.dumps(report, indent=2, default=str) + "\n")
    return 0


def _parse_mapping(pairs, flag):
    """``KEY=VALUE`` repeatable-flag entries as a dict."""
    mapping = {}
    for item in pairs:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise PathAlgebraError(
                "{} expects KEY=VALUE, got {!r}".format(flag, item))
        mapping[key] = value
    return mapping


def _run_serve(args, out) -> int:
    """``repro serve``: the async HTTP/JSON query service (docs/serving.md)."""
    import asyncio
    import signal

    from repro.service import serve as service_serve

    # Chaos/testing hook (docs/robustness.md): REPRO_FAULTS arms named
    # fault sites for this server process, e.g.
    #   REPRO_FAULTS="wal.fsync:eio:times=1;http.connection_drop:drop"
    # Unset (the production default) leaves every hook a no-op.
    spec = os.environ.get("REPRO_FAULTS")
    if spec:
        from repro.faults import FaultPlan, install_plan
        install_plan(FaultPlan.from_spec(spec))
        out.write("fault plan armed: {}\n".format(spec))

    tokens = _parse_mapping(args.token, "--token")
    quotas = {tenant: int(count) for tenant, count in
              _parse_mapping(args.quota, "--quota").items()}
    if args.deadline_ms is not None and args.deadline_ms <= 0:
        raise PathAlgebraError("--deadline-ms must be positive")

    access_log = None
    log_stream = None
    if args.access_log is not None:
        if args.access_log == "-":
            log_stream = sys.stderr
        else:
            log_stream = open(args.access_log, "a", encoding="utf-8")

        def access_log(entry):
            log_stream.write(json.dumps(entry, default=str) + "\n")
            log_stream.flush()

    async def run() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)

        def ready(host: str, port: int) -> None:
            out.write("serving {} on http://{}:{}\n".format(
                args.root, host, port))
            out.flush()

        try:
            if args.replica_of is not None:
                from repro.service.http import serve_replica
                await serve_replica(
                    args.root, args.replica_of, host=args.host,
                    port=args.port, graph=args.graph, tokens=tokens,
                    primary_token=args.primary_token,
                    poll_interval=args.poll_interval, ready=ready,
                    stop_event=stop, access_log=access_log)
            else:
                await service_serve(
                    args.root, host=args.host, port=args.port,
                    tokens=tokens, ready=ready, stop_event=stop,
                    access_log=access_log,
                    max_workers=args.workers,
                    max_concurrency=args.max_concurrency,
                    max_queue_depth=args.queue_depth,
                    default_deadline=None if args.deadline_ms is None
                    else args.deadline_ms / 1000.0,
                    cache_capacity=args.cache, quotas=quotas,
                    replicate=args.replicate)
        finally:
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.remove_signal_handler(signum)

    try:
        asyncio.run(run())
    finally:
        if log_stream is not None and log_stream is not sys.stderr:
            log_stream.close()
    out.write("shutdown complete\n")
    return 0


def main(argv: Optional[list] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "query":
            _run_query(load_graph(args.graph), args.pathql, args.strategy,
                       args.max_length, args.limit, args.json, out)
        elif args.command == "explain":
            engine = Engine(load_graph(args.graph))
            out.write(engine.explain(args.pathql, max_length=args.max_length) + "\n")
        elif args.command == "lint-query":
            return _run_lint_query(load_graph(args.graph), args.pathql, out)
        elif args.command == "stats":
            summary = statistics.summarize(load_graph(args.graph))
            out.write(json.dumps(summary, indent=2, default=str) + "\n")
        elif args.command == "dot":
            out.write(graph_to_dot(load_graph(args.graph)) + "\n")
        elif args.command == "db":
            return _run_db(args, out)
        elif args.command == "serve":
            return _run_serve(args, out)
        elif args.command == "demo":
            out.write("Figure 1 query over the built-in Figure 1 graph:\n")
            out.write("  {}\n\n".format(FIGURE1_QUERY))
            _run_query(figure1_graph(), FIGURE1_QUERY, "automaton", 6, None,
                       False, out)
        return 0
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except (PathAlgebraError, OSError) as error:
        try:
            out.write("error: {}\n".format(error))
        except BrokenPipeError:
            pass
        return 1


if __name__ == "__main__":
    sys.exit(main())
