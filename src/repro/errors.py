"""Exception hierarchy for the path-algebra library.

Every error raised by this package derives from :class:`PathAlgebraError`, so
callers can catch a single base class at API boundaries.  Subclasses are
organized by subsystem: the graph store, the algebra core, the regular
expression layer, the automata layer, the PathQL language, and the engine.
"""

from __future__ import annotations

__all__ = [
    "PathAlgebraError",
    "GraphError",
    "VertexNotFoundError",
    "EdgeNotFoundError",
    "DuplicateVertexError",
    "LabelNotFoundError",
    "AlgebraError",
    "DisjointConcatenationError",
    "EmptyPathProjectionError",
    "IndexOutOfRangeError",
    "RegexError",
    "AutomatonError",
    "PathQLError",
    "PathQLSyntaxError",
    "PathQLCompileError",
    "EngineError",
    "PlanningError",
    "ExecutionError",
    "SerializationError",
    "StorageError",
    "StoreDegradedError",
    "ReplicationError",
    "ReplicationCursorGapError",
    "ReplicationCorruptionError",
    "ReplicaStaleError",
    "ReplicaReadOnlyError",
    "WorkerPoolError",
    "AlgorithmError",
    "ConvergenceError",
    "ConcurrencyError",
    "LockOrderViolation",
    "ResourceLeakError",
    "ServiceError",
    "DeadlineExceededError",
    "OverloadedError",
    "QuotaExceededError",
    "AuthenticationError",
    "UnknownGraphError",
    "ClientError",
    "RemoteQueryError",
    "RetryBudgetExceededError",
]


class PathAlgebraError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class GraphError(PathAlgebraError):
    """Base class for errors raised by the multi-relational graph store."""


class VertexNotFoundError(GraphError, KeyError):
    """A referenced vertex does not exist in the graph."""

    def __init__(self, vertex):
        super().__init__(vertex)
        self.vertex = vertex

    def __str__(self):
        return "vertex {!r} is not in the graph".format(self.vertex)


class EdgeNotFoundError(GraphError, KeyError):
    """A referenced edge does not exist in the graph."""

    def __init__(self, edge):
        super().__init__(edge)
        self.edge = edge

    def __str__(self):
        return "edge {!r} is not in the graph".format(self.edge)


class DuplicateVertexError(GraphError, ValueError):
    """A vertex was added twice with ``strict=True``."""


class LabelNotFoundError(GraphError, KeyError):
    """A referenced edge label (relation type) does not exist in the graph."""

    def __init__(self, label):
        super().__init__(label)
        self.label = label

    def __str__(self):
        return "label {!r} is not in the graph".format(self.label)


class AlgebraError(PathAlgebraError):
    """Base class for errors raised by the path-algebra core."""


class DisjointConcatenationError(AlgebraError, ValueError):
    """A strict joint concatenation was attempted on non-adjacent paths.

    Raised by :meth:`Path.joint_concat` when ``gamma_plus(a) != gamma_minus(b)``.
    The plain concatenation operator never raises this: the paper's ``x_o``
    (concatenative product) explicitly allows disjoint paths.
    """


class EmptyPathProjectionError(AlgebraError, ValueError):
    """A projection (tail/head/label) was requested from the empty path.

    The paper's gamma-/gamma+/omega are defined on ``E*`` but the empty path
    epsilon has no first or last vertex, so projecting from it is an error.
    """


class IndexOutOfRangeError(AlgebraError, IndexError):
    """``sigma(a, n)`` was called with ``n`` outside ``1..len(a)``."""


class RegexError(PathAlgebraError):
    """Base class for errors in the regular path-expression layer."""


class AutomatonError(PathAlgebraError):
    """Base class for errors in the automata layer."""


class PathQLError(PathAlgebraError):
    """Base class for errors in the PathQL language front end."""


class PathQLSyntaxError(PathQLError, SyntaxError):
    """The PathQL source text could not be tokenized or parsed."""

    def __init__(self, message, position=None, text=None):
        super().__init__(message)
        self.message = message
        self.position = position
        self.text = text

    def __str__(self):
        if self.position is None:
            return self.message
        location = "at offset {}".format(self.position)
        if self.text is not None:
            snippet = self.text[max(0, self.position - 10):self.position + 10]
            location += " near {!r}".format(snippet)
        return "{} ({})".format(self.message, location)


class PathQLCompileError(PathQLError):
    """A parsed PathQL query could not be compiled against a graph."""


class EngineError(PathAlgebraError):
    """Base class for errors raised by the traversal engine."""


class PlanningError(EngineError):
    """The planner could not produce a plan for a query."""


class ExecutionError(EngineError):
    """Plan execution failed."""


class SerializationError(GraphError):
    """A graph could not be read from or written to an external format."""


class StorageError(GraphError):
    """The durable storage layer (WAL / snapshot store) hit invalid state.

    Raised for unreadable manifests, snapshot files with a bad magic or
    checksum, and values the JSON-framed log cannot represent faithfully.
    A *truncated* WAL tail is not an error — recovery silently keeps the
    durable prefix (that is the crash-consistency contract)."""


class StoreDegradedError(StorageError):
    """The store is serving reads only (WAL writes failed; HTTP 503).

    A write-ahead-log append or fsync failure means further mutations
    could not be made durable, so the store flips into an explicit
    **read-only degraded mode**: queries keep serving the live in-memory
    state exactly, mutations raise this error, and a successful
    :meth:`~repro.storage.persistent.PersistentGraph.checkpoint` — which
    folds the live state into a fresh snapshot generation with a fresh
    log — heals the store back to writable.  ``retry_after`` is backoff
    guidance for clients (the HTTP tier maps this to a retriable 503).
    """

    def __init__(self, directory, reason, retry_after=5.0):
        super().__init__(
            "graph store {} is in read-only degraded mode ({}); mutations "
            "are refused until a checkpoint heals it".format(
                directory, reason))
        self.directory = directory
        self.reason = reason
        self.retry_after = retry_after


class WorkerPoolError(ExecutionError):
    """A parallel worker died or wedged mid-task.

    Raised (and normally *handled*) inside
    :class:`~repro.engine.parallel.ParallelExecutor`: the executor
    respawns the pool and retries the lost tasks a bounded number of
    times, then falls back to serial execution — callers only ever see
    this error if even the serial fallback cannot run.
    """


class ServiceError(PathAlgebraError):
    """Base class for errors raised by the async query service tier."""


class DeadlineExceededError(ServiceError, TimeoutError):
    """A query's deadline expired (queued, running, or cancelled).

    ``deadline`` is the budget in seconds the caller set; ``phase`` says
    where it ran out (``"queued"``, ``"running"`` or ``"cancelled"``).
    The query's worker slot is reclaimed as soon as its kernel notices —
    the shared pool stays usable for follow-up queries.
    """

    def __init__(self, deadline, phase="running"):
        message = "query exceeded its {:.3f}s deadline ({})".format(
            deadline, phase) if deadline is not None else \
            "query was cancelled ({})".format(phase)
        super().__init__(message)
        self.deadline = deadline
        self.phase = phase


class OverloadedError(ServiceError):
    """The service shed this request; retry after a backoff (HTTP 429).

    Raised by admission control when the waiting queue is already at its
    depth bound — queuing deeper would only grow tail latency, so the
    request is rejected *before* consuming resources.  ``retry_after`` is
    the suggested backoff in seconds (surfaced as the ``Retry-After``
    header by the HTTP tier).
    """

    def __init__(self, message, retry_after=1.0):
        super().__init__(message)
        self.retry_after = retry_after


class QuotaExceededError(OverloadedError):
    """A tenant hit its own concurrency quota (still retriable)."""

    def __init__(self, tenant, quota, retry_after=1.0):
        super().__init__(
            "tenant {!r} is at its quota of {} concurrent queries".format(
                tenant, quota), retry_after=retry_after)
        self.tenant = tenant
        self.quota = quota


class AuthenticationError(ServiceError):
    """The request carried no valid API token (HTTP 401)."""


class UnknownGraphError(ServiceError, KeyError):
    """The registry has no graph store under the requested name."""

    def __init__(self, name):
        super().__init__(name)
        self.name = name

    def __str__(self):
        return "no graph store named {!r} in the registry".format(self.name)


class ClientError(ServiceError):
    """Base class for errors raised by the :mod:`repro.service.client` SDK."""


class RemoteQueryError(ClientError):
    """The server answered with a non-retriable (or non-retried) error.

    ``status`` is the HTTP status code, ``payload`` the decoded JSON error
    body (``{}`` when the body was not JSON).  Raised immediately for
    non-retriable statuses, and for *any* error status on non-idempotent
    operations (mutations are never retried — a retry could double-apply).
    """

    def __init__(self, status, payload, operation=""):
        message = "{} failed with HTTP {}: {}".format(
            operation or "request", status,
            (payload or {}).get("error", "unknown error"))
        super().__init__(message)
        self.status = status
        self.payload = payload or {}
        self.operation = operation


class RetryBudgetExceededError(ClientError):
    """Every retry attempt failed; ``attempts`` records the whole trail.

    ``attempts`` is a list of ``(status_or_exception_name, delay)`` pairs,
    one per attempt, with the backoff slept after each failed try —
    observability for tests and operators alike.  ``last_status`` is the
    final HTTP status (``None`` when the last failure was a transport
    error).
    """

    def __init__(self, operation, attempts, last_status, last_error):
        super().__init__(
            "{} still failing after {} attempt(s); last: {}".format(
                operation, len(attempts), last_error))
        self.operation = operation
        self.attempts = attempts
        self.last_status = last_status


class ConcurrencyError(PathAlgebraError):
    """Base class for errors raised by the concurrency witness layer."""


class LockOrderViolation(ConcurrencyError):
    """The armed lock-order witness saw a cyclic acquisition order.

    Raised *before* the offending acquire blocks, so the witness
    fail-stops on the first potential deadlock instead of exhibiting it.
    ``cycle`` is the lock-name path that closes the cycle (the witness
    orders locks by name, not instance — two instances of the same class
    share an order slot, which is exactly the discipline a class-level
    lock hierarchy promises).
    """

    def __init__(self, cycle, holding=()):
        self.cycle = tuple(cycle)
        self.holding = tuple(holding)
        message = "lock-order cycle: {}".format(" -> ".join(self.cycle))
        if holding:
            message += " (thread holds: {})".format(", ".join(self.holding))
        super().__init__(message)


class ResourceLeakError(ConcurrencyError):
    """The armed leak registry closed out with live tracked resources.

    ``leaks`` is a list of ``(kind, detail)`` pairs — one per resource
    (WAL handle, store, worker pool, executor) that was opened while
    tracking was armed and never released.
    """

    def __init__(self, leaks):
        self.leaks = list(leaks)
        super().__init__(
            "{} resource(s) never released: {}".format(
                len(self.leaks),
                "; ".join("{}[{}]".format(kind, detail)
                          for kind, detail in self.leaks)))


class AlgorithmError(PathAlgebraError):
    """Base class for errors in the single-relational algorithm library."""


class ConvergenceError(AlgorithmError, RuntimeError):
    """An iterative algorithm failed to converge within its iteration cap."""

    def __init__(self, algorithm, iterations, tolerance):
        message = "{} did not converge in {} iterations (tol={})".format(
            algorithm, iterations, tolerance)
        super().__init__(message)
        self.algorithm = algorithm
        self.iterations = iterations
        self.tolerance = tolerance


class ReplicationError(StorageError):
    """Base class for WAL-shipping replication failures.

    The replication contract is fail-stop: a replica either serves a
    view bit-identical to the primary at its applied cursor, or raises
    a member of this family — never a silently corrupt or divergent
    answer.  Subclasses distinguish the recovery action (retry the
    fetch, re-bootstrap from a fresh snapshot, or page an operator).
    """


class ReplicationCursorGapError(ReplicationError):
    """The requested cursor points before the primary's retained log.

    Sealed segments the replica never fetched have been archived (or the
    primary reset its segment log after healing from degraded mode), so
    the suffix from ``cursor`` can no longer be served.  The only safe
    recovery is a full re-bootstrap from the current snapshot — tailing
    on would skip records.  The HTTP tier maps this to ``410 Gone``.
    """

    def __init__(self, cursor, retained):
        super().__init__(
            "replication cursor {} precedes the retained WAL (first "
            "retained segment {}); re-bootstrap from a fresh "
            "snapshot".format(cursor, retained))
        self.cursor = cursor
        self.retained = retained


class ReplicationCorruptionError(ReplicationError):
    """A shipped or local replication artifact failed its CRC.

    Raised for torn segment ships (a frame cut mid-payload), checksum
    mismatches in fetched snapshot bytes, and corrupt records found by
    the offline scrub.  ``detail`` names the artifact and offset so the
    first bad record is reportable (``repro db verify``)."""

    def __init__(self, detail):
        super().__init__("replication artifact failed verification: "
                         "{}".format(detail))
        self.detail = detail


class ReplicaStaleError(ReplicationError):
    """The replica's lag exceeds the caller's ``max-staleness`` bound.

    Bounded-staleness reads are a per-request contract: callers state
    the lag they tolerate and the replica refuses (HTTP 503 with
    ``Retry-After``) rather than silently serving an older view.
    ``lag_records``/``lag_seconds`` report the lag that broke the bound.
    """

    def __init__(self, lag_records, lag_seconds, bound_ms,
                 retry_after=1.0):
        super().__init__(
            "replica lag ({} records, {:.3f}s) exceeds max-staleness "
            "{}ms".format(lag_records, lag_seconds, bound_ms))
        self.lag_records = lag_records
        self.lag_seconds = lag_seconds
        self.bound_ms = bound_ms
        self.retry_after = retry_after


class ReplicaReadOnlyError(ReplicationError):
    """A mutation was sent to a replica (HTTP 403).

    Replicas apply records shipped from the primary only; accepting a
    local write would fork history.  ``repro db promote`` is the one
    sanctioned way to make a replica store writable."""

    def __init__(self, directory):
        super().__init__(
            "store {} is a read-only replica; promote it with 'repro db "
            "promote' before writing".format(directory))
        self.directory = directory
