"""The semiring-weighted path algebra (the classical "path algebra" lift).

* :class:`Semiring` plus the built-ins: :data:`BOOLEAN` (reachability),
  :data:`COUNTING` (witness paths), :data:`TROPICAL` (shortest cost),
  :data:`BOTTLENECK` (widest path), :data:`VITERBI` (most probable),
* :class:`WeightedRelation` — sparse weighted binary relations with the
  lifted union / composition / star,
* :func:`relation_of_label` / :func:`label_sequence_weights` — the weighted
  generalization of section IV-C's projections.
"""

from repro.semiring.semirings import (
    BOOLEAN,
    BOTTLENECK,
    COUNTING,
    TROPICAL,
    VITERBI,
    Semiring,
)
from repro.semiring.regexweights import WeightedAnswer, weighted_query
from repro.semiring.weighted import (
    WeightedRelation,
    label_sequence_weights,
    relation_of_label,
)

__all__ = [
    "Semiring", "BOOLEAN", "COUNTING", "TROPICAL", "BOTTLENECK", "VITERBI",
    "WeightedRelation", "relation_of_label", "label_sequence_weights",
    "weighted_query", "WeightedAnswer",
]
