"""Semirings: the weight structures of the algebraic path problem.

The paper's algebra is Boolean at heart — a path either exists in a set or
does not.  The classical "path algebra" literature (Carré, Tarjan's
algebraic path problem) generalizes exactly this structure to arbitrary
semirings: union becomes semiring addition, concatenation becomes semiring
multiplication.  This package is that generalization over the paper's
*labeled* relations, so one framework answers reachability (Boolean),
path counting (Counting — which is precisely the witness-count weights of
:class:`repro.core.projection.BinaryProjection`), shortest cost (Tropical),
widest bottleneck (Bottleneck) and most-probable path (Viterbi).

A semiring here is ``(carrier, +, *, 0, 1)`` with ``+`` commutative,
associative, identity 0; ``*`` associative, identity 1, annihilated by 0,
distributing over ``+``.  :meth:`Semiring.check_laws` spot-checks these on
sample values (used by the property tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

__all__ = [
    "Semiring",
    "BOOLEAN",
    "COUNTING",
    "TROPICAL",
    "BOTTLENECK",
    "VITERBI",
]

_INF = float("inf")


@dataclass(frozen=True)
class Semiring:
    """A semiring ``(carrier, add, mul, zero, one)`` as first-class data."""

    name: str
    zero: Any
    one: Any
    add: Callable[[Any, Any], Any] = field(compare=False)
    mul: Callable[[Any, Any], Any] = field(compare=False)
    #: True when ``a + a == a`` for all a — lets fixpoints detect convergence.
    idempotent_add: bool = True

    def sum(self, values) -> Any:
        """Fold ``add`` over an iterable (zero for empty input)."""
        total = self.zero
        for value in values:
            total = self.add(total, value)
        return total

    def product(self, values) -> Any:
        """Fold ``mul`` over an iterable (one for empty input)."""
        total = self.one
        for value in values:
            total = self.mul(total, value)
        return total

    def check_laws(self, samples: Sequence[Any]) -> None:
        """Assert the semiring axioms on every triple of sample values.

        Raises AssertionError on the first violated law — used by tests to
        certify each built-in (and any user-supplied) semiring.
        """
        for a in samples:
            assert self.add(a, self.zero) == a, "0 must be additive identity"
            assert self.add(self.zero, a) == a, "0 must be additive identity"
            assert self.mul(a, self.one) == a, "1 must be multiplicative identity"
            assert self.mul(self.one, a) == a, "1 must be multiplicative identity"
            assert self.mul(a, self.zero) == self.zero, "0 must annihilate"
            assert self.mul(self.zero, a) == self.zero, "0 must annihilate"
            if self.idempotent_add:
                assert self.add(a, a) == a, "declared idempotent but a+a != a"
        for a in samples:
            for b in samples:
                assert self.add(a, b) == self.add(b, a), "+ must commute"
                for c in samples:
                    assert self.add(self.add(a, b), c) == self.add(a, self.add(b, c))
                    assert self.mul(self.mul(a, b), c) == self.mul(a, self.mul(b, c))
                    assert self.mul(a, self.add(b, c)) == \
                        self.add(self.mul(a, b), self.mul(a, c)), "left distributivity"
                    assert self.mul(self.add(a, b), c) == \
                        self.add(self.mul(a, c), self.mul(b, c)), "right distributivity"

    def __repr__(self) -> str:
        return "Semiring({})".format(self.name)


#: Reachability: ({False, True}, or, and) — the paper's implicit semiring.
BOOLEAN = Semiring(
    name="boolean", zero=False, one=True,
    add=lambda a, b: a or b, mul=lambda a, b: a and b,
    idempotent_add=True)

#: Path counting: (N, +, *) — matches BinaryProjection witness weights.
COUNTING = Semiring(
    name="counting", zero=0, one=1,
    add=lambda a, b: a + b, mul=lambda a, b: a * b,
    idempotent_add=False)

#: Shortest cost: (R U {inf}, min, +).
TROPICAL = Semiring(
    name="tropical", zero=_INF, one=0.0,
    add=min, mul=lambda a, b: a + b,
    idempotent_add=True)

#: Widest path: (R U {-inf? use 0..}, max, min) over non-negative capacities.
BOTTLENECK = Semiring(
    name="bottleneck", zero=0.0, one=_INF,
    add=max, mul=min,
    idempotent_add=True)

#: Most probable path: ([0, 1], max, *).
VITERBI = Semiring(
    name="viterbi", zero=0.0, one=1.0,
    add=max, mul=lambda a, b: a * b,
    idempotent_add=True)
