"""Weighted relations: the semiring lift of the paper's binary projections.

A :class:`WeightedRelation` is a sparse map ``(tail, head) -> weight`` over
one semiring.  The paper's operations lift pointwise:

* union ``A | B``          -> entrywise semiring addition,
* concatenative join ``A @ B`` -> relation composition
  ``C[u, w] = SUM_v A[u, v] * B[v, w]`` (the equijoin with weights),
* bounded star           -> iterated ``1 + A + A@A + ...`` to a fixpoint
  or step bound.

Instantiations recover familiar algorithms: Boolean star is transitive
closure; Counting composition counts witness paths (exactly the
``weights`` of :func:`repro.core.projection.project_paths`); Tropical
composition/star is shortest label-constrained distance; Bottleneck is
widest path.  The tests cross-check each against its classical algorithm.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, Hashable, Iterable, Mapping, Optional, Tuple

from repro.core.edge import Edge
from repro.graph.graph import MultiRelationalGraph
from repro.semiring.semirings import BOOLEAN, COUNTING, Semiring

__all__ = ["WeightedRelation", "relation_of_label", "label_sequence_weights"]

Pair = Tuple[Hashable, Hashable]


class WeightedRelation:
    """An immutable sparse weighted binary relation over one semiring.

    Entries with the semiring zero are normalized away, so two relations
    are equal iff their non-zero supports and weights agree.
    """

    __slots__ = ("semiring", "_entries")

    def __init__(self, semiring: Semiring,
                 entries: Optional[Mapping[Pair, Any]] = None):
        self.semiring = semiring
        cleaned = {}
        for pair, weight in (entries or {}).items():
            if weight != semiring.zero:
                cleaned[(pair[0], pair[1])] = weight
        self._entries: Dict[Pair, Any] = cleaned

    # ------------------------------------------------------------------

    @classmethod
    def identity(cls, semiring: Semiring,
                 vertices: Iterable[Hashable]) -> "WeightedRelation":
        """The diagonal relation: ``I[v, v] = 1`` — the join identity."""
        return cls(semiring, {(v, v): semiring.one for v in vertices})

    def weight(self, tail: Hashable, head: Hashable) -> Any:
        """The weight of a pair (the semiring zero when absent)."""
        return self._entries.get((tail, head), self.semiring.zero)

    def support(self) -> frozenset:
        """The set of pairs with non-zero weight."""
        return frozenset(self._entries)

    def entries(self) -> Dict[Pair, Any]:
        """A copy of the sparse entry map."""
        return dict(self._entries)

    def vertices(self) -> frozenset:
        """All vertices appearing in the support."""
        out = set()
        for tail, head in self._entries:
            out.add(tail)
            out.add(head)
        return frozenset(out)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, pair) -> bool:
        return tuple(pair) in self._entries

    def __eq__(self, other) -> bool:
        if not isinstance(other, WeightedRelation):
            return NotImplemented
        return (self.semiring.name == other.semiring.name
                and self._entries == other._entries)

    def __hash__(self) -> int:
        return hash((self.semiring.name, frozenset(self._entries.items())))

    # ------------------------------------------------------------------
    # The lifted operations
    # ------------------------------------------------------------------

    def union(self, other: "WeightedRelation") -> "WeightedRelation":
        """Entrywise semiring addition."""
        self._require_same_semiring(other)
        merged = dict(self._entries)
        for pair, weight in other._entries.items():
            if pair in merged:
                merged[pair] = self.semiring.add(merged[pair], weight)
            else:
                merged[pair] = weight
        return WeightedRelation(self.semiring, merged)

    def __or__(self, other: "WeightedRelation") -> "WeightedRelation":
        return self.union(other)

    def compose(self, other: "WeightedRelation") -> "WeightedRelation":
        """Weighted relation composition (the semiring join).

        ``C[u, w] = SUM over v of A[u, v] * B[v, w]`` — the concatenative
        join with multiplicities, computed sparsely by bucketing B's rows.
        """
        self._require_same_semiring(other)
        semiring = self.semiring
        rows: Dict[Hashable, list] = defaultdict(list)
        for (tail, head), weight in other._entries.items():
            rows[tail].append((head, weight))
        out: Dict[Pair, Any] = {}
        for (tail, middle), left_weight in self._entries.items():
            for head, right_weight in rows.get(middle, ()):
                pair = (tail, head)
                contribution = semiring.mul(left_weight, right_weight)
                if pair in out:
                    out[pair] = semiring.add(out[pair], contribution)
                else:
                    out[pair] = contribution
        return WeightedRelation(semiring, out)

    def __matmul__(self, other: "WeightedRelation") -> "WeightedRelation":
        return self.compose(other)

    def power(self, n: int) -> "WeightedRelation":
        """n-fold composition (``n = 0`` gives the identity on the support)."""
        if n < 0:
            raise ValueError("power requires n >= 0")
        result = WeightedRelation.identity(self.semiring, self.vertices())
        for _ in range(n):
            result = result.compose(self)
        return result

    def star(self, max_steps: int = 64) -> "WeightedRelation":
        """``I + A + A@A + ...``, iterated to a fixpoint or ``max_steps``.

        For idempotent semirings over finite supports this converges (the
        algebraic path problem's closure); non-idempotent semirings (e.g.
        Counting) on cyclic supports diverge, so the step bound is a hard
        stop and the caller owns the interpretation ("paths of at most k
        steps").
        """
        identity = WeightedRelation.identity(self.semiring, self.vertices())
        total = identity
        term = identity
        for _ in range(max_steps):
            term = term.compose(self)
            if not term._entries:
                break
            grown = total.union(term)
            if self.semiring.idempotent_add and grown == total:
                break
            total = grown
        return total

    def transpose(self) -> "WeightedRelation":
        """Swap tails and heads."""
        return WeightedRelation(
            self.semiring,
            {(head, tail): weight for (tail, head), weight in self._entries.items()})

    def restrict(self, tails: Optional[Iterable[Hashable]] = None,
                 heads: Optional[Iterable[Hashable]] = None) -> "WeightedRelation":
        """Keep only entries with tail/head in the given sets (None = all)."""
        tail_set = None if tails is None else set(tails)
        head_set = None if heads is None else set(heads)
        kept = {
            pair: weight for pair, weight in self._entries.items()
            if (tail_set is None or pair[0] in tail_set)
            and (head_set is None or pair[1] in head_set)
        }
        return WeightedRelation(self.semiring, kept)

    def map_weights(self, function: Callable[[Any], Any]) -> "WeightedRelation":
        """Apply a function to every weight (result re-normalized)."""
        return WeightedRelation(
            self.semiring,
            {pair: function(w) for pair, w in self._entries.items()})

    def _require_same_semiring(self, other: "WeightedRelation") -> None:
        if self.semiring.name != other.semiring.name:
            raise ValueError(
                "semiring mismatch: {} vs {}".format(
                    self.semiring.name, other.semiring.name))

    def __repr__(self) -> str:
        return "WeightedRelation<{}: {} pairs>".format(
            self.semiring.name, len(self._entries))


def relation_of_label(graph: MultiRelationalGraph, label: Hashable,
                      semiring: Semiring = BOOLEAN,
                      weight: Optional[Callable[[Edge, MultiRelationalGraph], Any]] = None
                      ) -> WeightedRelation:
    """Lift one relation ``E_label`` into a weighted relation.

    ``weight`` maps each edge to its semiring weight (default: the semiring
    one — pure structure).  Parallel edges of the same label cannot occur
    (E is a set), so no entry aggregation is needed here.
    """
    entries: Dict[Pair, Any] = {}
    semiring_one = semiring.one
    for e in graph.match(label=label):
        value = semiring_one if weight is None else weight(e, graph)
        pair = e.endpoints()
        if pair in entries:
            entries[pair] = semiring.add(entries[pair], value)
        else:
            entries[pair] = value
    return WeightedRelation(semiring, entries)


def label_sequence_weights(graph: MultiRelationalGraph,
                           labels: Iterable[Hashable],
                           semiring: Semiring = COUNTING,
                           weight: Optional[Callable[[Edge, MultiRelationalGraph], Any]] = None
                           ) -> WeightedRelation:
    """The weighted generalization of section IV-C's ``E_ab...`` projection.

    Composes the per-label weighted relations left to right.  With the
    Counting semiring and default weights this reproduces exactly the
    witness counts of :func:`repro.core.projection.project_label_sequence`
    (a property the tests assert); with Tropical and a cost weight it is
    the cheapest label-constrained route.
    """
    label_list = list(labels)
    if not label_list:
        raise ValueError("need at least one label")
    result = relation_of_label(graph, label_list[0], semiring, weight)
    for label in label_list[1:]:
        result = result.compose(relation_of_label(graph, label, semiring, weight))
    return result
