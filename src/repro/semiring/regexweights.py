"""Semiring evaluation of full regular path expressions.

:func:`label_sequence_weights` handles straight-line label sequences; this
module generalizes to the whole regex AST, following the weighted-automata
tradition: an expression denotes, per ``(tail, head)`` pair, the semiring
sum over **derivations** (ways the expression matches a path) of the
product of edge weights along the derived path:

    W(expr)[u, w] = SUM_{derivations d of expr yielding u ->...-> w} PROD_e weight(e)

For *unambiguous* expressions — each matching path has exactly one
derivation, e.g. fixed label sequences, disjoint unions, stars of
single-step atoms — this equals the sum over distinct matching paths, and
with the Counting semiring it is exactly the witness-path count of the set
semantics (asserted by tests against :func:`repro.regex.evaluate`).  For
ambiguous expressions derivations are counted, not paths — the standard
semantics of weighted regular expressions (a test demonstrates the
difference deliberately).

Composition rules (``eps`` is the scalar weight of deriving the empty path;
``rel`` the weighted relation over non-empty derivations):

* union    — ``(relA | relB,  epsA + epsB)``
* join     — ``(relA∘relB + epsA·relB + epsB·relA,  epsA · epsB)``
* product  — like join but with the *outer* composition
  ``C[u, w] = (SUM_v relA[u, v]) * (SUM_v relB[v, w])`` for the non-empty
  part (disjoint concatenation forgets the middle vertices),
* star     — ``(closure of rel (epsilon part dropped first),  1)``,
  iterated to a fixpoint for idempotent semirings and bounded by
  ``star_steps`` otherwise ("at most k repetitions").

With Tropical weights this answers "cheapest path matching the query" —
the regex generalization of label-constrained shortest paths.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, NamedTuple, Optional, Tuple

from repro.core.edge import Edge
from repro.errors import RegexError
from repro.graph.graph import MultiRelationalGraph
from repro.regex.ast import (
    Atom,
    Empty,
    Epsilon,
    Join,
    Literal,
    Product,
    RegexExpr,
    Repeat,
    Star,
    Union,
)
from repro.semiring.semirings import COUNTING, Semiring
from repro.semiring.weighted import WeightedRelation

__all__ = ["weighted_query", "WeightedAnswer"]

WeightFunction = Callable[[Edge, MultiRelationalGraph], Any]


class WeightedAnswer(NamedTuple):
    """A weighted query's result: the endpoint relation plus the ε weight.

    ``epsilon`` is the semiring weight of the expression deriving the empty
    path (zero when the expression is not nullable); the empty path has no
    endpoints, so it cannot live inside ``relation``.
    """

    relation: WeightedRelation
    epsilon: Any

    def weight(self, tail: Hashable, head: Hashable) -> Any:
        """Convenience passthrough to the relation's pair weight."""
        return self.relation.weight(tail, head)


def weighted_query(graph: MultiRelationalGraph, expression: RegexExpr,
                   semiring: Semiring = COUNTING,
                   weight: Optional[WeightFunction] = None,
                   star_steps: int = 16) -> WeightedAnswer:
    """Evaluate a regex to a weighted endpoint relation over ``semiring``.

    See the module docstring for the exact (derivation-sum) semantics.
    """
    evaluator = _Evaluator(graph, semiring, weight, star_steps)
    relation, epsilon = evaluator.evaluate(expression)
    return WeightedAnswer(relation, epsilon)


class _Evaluator:
    """Structural recursion over (non-empty relation, epsilon scalar) pairs."""

    def __init__(self, graph: MultiRelationalGraph, semiring: Semiring,
                 weight: Optional[WeightFunction], star_steps: int):
        self.graph = graph
        self.semiring = semiring
        self.weight = weight
        self.star_steps = star_steps

    def edge_value(self, e: Edge) -> Any:
        if self.weight is None:
            return self.semiring.one
        return self.weight(e, self.graph)

    def _scale(self, relation: WeightedRelation, scalar: Any) -> WeightedRelation:
        semiring = self.semiring
        if scalar == semiring.zero:
            return WeightedRelation(semiring)
        if scalar == semiring.one:
            return relation
        return relation.map_weights(lambda value: semiring.mul(scalar, value))

    def evaluate(self, expr: RegexExpr) -> Tuple[WeightedRelation, Any]:
        semiring = self.semiring
        if isinstance(expr, Empty):
            return WeightedRelation(semiring), semiring.zero
        if isinstance(expr, Epsilon):
            return WeightedRelation(semiring), semiring.one
        if isinstance(expr, Atom):
            entries: Dict[Tuple[Hashable, Hashable], Any] = {}
            for e in self.graph.match(tail=expr.tail, label=expr.label,
                                      head=expr.head):
                pair = e.endpoints()
                value = self.edge_value(e)
                if pair in entries:
                    entries[pair] = semiring.add(entries[pair], value)
                else:
                    entries[pair] = value
            return WeightedRelation(semiring, entries), semiring.zero
        if isinstance(expr, Literal):
            entries = {}
            epsilon = semiring.zero
            for p in expr.path_set:
                if not p:
                    epsilon = semiring.add(epsilon, semiring.one)
                    continue
                pair = (p.tail, p.head)
                value = semiring.product(self.edge_value(e) for e in p)
                if pair in entries:
                    entries[pair] = semiring.add(entries[pair], value)
                else:
                    entries[pair] = value
            return WeightedRelation(semiring, entries), epsilon
        if isinstance(expr, Union):
            relation = WeightedRelation(semiring)
            epsilon = semiring.zero
            for part in expr.parts:
                part_rel, part_eps = self.evaluate(part)
                relation = relation | part_rel
                epsilon = semiring.add(epsilon, part_eps)
            return relation, epsilon
        if isinstance(expr, Join):
            return self._sequence(expr.parts, outer=False)
        if isinstance(expr, Product):
            return self._sequence(expr.parts, outer=True)
        if isinstance(expr, Star):
            inner_rel, _inner_eps = self.evaluate(expr.inner)
            # The star's empty derivation is reported via epsilon (one);
            # the non-empty part is the PLUS closure A + A@A + ... — using
            # the identity-seeded star() would double-count epsilon as a
            # diagonal (v, v) entry.
            return self._plus_closure(inner_rel), semiring.one
        if isinstance(expr, Repeat):
            return self.evaluate(expr.expand())
        raise RegexError("cannot weight unknown node {!r}".format(expr))

    def _sequence(self, parts, outer: bool) -> Tuple[WeightedRelation, Any]:
        relation, epsilon = self.evaluate(parts[0])
        for part in parts[1:]:
            right_rel, right_eps = self.evaluate(part)
            if outer:
                combined = self._outer(relation, right_rel)
            else:
                combined = relation.compose(right_rel)
            # epsilon on either side passes the other side through, scaled.
            combined = combined | self._scale(right_rel, epsilon)
            combined = combined | self._scale(relation, right_eps)
            relation = combined
            epsilon = self.semiring.mul(epsilon, right_eps)
        return relation, epsilon

    def _plus_closure(self, relation: WeightedRelation) -> WeightedRelation:
        """``A + A@A + ...`` to a fixpoint (idempotent) or ``star_steps`` terms."""
        total = relation
        term = relation
        for _ in range(self.star_steps - 1):
            term = term.compose(relation)
            if not len(term):
                break
            grown = total | term
            if self.semiring.idempotent_add and grown == total:
                break
            total = grown
        return total

    def _outer(self, left: WeightedRelation,
               right: WeightedRelation) -> WeightedRelation:
        """Disjoint concatenation of the non-empty parts.

        ``C[u, w] = (SUM_v L[u, v]) * (SUM_v R[v, w])`` — any left path may
        precede any right path; middles are forgotten.
        """
        semiring = self.semiring
        row: Dict[Hashable, Any] = {}
        for (tail, _head), value in left.entries().items():
            row[tail] = semiring.add(row.get(tail, semiring.zero), value)
        col: Dict[Hashable, Any] = {}
        for (_tail, head), value in right.entries().items():
            col[head] = semiring.add(col.get(head, semiring.zero), value)
        entries = {
            (tail, head): semiring.mul(row_value, col_value)
            for tail, row_value in row.items()
            for head, col_value in col.items()
        }
        return WeightedRelation(semiring, entries)
