"""The runtime lock-order witness and resource-leak registry.

The static half of the concurrency story lives in
:mod:`repro.analysis.concurrency` (reprorace): it proves lock discipline
on the AST.  This module is the dynamic half — the part only a real
schedule can exercise:

* :class:`OrderedLock` — the wrapper every lock-holding subsystem
  (:mod:`repro.storage`, :mod:`repro.service`, :mod:`repro.engine`,
  :mod:`repro.faults`) constructs through :func:`ordered_lock` /
  :func:`ordered_rlock`.  Disarmed — the production default — an
  acquisition is one module-global load plus an ``is None`` test on top
  of the raw :class:`threading.Lock`, the same bargain the fault hooks
  struck in :mod:`repro.faults` (and bench-gated the same way: the E13
  ``bench_locks`` scenario prices the disarmed crossing at <= 2% of a
  hot WAL-append + cached-query loop).
* :class:`LockWitness` — armed (``REPRO_LOCK_WITNESS=1`` or
  :func:`arm_witness`), every acquisition records per-thread *order
  edges* ``held-lock-name -> acquired-lock-name`` into one global graph
  and **fail-stops on the first cycle**: the
  :class:`~repro.errors.LockOrderViolation` is raised *before* the
  offending acquire blocks, so a potential deadlock surfaces as a typed
  error with the cycle spelled out instead of a wedged process.  Edges
  are keyed by lock *name*, not instance — two WAL handles share the
  slot ``storage.wal``, which is exactly what a class-level lock
  hierarchy promises.  Re-entrant re-acquisition of the *same*
  :func:`ordered_rlock` object records nothing (that is what reentrancy
  is for); nesting two *different* same-named locks is a violation.
* :class:`LeakRegistry` — armed (``REPRO_LEAK_TRACKING=1`` or
  :func:`arm_tracking`), lifecycle-owning constructors call
  :func:`track_resource` and their ``close`` paths
  :func:`release_resource`; the service and chaos suites assert the
  registry empty at teardown, turning "we probably closed everything"
  into a checked invariant.

The chaos suite (``tests/test_chaos.py``) runs its whole 240-step fault
schedule with both armed: every injected fault also proves the lock
order stayed acyclic and every handle was released.
"""

from __future__ import annotations

import itertools
import os
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import LockOrderViolation, ResourceLeakError

__all__ = [
    "WITNESS_ENV",
    "TRACKING_ENV",
    "OrderedLock",
    "ordered_lock",
    "ordered_rlock",
    "LockWitness",
    "arm_witness",
    "disarm_witness",
    "installed_witness",
    "witness_scope",
    "LeakRegistry",
    "arm_tracking",
    "disarm_tracking",
    "installed_tracker",
    "tracking_scope",
    "track_resource",
    "release_resource",
]

#: Environment variables arming the witness / the leak registry at import
#: (the subprocess story, mirroring ``REPRO_FAULTS``); in-process tests
#: use :func:`witness_scope` / :func:`tracking_scope` instead.
WITNESS_ENV = "REPRO_LOCK_WITNESS"
TRACKING_ENV = "REPRO_LEAK_TRACKING"


class LockWitness:
    """A global lock-order graph fed by armed :class:`OrderedLock`\\ s.

    Per-thread held stacks live in a :class:`threading.local`; the graph
    itself is guarded by one *raw* :class:`threading.Lock` (the witness
    cannot witness itself).  ``acquisitions`` counts armed crossings —
    the chaos suite asserts the witness actually saw traffic, so an
    accidentally disarmed run cannot pass vacuously.
    """

    def __init__(self) -> None:
        #: lock name -> names acquired while it was held.
        self._edges: Dict[str, Set[str]] = {}
        self._graph_lock = threading.Lock()
        self._held = threading.local()
        self.acquisitions = 0
        self.edges_recorded = 0

    # -- per-thread state ----------------------------------------------

    def _stack(self) -> List["OrderedLock"]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    # -- acquisition protocol ------------------------------------------

    def before_acquire(self, lock: "OrderedLock") -> None:
        """Record order edges and fail-stop on a cycle — *before* blocking."""
        stack = self._stack()
        if lock.reentrant and any(entry is lock for entry in stack):
            return  # re-entrant re-acquire of the same object: no edge
        if not stack:
            with self._graph_lock:
                self.acquisitions += 1
            return
        held_names = list(dict.fromkeys(entry.name for entry in stack))
        with self._graph_lock:
            self.acquisitions += 1
            for held in held_names:
                if held == lock.name:
                    # A second, *different* object under the same name:
                    # the class-level hierarchy gives these no order.
                    raise LockOrderViolation((held, lock.name),
                                            holding=held_names)
                targets = self._edges.setdefault(held, set())
                if lock.name in targets:
                    continue
                path = self._path(lock.name, held)
                if path is not None:
                    raise LockOrderViolation([held] + path,
                                            holding=held_names)
                targets.add(lock.name)
                self.edges_recorded += 1

    def note_acquired(self, lock: "OrderedLock") -> None:
        self._stack().append(lock)

    def after_release(self, lock: "OrderedLock") -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is lock:
                del stack[index]
                return

    def _path(self, source: str, target: str) -> Optional[List[str]]:
        """A lock-name path ``source -> ... -> target``, or None.

        Caller holds ``_graph_lock``.  Used to detect (and spell out)
        the cycle a candidate edge ``target -> source`` would close.
        """
        if source == target:
            return [source]
        parents: Dict[str, str] = {source: source}
        frontier = [source]
        while frontier:
            node = frontier.pop()
            for successor in self._edges.get(node, ()):
                if successor in parents:
                    continue
                parents[successor] = node
                if successor == target:
                    path = [successor]
                    while path[-1] != source:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                frontier.append(successor)
        return None

    # -- introspection -------------------------------------------------

    def edges(self) -> Dict[str, Tuple[str, ...]]:
        """A snapshot of the order graph: ``{held: (acquired, ...)}``."""
        with self._graph_lock:
            return {name: tuple(sorted(targets))
                    for name, targets in self._edges.items() if targets}

    def held_names(self) -> Tuple[str, ...]:
        """Names the *current thread* holds, innermost last."""
        return tuple(entry.name for entry in self._stack())

    def assert_acyclic(self) -> None:
        """Full-graph check; a belt for the fail-stop suspenders.

        Every edge was cycle-checked at insertion, so this can only fire
        if the graph was mutated behind the witness's back — but the
        chaos suite calls it anyway: a vacuous invariant is no invariant.
        """
        edges = self.edges()
        state: Dict[str, int] = {}

        def visit(node: str, path: List[str]) -> None:
            state[node] = 1
            path.append(node)
            for successor in edges.get(node, ()):
                if state.get(successor) == 1:
                    cycle = path[path.index(successor):] + [successor]
                    raise LockOrderViolation(cycle)
                if successor not in state:
                    visit(successor, path)
            path.pop()
            state[node] = 2

        for name in list(edges):
            if name not in state:
                visit(name, [])

    def __repr__(self) -> str:
        edges = self.edges()
        return "LockWitness<{} acquisition(s), {} edge(s)>".format(
            self.acquisitions, sum(len(v) for v in edges.values()))


class OrderedLock:
    """A named lock whose acquisitions feed the armed witness.

    Disarmed, :meth:`acquire`/:meth:`release` (and the ``with`` protocol)
    are the raw lock plus one module-global load and an ``is None`` test
    — the same zero-overhead bargain as the disarmed fault hooks, and
    bench-gated the same way (E13 ``bench_locks``).  ``reentrant=True``
    wraps an :class:`threading.RLock` and exempts same-object
    re-acquisition from order edges.
    """

    __slots__ = ("name", "reentrant", "_inner")

    def __init__(self, name: str, reentrant: bool = False) -> None:
        self.name = name
        self.reentrant = reentrant
        self._inner = threading.RLock() if reentrant else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        witness = _WITNESS
        if witness is not None:
            witness.before_acquire(self)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired and witness is not None:
            witness.note_acquired(self)
        return acquired

    def release(self) -> None:
        self._inner.release()
        witness = _WITNESS
        if witness is not None:
            witness.after_release(self)

    def __enter__(self) -> "OrderedLock":
        witness = _WITNESS
        if witness is None:
            self._inner.acquire()
            return self
        witness.before_acquire(self)
        self._inner.acquire()
        witness.note_acquired(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._inner.release()
        witness = _WITNESS
        if witness is not None:
            witness.after_release(self)

    def __repr__(self) -> str:
        return "OrderedLock<{}{}>".format(
            self.name, ", reentrant" if self.reentrant else "")


def ordered_lock(name: str) -> OrderedLock:
    """A witness-aware mutex (the :class:`threading.Lock` shape)."""
    return OrderedLock(name)


def ordered_rlock(name: str) -> OrderedLock:
    """A witness-aware re-entrant lock (the :class:`threading.RLock` shape)."""
    return OrderedLock(name, reentrant=True)


class LeakRegistry:
    """Live tracked resources; asserted empty at suite teardown."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._live: Dict[int, Tuple[str, str]] = {}
        self._tokens = itertools.count(1)
        self.tracked = 0
        self.released = 0

    def track(self, kind: str, detail: str) -> int:
        with self._lock:
            token = next(self._tokens)
            self._live[token] = (kind, detail)
            self.tracked += 1
            return token

    def untrack(self, token: int) -> None:
        with self._lock:
            if self._live.pop(token, None) is not None:
                self.released += 1

    def live(self) -> List[Tuple[str, str]]:
        with self._lock:
            return sorted(self._live.values())

    def assert_empty(self) -> None:
        leaks = self.live()
        if leaks:
            raise ResourceLeakError(leaks)

    def __repr__(self) -> str:
        return "LeakRegistry<{} live, {} tracked, {} released>".format(
            len(self._live), self.tracked, self.released)


#: The armed witness / tracker.  ``None`` in production: every hook below
#: reduces to one global load plus an ``is None`` test.
_WITNESS: Optional[LockWitness] = None
_TRACKER: Optional[LeakRegistry] = None


def arm_witness() -> LockWitness:
    """Install (and return) a fresh process-wide lock-order witness."""
    global _WITNESS
    _WITNESS = LockWitness()
    return _WITNESS


def disarm_witness() -> Optional[LockWitness]:
    """Disarm; returns the witness that was armed (for final asserts)."""
    global _WITNESS
    witness, _WITNESS = _WITNESS, None
    return witness


def installed_witness() -> Optional[LockWitness]:
    return _WITNESS


@contextmanager
def witness_scope() -> Iterator[LockWitness]:
    """Arm a fresh witness for a ``with`` block, restoring the previous.

    Locks acquired (but not yet released) *before* arming are invisible
    to the fresh witness — arm before building the objects under test.
    """
    global _WITNESS
    previous = _WITNESS
    _WITNESS = witness = LockWitness()
    try:
        yield witness
    finally:
        _WITNESS = previous


def arm_tracking() -> LeakRegistry:
    """Install (and return) a fresh process-wide leak registry."""
    global _TRACKER
    _TRACKER = LeakRegistry()
    return _TRACKER


def disarm_tracking() -> Optional[LeakRegistry]:
    global _TRACKER
    tracker, _TRACKER = _TRACKER, None
    return tracker


def installed_tracker() -> Optional[LeakRegistry]:
    return _TRACKER


@contextmanager
def tracking_scope() -> Iterator[LeakRegistry]:
    """Arm a fresh leak registry for a ``with`` block.

    Does **not** assert on exit — teardown code should close everything
    first and then call :meth:`LeakRegistry.assert_empty` explicitly, so
    the assertion error points at the leak, not at the scope exit.
    """
    global _TRACKER
    previous = _TRACKER
    _TRACKER = tracker = LeakRegistry()
    try:
        yield tracker
    finally:
        _TRACKER = previous


def track_resource(kind: str, detail: str = "") -> Optional[int]:
    """Register a lifecycle-owning resource with the armed registry.

    Returns the token ``release_resource`` takes, or ``None`` while
    disarmed — callers store it unconditionally and release it
    unconditionally; both directions are no-ops when tracking is off.
    """
    tracker = _TRACKER
    if tracker is None:
        return None
    return tracker.track(kind, detail)


def release_resource(token: Optional[int]) -> None:
    """Mark a tracked resource closed (no-op for ``None`` tokens)."""
    if token is None:
        return
    tracker = _TRACKER
    if tracker is not None:
        tracker.untrack(token)


# Subprocess arming, mirroring REPRO_FAULTS: a `repro serve` child (or a
# chaos CI step) arms by environment because no test code runs inside it.
if os.environ.get(WITNESS_ENV, "") not in ("", "0"):
    arm_witness()
if os.environ.get(TRACKING_ENV, "") not in ("", "0"):
    arm_tracking()
