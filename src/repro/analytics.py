"""Grammar-constrained analytics over the product automaton.

The paper's companion work (reference [5], Rodriguez & Shinavier) maps
single-relational algorithms onto multi-relational graphs by constraining
*which* paths an algorithm's random walker may take.  This module
implements the flagship instance: **grammar-constrained PageRank** — the
stationary distribution of a damped random walk on the product space
``(vertex, automaton state)``, where the automaton compiles a regular path
expression.  Projecting the stationary mass back onto vertices ranks them
by how often a *grammar-obeying* surfer visits.

With the trivial grammar ``[_,_,_]*`` the admissible moves are exactly the
collapsed graph's edges, so the ranking tracks ordinary PageRank (the
tests check rank agreement on such graphs).  With a real grammar — e.g.
only ``authored . cites`` moves — the ranking answers the multi-relational
question directly, which is the whole point of section IV-C.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

from repro.algorithms.digraph import DiGraph
from repro.algorithms.pagerank import pagerank
from repro.automata.nfa import build_nfa
from repro.errors import AlgorithmError
from repro.graph.graph import MultiRelationalGraph
from repro.regex.ast import RegexExpr

__all__ = ["grammar_pagerank", "product_graph"]


def product_graph(graph: MultiRelationalGraph,
                  expression: RegexExpr) -> DiGraph:
    """The reachable product of the graph with the expression's NFA.

    Product vertices are ``(vertex, nfa_state, exempt)`` configurations —
    the same configuration space the recognizer simulates.  A product edge
    exists for every admissible consuming move: from a non-exempt
    configuration only graph edges leaving the current vertex (the join
    adjacency); from an exempt configuration any edge the matcher admits
    (the ``x_o`` teleport).  Only the portion reachable from the start
    configurations is built.
    """
    nfa = build_nfa(expression)
    start_closure = nfa.closure({nfa.start: False})
    out = DiGraph()
    frontier = []
    seen = set()
    for vertex in graph.vertices():
        for state, exempt in start_closure.items():
            config = (vertex, state, exempt)
            seen.add(config)
            frontier.append(config)
            out.add_vertex(config)
    while frontier:
        config = frontier.pop()
        vertex, state, exempt = config
        for matcher, target in nfa.consuming[state]:
            if exempt:
                candidates = matcher.all_edges(graph)
            else:
                candidates = matcher.candidate_edges(graph, vertex)
            for e in candidates:
                for closed_state, closed_exempt in nfa.closure({target: False}).items():
                    successor = (e.head, closed_state, closed_exempt)
                    out.add_edge(config, successor)
                    if successor not in seen:
                        seen.add(successor)
                        frontier.append(successor)
    return out


def grammar_pagerank(graph: MultiRelationalGraph, expression: RegexExpr,
                     damping: float = 0.85,
                     max_iterations: int = 200,
                     tolerance: float = 1.0e-10) -> Dict[Hashable, float]:
    """PageRank of a surfer who may only take grammar-admissible steps.

    Runs standard damped PageRank on :func:`product_graph` (teleportation
    jumps to any configuration — the paper's footnote-5 disjoint jump,
    realized), then sums stationary mass per underlying vertex.

    Returns ``vertex -> mass`` normalized to sum to 1.

    Raises
    ------
    AlgorithmError
        If the graph is empty.
    """
    if graph.order() == 0:
        raise AlgorithmError("grammar_pagerank needs a non-empty graph")
    product = product_graph(graph, expression)
    ranks = pagerank(product, damping=damping,
                     max_iterations=max_iterations, tolerance=tolerance)
    out: Dict[Hashable, float] = {}
    for (vertex, _state, _exempt), mass in ranks.items():
        out[vertex] = out.get(vertex, 0.0) + mass
    total = sum(out.values()) or 1.0
    return {vertex: mass / total for vertex, mass in out.items()}
