"""repro — A Path Algebra for Multi-Relational Graphs.

A complete reproduction of Rodriguez & Neubauer, *"A Path Algebra for
Multi-Relational Graphs"* (ICDE 2011 / arXiv:1011.0390): the section II
path algebra, the section III traversal idioms, the section IV regular path
recognizer and generator, the section IV-C single-relational projections,
plus the multi-relational traversal engine the paper motivates (PathQL
language, cost-based planner, three execution strategies) and every
substrate they stand on (graph store, generators, serialization,
single-relational algorithm library).

Quickstart
----------
>>> from repro import MultiRelationalGraph
>>> g = MultiRelationalGraph([("a", "knows", "b"), ("b", "knows", "c")])
>>> knows = g.edges(label="knows")
>>> friend_of_friend = knows @ knows        # concatenative join
>>> sorted(str(p) for p in friend_of_friend)
['(a, knows, b, b, knows, c)']

See ``examples/`` for full scenarios and ``DESIGN.md`` for the system map.
"""

from repro.core import (
    EMPTY,
    EPSILON,
    EPSILON_SET,
    BinaryProjection,
    Edge,
    Path,
    PathSet,
    Step,
    Traversal,
    between_traversal,
    complete_traversal,
    destination_traversal,
    edge,
    extract_relation,
    gamma_minus,
    gamma_plus,
    ignore_labels,
    labeled_traversal,
    omega,
    omega_prime,
    project_label_sequence,
    project_paths,
    project_regular,
    sigma,
    source_traversal,
    traverse,
)
from repro.graph import MultiRelationalGraph
from repro.errors import PathAlgebraError

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "MultiRelationalGraph",
    "Edge", "edge", "Path", "EPSILON", "PathSet", "EMPTY", "EPSILON_SET",
    "sigma", "gamma_minus", "gamma_plus", "omega", "omega_prime",
    "Step", "traverse", "complete_traversal", "source_traversal",
    "destination_traversal", "between_traversal", "labeled_traversal",
    "Traversal",
    "BinaryProjection", "ignore_labels", "extract_relation",
    "project_paths", "project_label_sequence", "project_regular",
    "PathAlgebraError",
]
