"""Planner-facing statistics and cardinality estimation.

The cost-based planner needs two things: the **exact** cardinality of each
atom's edge set (cheap — the graph's indices already know), and an
**estimate** of join result sizes.  The join estimate is the classical
equijoin formula: ``|A ><_o B| ~= |A| * |B| / max(|V|, 1)`` — each left path's
head matches a ``1/|V|`` fraction of right tails under uniformity.  Skewed
graphs (hubs) violate uniformity, which is precisely what experiment E9
measures the planner against.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.graph.graph import MultiRelationalGraph
from repro.regex.ast import (
    Atom,
    Empty,
    Epsilon,
    Join,
    Literal,
    Product,
    RegexExpr,
    Repeat,
    Star,
    Union,
)

__all__ = ["GraphStatistics"]


class GraphStatistics:
    """Cardinality statistics for one graph, cached at construction.

    Build once per (graph version, planning session); the planner treats it
    as immutable.
    """

    def __init__(self, graph: MultiRelationalGraph):
        self.graph = graph
        self.vertex_count = graph.order()
        self.edge_count = graph.size()
        self.label_histogram: Dict[Hashable, int] = graph.label_histogram()

    # ------------------------------------------------------------------

    def atom_cardinality(self, atom: Atom) -> int:
        """Exact edge count matched by a set-builder pattern.

        Fully-wild and label-only patterns read cached counters; patterns
        with a bound vertex consult the graph's per-vertex indices.
        """
        if atom.tail is None and atom.head is None:
            if atom.label is None:
                return self.edge_count
            return self.label_histogram.get(atom.label, 0)
        return len(self.graph.match(tail=atom.tail, label=atom.label,
                                    head=atom.head))

    def join_selectivity(self) -> float:
        """Equijoin selectivity under the uniform join-vertex assumption."""
        return 1.0 / max(self.vertex_count, 1)

    def estimate(self, expression: RegexExpr, max_length: int = 8) -> float:
        """Estimated number of paths matched by ``expression`` (bounded).

        Recursive over the AST; stars assume the per-repetition growth
        factor implied by the inner estimate, truncated at ``max_length``
        repetitions or convergence, mirroring how the bounded evaluators
        truncate.
        """
        expr = expression
        if isinstance(expr, Empty):
            return 0.0
        if isinstance(expr, Epsilon):
            return 1.0
        if isinstance(expr, Atom):
            return float(self.atom_cardinality(expr))
        if isinstance(expr, Literal):
            return float(len(expr.path_set))
        if isinstance(expr, Union):
            return sum(self.estimate(part, max_length) for part in expr.parts)
        if isinstance(expr, Join):
            selectivity = self.join_selectivity()
            total = 1.0
            for part in expr.parts:
                total = total * self.estimate(part, max_length) * selectivity
            return total / selectivity  # n-ary join applies n-1 selectivities
        if isinstance(expr, Product):
            total = 1.0
            for part in expr.parts:
                total *= self.estimate(part, max_length)
            return total
        if isinstance(expr, Star):
            return self._estimate_star(expr.inner, max_length)
        if isinstance(expr, Repeat):
            return self.estimate(expr.expand(), max_length)
        return float(self.edge_count)

    def _estimate_star(self, inner: RegexExpr, max_length: int) -> float:
        """``1 + sum_{k>=1} base * growth^(k-1)`` truncated at ``max_length`` terms.

        ``base`` estimates one repetition; each further repetition joins the
        previous result with ``inner``, multiplying by ``base * selectivity``.
        """
        base = self.estimate(inner, max_length)
        growth = base * self.join_selectivity()
        total = 1.0  # the epsilon repetition
        term = base
        for _ in range(max_length):
            total += term
            term *= growth
            if term < 1.0e-12:
                break
        return total
