"""Planner-facing statistics and cardinality estimation.

The cost-based planner needs two things: the **exact** cardinality of each
atom's edge set (cheap — the graph's indices already know), and an
**estimate** of join result sizes.  The join estimate is the classical
equijoin formula: ``|A ><_o B| ~= |A| * |B| / max(|V|, 1)`` — each left path's
head matches a ``1/|V|`` fraction of right tails under uniformity.  Skewed
graphs (hubs) violate uniformity, which is precisely what experiment E9
measures the planner against.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, Iterable, NamedTuple, Optional

from repro.graph.graph import MultiRelationalGraph
from repro.regex.ast import (
    Atom,
    Empty,
    Epsilon,
    Join,
    Literal,
    Product,
    RegexExpr,
    Repeat,
    Star,
    Union,
)

__all__ = ["GraphStatistics", "LabelDegreeProfile"]


class LabelDegreeProfile(NamedTuple):
    """Per-label degree summary feeding the RPQ direction cost model.

    ``out_histogram``/``in_histogram`` map degree -> vertex count over the
    vertices that carry at least one edge of the label in that direction;
    ``avg_out``/``avg_in`` are the corresponding mean fanouts (edges per
    *participating* vertex, not per graph vertex — the frontier of a
    product BFS consists of participants, so this is the growth factor a
    label contributes per expansion step).
    """

    edges: int
    distinct_tails: int
    distinct_heads: int
    avg_out: float
    avg_in: float
    max_out: int
    max_in: int
    out_histogram: Dict[int, int]
    in_histogram: Dict[int, int]


_EMPTY_PROFILE = LabelDegreeProfile(0, 0, 0, 0.0, 0.0, 0, 0, {}, {})


class GraphStatistics:
    """Cardinality statistics for one graph, cached at construction.

    Build once per (graph version, planning session); the planner treats it
    as immutable.
    """

    def __init__(self, graph: MultiRelationalGraph):
        self.graph = graph
        self.vertex_count = graph.order()
        self.edge_count = graph.size()
        self.label_histogram: Dict[Hashable, int] = graph.label_histogram()
        # Per-label degree profiles are O(E_label) to derive, so they are
        # computed lazily on first request and cached for this instance's
        # lifetime (the engine refreshes the instance per graph version).
        self._degree_profiles: Dict[Hashable, LabelDegreeProfile] = {}

    # ------------------------------------------------------------------

    def degree_profile(self, label: Hashable) -> LabelDegreeProfile:
        """Degree summary of one label's edge set (cached per instance)."""
        profile = self._degree_profiles.get(label)
        if profile is None:
            edges = self.graph.match(label=label)
            if not edges:
                profile = _EMPTY_PROFILE
            else:
                out_degree = Counter(e.tail for e in edges)
                in_degree = Counter(e.head for e in edges)
                count = len(edges)
                profile = LabelDegreeProfile(
                    edges=count,
                    distinct_tails=len(out_degree),
                    distinct_heads=len(in_degree),
                    avg_out=count / len(out_degree),
                    avg_in=count / len(in_degree),
                    max_out=max(out_degree.values()),
                    max_in=max(in_degree.values()),
                    out_histogram=dict(Counter(out_degree.values())),
                    in_histogram=dict(Counter(in_degree.values())))
            self._degree_profiles[label] = profile
        return profile

    def _growth(self, labels: Iterable[Hashable], forward: bool) -> float:
        """Edge-weighted mean fanout across ``labels`` in one direction.

        The per-step frontier growth factor of a product BFS that may
        follow any of the expression's labels: the average out-fanout of
        edge-carrying tails (forward) or in-fanout of edge-carrying heads
        (backward).  The two diverge exactly on skewed graphs — hubs
        concentrate one side's edges onto few vertices — which is what
        makes the direction choice non-trivial.
        """
        total_edges = 0
        weighted = 0.0
        for label in labels:
            profile = self.degree_profile(label)
            if profile.edges:
                total_edges += profile.edges
                weighted += profile.edges * (
                    profile.avg_out if forward else profile.avg_in)
        return weighted / total_edges if total_edges else 0.0

    def forward_growth(self, labels: Iterable[Hashable]) -> float:
        """Estimated forward frontier growth per step over ``labels``."""
        return self._growth(labels, forward=True)

    def backward_growth(self, labels: Iterable[Hashable]) -> float:
        """Estimated backward frontier growth per step over ``labels``."""
        return self._growth(labels, forward=False)

    def atom_cardinality(self, atom: Atom) -> int:
        """Exact edge count matched by a set-builder pattern.

        Fully-wild and label-only patterns read cached counters; patterns
        with a bound vertex consult the graph's per-vertex indices.
        """
        if atom.tail is None and atom.head is None:
            if atom.label is None:
                return self.edge_count
            return self.label_histogram.get(atom.label, 0)
        return len(self.graph.match(tail=atom.tail, label=atom.label,
                                    head=atom.head))

    def join_selectivity(self) -> float:
        """Equijoin selectivity under the uniform join-vertex assumption."""
        return 1.0 / max(self.vertex_count, 1)

    def estimate(self, expression: RegexExpr, max_length: int = 8) -> float:
        """Estimated number of paths matched by ``expression`` (bounded).

        Recursive over the AST; stars assume the per-repetition growth
        factor implied by the inner estimate, truncated at ``max_length``
        repetitions or convergence, mirroring how the bounded evaluators
        truncate.
        """
        expr = expression
        if isinstance(expr, Empty):
            return 0.0
        if isinstance(expr, Epsilon):
            return 1.0
        if isinstance(expr, Atom):
            return float(self.atom_cardinality(expr))
        if isinstance(expr, Literal):
            return float(len(expr.path_set))
        if isinstance(expr, Union):
            return sum(self.estimate(part, max_length) for part in expr.parts)
        if isinstance(expr, Join):
            selectivity = self.join_selectivity()
            total = 1.0
            for part in expr.parts:
                total = total * self.estimate(part, max_length) * selectivity
            return total / selectivity  # n-ary join applies n-1 selectivities
        if isinstance(expr, Product):
            total = 1.0
            for part in expr.parts:
                total *= self.estimate(part, max_length)
            return total
        if isinstance(expr, Star):
            return self._estimate_star(expr.inner, max_length)
        if isinstance(expr, Repeat):
            return self.estimate(expr.expand(), max_length)
        return float(self.edge_count)

    def _estimate_star(self, inner: RegexExpr, max_length: int) -> float:
        """``1 + sum_{k>=1} base * growth^(k-1)`` truncated at ``max_length`` terms.

        ``base`` estimates one repetition; each further repetition joins the
        previous result with ``inner``, multiplying by ``base * selectivity``.
        """
        base = self.estimate(inner, max_length)
        growth = base * self.join_selectivity()
        total = 1.0  # the epsilon repetition
        term = base
        for _ in range(max_length):
            total += term
            term *= growth
            if term < 1.0e-12:
                break
        return total
