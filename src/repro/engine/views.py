"""Incrementally maintained projection views.

Section IV-C projections are *derived data*: `E_ab` is a function of the
base graph, so a serious engine keeps hot projections materialized and
maintains them under mutation rather than recomputing.  This module
implements incremental view maintenance for the two-label join view

    V = { (gamma-(x), gamma+(x)) : x in A ><_o B },   A = E_a, B = E_b

with *witness counts* (the count per pair is what makes deletions exact:
a pair disappears only when its last witness path does — the classical
counting algorithm for join-view maintenance).

Delta rules on base mutations:

* insert ``(t, a, h)``: for every ``(h, b, w)`` edge, witness ``(t, w)`` +1,
* insert ``(t, b, h)``: for every ``(u, a, t)`` edge, witness ``(u, h)`` +1,
* deletions are the same with -1,
* when ``a == b`` the edge plays both roles (and may chain with itself).

The view subscribes to the graph's mutation events; `as_projection()`
exposes the current state as a standard :class:`BinaryProjection`.  The
tests mutate randomly and assert the view always equals a from-scratch
recomputation.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

from repro.core.edge import Edge
from repro.core.projection import BinaryProjection, project_label_sequence
from repro.graph.graph import MultiRelationalGraph

__all__ = ["JoinView"]


class JoinView:
    """A live-maintained ``E_ab`` (two-label join) projection view.

    Parameters
    ----------
    graph:
        The base graph; the view registers itself as a mutation listener.
    first_label / second_label:
        The ``a`` and ``b`` of ``E_ab``.

    Notes
    -----
    Call :meth:`close` to detach from the graph (or use the view as a
    context manager).  While attached, every ``add_edge``/``remove_edge``
    on the base updates the view in O(degree of the join vertex).
    """

    def __init__(self, graph: MultiRelationalGraph,
                 first_label: Hashable, second_label: Hashable):
        self.graph = graph
        self.first_label = first_label
        self.second_label = second_label
        self._weights: Dict[Tuple[Hashable, Hashable], int] = {}
        self._closed = False
        self._rebuild()
        graph.subscribe(self._on_event)

    # ------------------------------------------------------------------

    def _rebuild(self) -> None:
        """Recompute from scratch (used at attach time).

        Absent labels simply resolve to empty traversals, so no special
        casing is needed: the projection's weights are empty then.
        """
        projection = project_label_sequence(
            self.graph, [self.first_label, self.second_label])
        self._weights = dict(projection.weights or {})

    def _bump(self, pair: Tuple[Hashable, Hashable], delta: int) -> None:
        count = self._weights.get(pair, 0) + delta
        if count < 0:
            raise AssertionError(
                "view underflow on {} — maintenance bug".format(pair))
        if count == 0:
            self._weights.pop(pair, None)
        else:
            self._weights[pair] = count

    def _on_event(self, event: str, e: Edge) -> None:
        if self._closed:
            return
        delta = 1 if event == "add_edge" else -1
        # Role 1: e is an A-edge (t -a-> h); partners are B-edges out of h.
        if e.label == self.first_label:
            for partner in self.graph.match(tail=e.head, label=self.second_label):
                # On removal the partner set no longer contains e-dependent
                # pairs that were already retracted; on addition it may
                # include e itself when a == b and e chains with itself —
                # handled below, so skip it here.
                if partner == e:
                    continue
                self._bump((e.tail, partner.head), delta)
        # Role 2: e is a B-edge (t -b-> h); partners are A-edges into t.
        if e.label == self.second_label:
            for partner in self.graph.match(label=self.first_label, head=e.tail):
                if partner == e:
                    continue
                self._bump((partner.tail, e.head), delta)
        # Self-chaining: a == b and the edge is a loop-compatible chain
        # e . e requires head == tail of the same edge (a self-loop).
        if (e.label == self.first_label == self.second_label
                and e.head == e.tail):
            self._bump((e.tail, e.head), delta)

    # ------------------------------------------------------------------

    def pairs(self) -> frozenset:
        """The current view support ``{(tail, head)}``."""
        return frozenset(self._weights)

    def weight(self, tail: Hashable, head: Hashable) -> int:
        """Witness-path count for one pair (0 when absent)."""
        return self._weights.get((tail, head), 0)

    def as_projection(self) -> BinaryProjection:
        """Snapshot the view as a standard :class:`BinaryProjection`."""
        return BinaryProjection(
            pairs=frozenset(self._weights),
            method="incremental-view",
            description="E_{}{} (maintained)".format(self.first_label,
                                                     self.second_label),
            weights=dict(self._weights))

    def close(self) -> None:
        """Detach from the base graph; the view freezes at its last state."""
        if not self._closed:
            self.graph.unsubscribe(self._on_event)
            self._closed = True

    def __enter__(self) -> "JoinView":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._weights)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "live"
        return "JoinView<E_{}.{}: {} pairs, {}>".format(
            self.first_label, self.second_label, len(self._weights), state)
