"""The cost-based planner: regex AST -> physical plan.

The planner's one real decision is **join association order**.  The
concatenative join is associative (section II), so a chain
``a1 ><_o a2 ><_o ... ><_o an`` may be evaluated under any parenthesization;
intermediate result sizes differ wildly when some atoms are selective (a
bound vertex) and others are not (``[_, _, _]``).  We run the classical
matrix-chain dynamic program over the chain with

* ``rows(i, j)`` — estimated paths for the sub-chain ``i..j`` (equijoin
  formula from :class:`GraphStatistics`),
* ``cost(i, j) = min_k cost(i, k) + cost(k+1, j) + rows(i, k) + rows(k+1, j)
  + rows(i, j)`` — hash-join cost is linear in both inputs plus the output.

Products are planned the same way (their estimate just omits the
selectivity factor); unions and stars plan their children recursively.
Correctness never depends on the chosen order — ``tests/test_engine.py``
asserts plan-result invariance — only resource use does (experiment E9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.engine.plan import (
    AtomScan,
    EmptyScan,
    EpsilonScan,
    JoinPlan,
    LiteralScan,
    PlanNode,
    ProductPlan,
    StarPlan,
    UnionPlan,
)
from repro.engine.stats import GraphStatistics
from repro.errors import PlanningError
from repro.regex.ast import (
    Atom,
    Empty,
    Epsilon,
    Join,
    Literal,
    Product,
    RegexExpr,
    Repeat,
    Star,
    Union,
)

__all__ = ["Planner", "DirectionChoice", "ParallelismChoice"]

#: Bidirectional evaluation keeps one bitmask per (vertex, state) per side;
#: past this many vertices on either side the masks outgrow machine words
#: and the one-directional stamped sweeps win anyway.
_BIDI_MAX_SIDE = 64

#: A non-forward direction must beat forward by this factor.  The growth
#: estimates are sampling-noisy on near-symmetric graphs, and forward is
#: the best-tuned kernel — flip direction only on a clear win.
_DIRECTION_MARGIN = 0.9

#: Auto-parallelism floors: below either, pool setup and result pickling
#: outweigh the fan-out win and the planner keeps queries single-core.
#: (An *explicit* ``processes=`` request only has to clear the executor's
#: much smaller ``PARALLEL_MIN_EDGES`` safety floor.)
_PARALLEL_AUTO_MIN_EDGES = 25_000
_PARALLEL_AUTO_MIN_SOURCES = 256

#: Auto-chosen worker counts are capped here: the sweep merge and task
#: pickling serialize past a handful of workers.
_PARALLEL_AUTO_MAX_WORKERS = 8


@dataclass(frozen=True)
class DirectionChoice:
    """Outcome of the RPQ direction cost model (see
    :meth:`Planner.choose_rpq_direction`).

    ``direction`` is ``"forward"``, ``"backward"`` or ``"bidirectional"``;
    the ``*_cost`` fields are the estimated product-configuration
    expansions of each feasible strategy (``None`` = infeasible for this
    query shape).  Surfaced verbatim by ``Engine.explain``.
    """

    direction: str
    forward_cost: float
    backward_cost: Optional[float] = None
    bidirectional_cost: Optional[float] = None

    def describe(self) -> str:
        """One-line summary for EXPLAIN output."""
        def fmt(cost: Optional[float]) -> str:
            return "n/a" if cost is None else "{:.3g}".format(cost)
        return ("direction={} (est. frontier work: forward~{}, "
                "backward~{}, bidirectional~{})").format(
            self.direction, fmt(self.forward_cost),
            fmt(self.backward_cost), fmt(self.bidirectional_cost))


@dataclass(frozen=True)
class ParallelismChoice:
    """Outcome of the sharded-parallel cost threshold
    (:meth:`Planner.choose_parallelism`).

    ``processes == 1`` means single-core; otherwise the executor should fan
    out over ``shards`` vertex-range shards with ``processes`` workers.
    ``reason`` says why, verbatim, for EXPLAIN output.
    """

    processes: int
    shards: int
    reason: str

    @property
    def parallel(self) -> bool:
        return self.processes > 1

    def describe(self) -> str:
        """One-line summary for EXPLAIN output."""
        if not self.parallel:
            return "single-core ({})".format(self.reason)
        return "parallel, {} process(es) x {} shard(s) ({})".format(
            self.processes, self.shards, self.reason)


class Planner:
    """Builds cost-annotated physical plans for one graph's statistics."""

    def __init__(self, statistics: GraphStatistics, max_length: int = 8,
                 optimize_joins: bool = True):
        self.statistics = statistics
        self.max_length = max_length
        self.optimize_joins = optimize_joins

    def plan(self, expression: RegexExpr) -> PlanNode:
        """Compile an expression into a physical plan tree."""
        expr = expression
        if isinstance(expr, Empty):
            return EmptyScan(estimated_rows=0.0, estimated_cost=0.0)
        if isinstance(expr, Epsilon):
            return EpsilonScan(estimated_rows=1.0, estimated_cost=0.0)
        if isinstance(expr, Atom):
            rows = float(self.statistics.atom_cardinality(expr))
            return AtomScan(estimated_rows=rows, estimated_cost=rows, atom=expr)
        if isinstance(expr, Literal):
            rows = float(len(expr.path_set))
            return LiteralScan(estimated_rows=rows, estimated_cost=rows,
                               literal=expr)
        if isinstance(expr, Union):
            parts = tuple(self.plan(part) for part in expr.parts)
            rows = sum(part.estimated_rows for part in parts)
            cost = sum(part.estimated_cost for part in parts) + rows
            return UnionPlan(estimated_rows=rows, estimated_cost=cost, parts=parts)
        if isinstance(expr, Join):
            children = [self.plan(part) for part in expr.parts]
            return self._plan_chain(children, JoinPlan,
                                    self.statistics.join_selectivity())
        if isinstance(expr, Product):
            children = [self.plan(part) for part in expr.parts]
            return self._plan_chain(children, ProductPlan, 1.0)
        if isinstance(expr, Star):
            inner = self.plan(expr.inner)
            rows = self.statistics.estimate(expr, self.max_length)
            cost = inner.estimated_cost + rows * max(self.max_length, 1)
            return StarPlan(estimated_rows=rows, estimated_cost=cost, inner=inner)
        if isinstance(expr, Repeat):
            return self.plan(expr.expand())
        raise PlanningError("cannot plan unknown node {!r}".format(expr))

    # ------------------------------------------------------------------
    # RPQ direction selection (the pairs fast path's one decision)
    # ------------------------------------------------------------------

    @staticmethod
    def _cone_cost(seeds: float, growth: float, horizon: int,
                   cap: float) -> float:
        """Configurations touched by a BFS cone: ``seeds`` initial frontier
        entries growing by ``growth`` per level for ``horizon`` levels, each
        level capped at ``cap`` (the frontier cannot exceed the vertex
        set)."""
        frontier = float(seeds)
        total = frontier
        for _ in range(horizon):
            frontier *= growth
            if frontier > cap:
                frontier = cap
            total += frontier
            if frontier == 0.0:
                break
        return total

    def choose_rpq_direction(self, label_expression,
                             num_sources: Optional[int] = None,
                             num_targets: Optional[int] = None,
                             states: int = 1) -> DirectionChoice:
        """Pick forward / backward / bidirectional for one pairs query.

        ``num_sources``/``num_targets`` are the bound endpoint-set sizes
        (``None`` = unconstrained, i.e. every vertex).  The model compares
        estimated frontier work: the one-directional kernels run one
        stamped sweep per seed vertex, each sweep a cone growing by the
        statistics' per-label mean fanout (out-fanout forward, in-fanout
        backward — asymmetric exactly on skewed graphs); the bidirectional
        kernel runs a single meet-in-the-middle pass whose two cones each
        stop at half the horizon.  Bidirectional is only offered when both
        endpoint sets are explicit and small (mask width); forward wins
        ties, preserving the pre-cost-model behavior on symmetric graphs.

        ``states`` is the (pruned) DFA state count from pre-flight
        analysis: the product BFS walks ``(vertex, state)`` configurations,
        so the per-level frontier cap is ``|V| x |Q|``, not ``|V|``.  The
        default of 1 reproduces the pre-analysis model.
        """
        statistics = self.statistics
        vertex_count = max(statistics.vertex_count, 1)
        frontier_cap = vertex_count * max(states, 1)
        labels = label_expression.symbols()
        forward_growth = statistics.forward_growth(labels)
        backward_growth = statistics.backward_growth(labels)
        horizon = max(self.max_length, 1)
        seeds_forward = vertex_count if num_sources is None else num_sources
        seeds_backward = vertex_count if num_targets is None else num_targets

        forward_cost = seeds_forward * self._cone_cost(
            1.0, forward_growth, horizon, frontier_cap)
        backward_cost = seeds_backward * self._cone_cost(
            1.0, backward_growth, horizon, frontier_cap)
        bidirectional_cost = None
        if num_sources is not None and num_targets is not None \
                and 0 < num_sources <= _BIDI_MAX_SIDE \
                and 0 < num_targets <= _BIDI_MAX_SIDE:
            half = (horizon + 1) // 2
            bidirectional_cost = (
                self._cone_cost(num_sources, forward_growth, half,
                                frontier_cap)
                + self._cone_cost(num_targets, backward_growth, half,
                                  frontier_cap))

        best = "forward"
        best_cost = forward_cost
        if backward_cost < best_cost * _DIRECTION_MARGIN:
            best = "backward"
            best_cost = backward_cost
        if bidirectional_cost is not None \
                and bidirectional_cost < best_cost * _DIRECTION_MARGIN:
            best = "bidirectional"
        return DirectionChoice(direction=best, forward_cost=forward_cost,
                               backward_cost=backward_cost,
                               bidirectional_cost=bidirectional_cost)

    # ------------------------------------------------------------------
    # Sharded-parallel threshold (the fan-out executor's go / no-go)
    # ------------------------------------------------------------------

    def choose_parallelism(self, num_sources: Optional[int] = None,
                           processes: Optional[int] = None,
                           direction: str = "forward") -> ParallelismChoice:
        """Sharded-parallel vs single-core for one pairs-style sweep.

        The fan-out only pays when there is enough independent per-source
        work to split: the graph must carry real edge volume, the source
        set must be broad (an all-sources sweep, or a large batch), the
        direction must be the forward per-source sweep (the backward and
        bidirectional kernels are picked *because* the query is selective,
        where one core already wins), and the machine must have cores.
        ``processes`` is the caller's explicit request: it overrides the
        volume thresholds (the executor still keeps its own tiny-graph
        safety floor) but never parallelizes a selective direction.
        """
        import os
        cpu = os.cpu_count() or 1
        edges = self.statistics.edge_count
        sources = self.statistics.vertex_count if num_sources is None \
            else num_sources
        if direction != "forward":
            return ParallelismChoice(1, 1, "selective {} evaluation stays "
                                     "single-core".format(direction))
        if num_sources is not None and num_sources < 2:
            return ParallelismChoice(1, 1, "a {}-source sweep cannot be "
                                     "split".format(num_sources))
        if processes is not None:
            if processes <= 1:
                return ParallelismChoice(1, 1, "explicit processes=1")
            chosen = max(1, processes)
            return ParallelismChoice(
                chosen, chosen,
                "explicit processes={}".format(processes))
        if cpu < 2:
            return ParallelismChoice(1, 1, "single-core machine")
        if edges < _PARALLEL_AUTO_MIN_EDGES:
            return ParallelismChoice(
                1, 1, "{} edges below the {} auto floor".format(
                    edges, _PARALLEL_AUTO_MIN_EDGES))
        if sources < _PARALLEL_AUTO_MIN_SOURCES:
            return ParallelismChoice(
                1, 1, "{} sources below the {} auto floor".format(
                    sources, _PARALLEL_AUTO_MIN_SOURCES))
        chosen = min(cpu, _PARALLEL_AUTO_MAX_WORKERS)
        return ParallelismChoice(
            chosen, chosen,
            "{} edges, {} sources over auto floors".format(edges, sources))

    # ------------------------------------------------------------------

    def _plan_chain(self, children: List[PlanNode], node_type: type,
                    selectivity: float) -> PlanNode:
        """Choose an association order for an n-ary join/product chain."""
        if len(children) == 1:
            return children[0]
        if not self.optimize_joins or len(children) == 2:
            return self._left_deep(children, node_type, selectivity)
        return self._matrix_chain(children, node_type, selectivity)

    def _combine(self, left: PlanNode, right: PlanNode, node_type: type,
                 selectivity: float) -> PlanNode:
        rows = left.estimated_rows * right.estimated_rows * selectivity
        cost = (left.estimated_cost + right.estimated_cost
                + left.estimated_rows + right.estimated_rows + rows)
        return node_type(estimated_rows=rows, estimated_cost=cost,
                         left=left, right=right)

    def _left_deep(self, children: List[PlanNode], node_type: type,
                   selectivity: float) -> PlanNode:
        result = children[0]
        for child in children[1:]:
            result = self._combine(result, child, node_type, selectivity)
        return result

    def _matrix_chain(self, children: List[PlanNode], node_type: type,
                      selectivity: float) -> PlanNode:
        """Optimal parenthesization by interval dynamic programming.

        O(n^3) over the chain length — chains in practice are short (query
        depth), so this never dominates.
        """
        n = len(children)
        # best[i][j] is the cheapest plan covering children[i..j] inclusive.
        best: List[List[PlanNode]] = [[None] * n for _ in range(n)]  # type: ignore
        for i in range(n):
            best[i][i] = children[i]
        for span in range(2, n + 1):
            for i in range(0, n - span + 1):
                j = i + span - 1
                candidates = []
                for k in range(i, j):
                    candidate = self._combine(best[i][k], best[k + 1][j],
                                              node_type, selectivity)
                    candidates.append(candidate)
                best[i][j] = min(candidates, key=lambda node: node.estimated_cost)
        return best[0][n - 1]
