"""The cost-based planner: regex AST -> physical plan.

The planner's one real decision is **join association order**.  The
concatenative join is associative (section II), so a chain
``a1 ><_o a2 ><_o ... ><_o an`` may be evaluated under any parenthesization;
intermediate result sizes differ wildly when some atoms are selective (a
bound vertex) and others are not (``[_, _, _]``).  We run the classical
matrix-chain dynamic program over the chain with

* ``rows(i, j)`` — estimated paths for the sub-chain ``i..j`` (equijoin
  formula from :class:`GraphStatistics`),
* ``cost(i, j) = min_k cost(i, k) + cost(k+1, j) + rows(i, k) + rows(k+1, j)
  + rows(i, j)`` — hash-join cost is linear in both inputs plus the output.

Products are planned the same way (their estimate just omits the
selectivity factor); unions and stars plan their children recursively.
Correctness never depends on the chosen order — ``tests/test_engine.py``
asserts plan-result invariance — only resource use does (experiment E9).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.engine.plan import (
    AtomScan,
    EmptyScan,
    EpsilonScan,
    JoinPlan,
    LiteralScan,
    PlanNode,
    ProductPlan,
    StarPlan,
    UnionPlan,
)
from repro.engine.stats import GraphStatistics
from repro.errors import PlanningError
from repro.regex.ast import (
    Atom,
    Empty,
    Epsilon,
    Join,
    Literal,
    Product,
    RegexExpr,
    Repeat,
    Star,
    Union,
)

__all__ = ["Planner"]


class Planner:
    """Builds cost-annotated physical plans for one graph's statistics."""

    def __init__(self, statistics: GraphStatistics, max_length: int = 8,
                 optimize_joins: bool = True):
        self.statistics = statistics
        self.max_length = max_length
        self.optimize_joins = optimize_joins

    def plan(self, expression: RegexExpr) -> PlanNode:
        """Compile an expression into a physical plan tree."""
        expr = expression
        if isinstance(expr, Empty):
            return EmptyScan(estimated_rows=0.0, estimated_cost=0.0)
        if isinstance(expr, Epsilon):
            return EpsilonScan(estimated_rows=1.0, estimated_cost=0.0)
        if isinstance(expr, Atom):
            rows = float(self.statistics.atom_cardinality(expr))
            return AtomScan(estimated_rows=rows, estimated_cost=rows, atom=expr)
        if isinstance(expr, Literal):
            rows = float(len(expr.path_set))
            return LiteralScan(estimated_rows=rows, estimated_cost=rows,
                               literal=expr)
        if isinstance(expr, Union):
            parts = tuple(self.plan(part) for part in expr.parts)
            rows = sum(part.estimated_rows for part in parts)
            cost = sum(part.estimated_cost for part in parts) + rows
            return UnionPlan(estimated_rows=rows, estimated_cost=cost, parts=parts)
        if isinstance(expr, Join):
            children = [self.plan(part) for part in expr.parts]
            return self._plan_chain(children, JoinPlan,
                                    self.statistics.join_selectivity())
        if isinstance(expr, Product):
            children = [self.plan(part) for part in expr.parts]
            return self._plan_chain(children, ProductPlan, 1.0)
        if isinstance(expr, Star):
            inner = self.plan(expr.inner)
            rows = self.statistics.estimate(expr, self.max_length)
            cost = inner.estimated_cost + rows * max(self.max_length, 1)
            return StarPlan(estimated_rows=rows, estimated_cost=cost, inner=inner)
        if isinstance(expr, Repeat):
            return self.plan(expr.expand())
        raise PlanningError("cannot plan unknown node {!r}".format(expr))

    # ------------------------------------------------------------------

    def _plan_chain(self, children: List[PlanNode], node_type,
                    selectivity: float) -> PlanNode:
        """Choose an association order for an n-ary join/product chain."""
        if len(children) == 1:
            return children[0]
        if not self.optimize_joins or len(children) == 2:
            return self._left_deep(children, node_type, selectivity)
        return self._matrix_chain(children, node_type, selectivity)

    def _combine(self, left: PlanNode, right: PlanNode, node_type,
                 selectivity: float) -> PlanNode:
        rows = left.estimated_rows * right.estimated_rows * selectivity
        cost = (left.estimated_cost + right.estimated_cost
                + left.estimated_rows + right.estimated_rows + rows)
        return node_type(estimated_rows=rows, estimated_cost=cost,
                         left=left, right=right)

    def _left_deep(self, children: List[PlanNode], node_type,
                   selectivity: float) -> PlanNode:
        result = children[0]
        for child in children[1:]:
            result = self._combine(result, child, node_type, selectivity)
        return result

    def _matrix_chain(self, children: List[PlanNode], node_type,
                      selectivity: float) -> PlanNode:
        """Optimal parenthesization by interval dynamic programming.

        O(n^3) over the chain length — chains in practice are short (query
        depth), so this never dominates.
        """
        n = len(children)
        # best[i][j] is the cheapest plan covering children[i..j] inclusive.
        best: List[List[PlanNode]] = [[None] * n for _ in range(n)]  # type: ignore
        for i in range(n):
            best[i][i] = children[i]
        for span in range(2, n + 1):
            for i in range(0, n - span + 1):
                j = i + span - 1
                candidates = []
                for k in range(i, j):
                    candidate = self._combine(best[i][k], best[k + 1][j],
                                              node_type, selectivity)
                    candidates.append(candidate)
                best[i][j] = min(candidates, key=lambda node: node.estimated_cost)
        return best[0][n - 1]
