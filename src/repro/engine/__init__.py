"""The multi-relational graph traversal engine (the paper's section V goal).

* :class:`Engine` — the facade: PathQL in, paths out, with strategies,
  planning, EXPLAIN, recognition and projection,
* :class:`GraphStatistics` / :class:`Planner` — cost-based join ordering,
* :func:`execute_plan` / :func:`stream_paths` / :func:`run_strategy` — the
  executors.
"""

from repro.engine.engine import Engine, QueryResult
from repro.engine.executor import (
    STRATEGIES,
    endpoint_pairs,
    execute_plan,
    run_strategy,
    stream_paths,
)
from repro.engine.plan import (
    AtomScan,
    EmptyScan,
    EpsilonScan,
    JoinPlan,
    LiteralScan,
    PlanNode,
    ProductPlan,
    StarPlan,
    UnionPlan,
)
from repro.engine.parallel import PARALLEL_MIN_EDGES, ParallelExecutor
from repro.engine.planner import DirectionChoice, ParallelismChoice, Planner
from repro.engine.stats import GraphStatistics, LabelDegreeProfile
from repro.engine.cache import QueryCache
from repro.engine.views import JoinView
from repro.engine.rewrite import (
    distribute_joins,
    factor_unions,
    fold_literals,
    normalize,
)

__all__ = [
    "Engine", "QueryResult",
    "STRATEGIES", "execute_plan", "stream_paths", "run_strategy",
    "endpoint_pairs", "DirectionChoice", "LabelDegreeProfile",
    "ParallelExecutor", "ParallelismChoice", "PARALLEL_MIN_EDGES",
    "PlanNode", "AtomScan", "LiteralScan", "EpsilonScan", "EmptyScan",
    "JoinPlan", "ProductPlan", "UnionPlan", "StarPlan",
    "Planner", "GraphStatistics", "QueryCache", "JoinView",
    "fold_literals", "distribute_joins", "factor_unions", "normalize",
]
