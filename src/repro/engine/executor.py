"""Execution strategies for the traversal engine.

Three ways to run one query, identical results (tests enforce it):

* **materialized** — execute the planner's tree bottom-up with whole
  :class:`PathSet` operations (set-at-a-time, like a classical relational
  executor).  Honors the planner's join association order.
* **streaming** — a lazy generator over the NFA-graph product: paths come
  out one at a time, depth-first, so ``limit=k`` touches only the work
  needed for k results and memory stays proportional to the frontier.
* **automaton** — the breadth-first per-path product construction
  (:func:`repro.automata.generate_paths`), the production RPQ evaluator.
* **stack** — the paper's section IV-B single-stack automaton, verbatim
  (whole path-sets on the stack); kept for fidelity and benchmarked in E2/E8.
"""

from __future__ import annotations

from typing import Iterator, Optional, Set, Tuple

from repro.automata.generator import StackAutomaton, generate_paths
from repro.automata.nfa import build_nfa
from repro.core.path import EPSILON, Path
from repro.core.pathset import PathSet
from repro.engine.plan import (
    AtomScan,
    EmptyScan,
    EpsilonScan,
    JoinPlan,
    LiteralScan,
    PlanNode,
    ProductPlan,
    StarPlan,
    UnionPlan,
)
from repro.errors import ExecutionError
from repro.graph.graph import MultiRelationalGraph
from repro.regex.ast import RegexExpr

__all__ = [
    "STRATEGIES",
    "execute_plan",
    "stream_paths",
    "run_strategy",
    "endpoint_pairs",
]

#: The strategy names accepted by the engine.
STRATEGIES = ("materialized", "streaming", "automaton", "stack")


def execute_plan(plan: PlanNode, graph: MultiRelationalGraph,
                 max_length: int) -> PathSet:
    """Bottom-up set-at-a-time execution of a physical plan."""
    if isinstance(plan, EmptyScan):
        return PathSet.empty()
    if isinstance(plan, EpsilonScan):
        return PathSet.epsilon()
    if isinstance(plan, AtomScan):
        resolved = plan.atom.resolve(graph)
        return PathSet(p for p in resolved if len(p) <= max_length)
    if isinstance(plan, LiteralScan):
        return PathSet(p for p in plan.literal.path_set if len(p) <= max_length)
    if isinstance(plan, UnionPlan):
        out = PathSet.empty()
        for part in plan.parts:
            out = out | execute_plan(part, graph, max_length)
        return out
    if isinstance(plan, JoinPlan):
        left = execute_plan(plan.left, graph, max_length)
        if not left:
            return left
        right = execute_plan(plan.right, graph, max_length)
        joined = left.join(right)
        return PathSet(p for p in joined.paths if len(p) <= max_length)
    if isinstance(plan, ProductPlan):
        left = execute_plan(plan.left, graph, max_length)
        if not left:
            return left
        right = execute_plan(plan.right, graph, max_length)
        product = left.product(right)
        return PathSet(p for p in product.paths if len(p) <= max_length)
    if isinstance(plan, StarPlan):
        base = execute_plan(plan.inner, graph, max_length)
        return base.closure(max_length)
    raise ExecutionError("cannot execute unknown plan node {!r}".format(plan))


def stream_paths(graph: MultiRelationalGraph, expression: RegexExpr,
                 max_length: int, limit: Optional[int] = None) -> Iterator[Path]:
    """Lazily yield matching paths, depth-first, de-duplicated.

    The generator compiles the expression once, then explores
    (state, path, exempt) configurations with an explicit stack; a path is
    yielded the first time any accepting configuration reaches it.  With
    ``limit`` the search stops as soon as enough results emerged — the
    whole point of the pipelined strategy.
    """
    if max_length < 0:
        raise ExecutionError("max_length must be >= 0")
    nfa = build_nfa(expression)
    emitted: Set[Path] = set()
    seen: Set[Tuple[int, Path, bool]] = set()
    stack = []

    def expand(state: int, path: Path, exempt: bool):
        """Epsilon-close a configuration; return (accepting_path, to_push)."""
        accepting = None
        pushes = []
        for closed_state, closed_exempt in nfa.closure({state: exempt}).items():
            config = (closed_state, path, closed_exempt)
            if config in seen:
                continue
            seen.add(config)
            if closed_state == nfa.accept:
                accepting = path
            pushes.append(config)
        return accepting, pushes

    accepting, pushes = expand(nfa.start, EPSILON, False)
    if accepting is not None and accepting not in emitted:
        emitted.add(accepting)
        yield accepting
        if limit is not None and len(emitted) >= limit:
            return
    stack.extend(pushes)
    while stack:
        state, path, exempt = stack.pop()
        if len(path) >= max_length:
            continue
        for matcher, target in nfa.consuming[state]:
            if path and not exempt:
                candidates = matcher.candidate_edges(graph, path.head)
            else:
                candidates = matcher.all_edges(graph)
            for e in sorted(candidates, key=repr):
                grown = path.concat(Path((e,)))
                accepting, pushes = expand(target, grown, False)
                stack.extend(pushes)
                if accepting is not None and accepting not in emitted:
                    emitted.add(accepting)
                    yield accepting
                    if limit is not None and len(emitted) >= limit:
                        return


def endpoint_pairs(paths: PathSet, expression: RegexExpr,
                   graph: MultiRelationalGraph,
                   sources: Optional[Set] = None,
                   targets: Optional[Set] = None
                   ) -> frozenset:
    """Project witness paths to filtered ``(source, target)`` endpoint pairs.

    The single definition of the ``Engine.pairs`` fallback semantics, kept
    in lock-step with the compact reachability kernels:

    * non-empty paths contribute ``(tail, head)`` when the tail passes the
      ``sources`` filter and the head the ``targets`` filter;
    * a nullable expression additionally matches the empty path *at every
      vertex*, contributing the reflexive pair ``(v, v)`` for each live
      vertex that passes **both** filters — the same rule the kernels
      apply via the DFA's accepting start state.

    Keeping one implementation prevents the fast and fallback paths from
    drifting (the historical bug: filters applied to witness paths but not
    to the reflexive completion, or vice versa).
    """
    source_ok = None if sources is None else frozenset(sources)
    target_ok = None if targets is None else frozenset(targets)
    answers = set()
    for path in paths:
        if not path:
            continue  # epsilon: folded into the reflexive completion below
        if source_ok is not None and path.tail not in source_ok:
            continue
        if target_ok is not None and path.head not in target_ok:
            continue
        answers.add((path.tail, path.head))
    if expression.nullable:
        candidates = graph.vertices() if source_ok is None else source_ok
        for vertex in candidates:
            if target_ok is not None and vertex not in target_ok:
                continue
            if graph.has_vertex(vertex):
                answers.add((vertex, vertex))
    return frozenset(answers)


def run_strategy(strategy: str, graph: MultiRelationalGraph,
                 expression: RegexExpr, plan: Optional[PlanNode],
                 max_length: int, limit: Optional[int] = None) -> PathSet:
    """Dispatch one query through the named strategy, returning a PathSet."""
    if strategy == "materialized":
        if plan is None:
            raise ExecutionError("materialized strategy requires a plan")
        result = execute_plan(plan, graph, max_length)
        if limit is not None:
            result = PathSet(list(result)[:limit])
        return result
    if strategy == "streaming":
        return PathSet(stream_paths(graph, expression, max_length, limit))
    if strategy == "automaton":
        result = generate_paths(graph, expression, max_length)
        if limit is not None:
            result = PathSet(list(result)[:limit])
        return result
    if strategy == "stack":
        result = StackAutomaton(expression, graph).run(max_length)
        if limit is not None:
            result = PathSet(list(result)[:limit])
        return result
    raise ExecutionError(
        "unknown strategy {!r}; expected one of {}".format(strategy, STRATEGIES))
