"""The multi-relational graph traversal engine — the paper's closing goal.

:class:`Engine` ties the layers together: PathQL text (or a regex AST) in,
paths out, with strategy selection, cost-based planning, EXPLAIN output and
section IV-C projection as a first-class operation.

Example
-------
>>> from repro.datasets import figure1_graph
>>> from repro.engine import Engine
>>> engine = Engine(figure1_graph())
>>> result = engine.query(
...     "[i, alpha, _] . [_, beta, _]* . "
...     "(([_, alpha, j] . {(j, alpha, i)}) | [_, alpha, k])",
...     max_length=6)
>>> len(result.paths) > 0
True
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.automata.recognizer import Recognizer
from repro.core.path import Path
from repro.core.pathset import PathSet
from repro.core.projection import BinaryProjection, project_paths
from repro.engine.executor import STRATEGIES, run_strategy
from repro.engine.plan import PlanNode
from repro.engine.planner import Planner
from repro.engine.stats import GraphStatistics
from repro.errors import ExecutionError
from repro.graph.graph import MultiRelationalGraph
from repro.lang.parser import parse
from repro.regex.ast import RegexExpr

__all__ = ["Engine", "QueryResult"]


@dataclass
class QueryResult:
    """The outcome of one engine query.

    ``paths`` is the matched path set; ``elapsed`` the wall-clock seconds;
    ``plan`` the physical plan (populated for the materialized strategy, or
    whenever ``explain=True`` was requested); ``strategy`` what ran it.
    """

    paths: PathSet
    expression: RegexExpr
    strategy: str
    max_length: int
    elapsed: float
    plan: Optional[PlanNode] = None

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self):
        return iter(self.paths)

    def heads(self):
        """``{gamma+(a)}`` over the results."""
        return self.paths.heads()

    def tails(self):
        """``{gamma-(a)}`` over the results."""
        return self.paths.tails()

    def projection(self, description: str = "") -> BinaryProjection:
        """Section IV-C projection of the result paths to a binary edge set."""
        return project_paths(self.paths, description=description)

    def explain(self) -> str:
        """The EXPLAIN tree (or a note when the strategy is planless)."""
        if self.plan is None:
            return "(no plan: strategy {!r} executes the expression directly)".format(
                self.strategy)
        return self.plan.explain()

    def __repr__(self) -> str:
        return "QueryResult<{} paths via {} in {:.4f}s>".format(
            len(self.paths), self.strategy, self.elapsed)


class Engine:
    """A traversal engine bound to one graph.

    Parameters
    ----------
    graph:
        The multi-relational graph to query.
    default_max_length:
        Bound applied when a query does not specify one (stars make
        unbounded result sets possible, so a bound always exists).
    optimize:
        Whether the planner reorders join chains (turn off to measure the
        optimizer's benefit — experiment E9 does exactly that).
    """

    def __init__(self, graph: MultiRelationalGraph,
                 default_max_length: int = 8, optimize: bool = True,
                 cache: Optional["QueryCache"] = None):
        self.graph = graph
        self.default_max_length = default_max_length
        self.optimize = optimize
        self.cache = cache
        self._statistics: Optional[GraphStatistics] = None
        self._statistics_version: Optional[int] = None

    # ------------------------------------------------------------------

    def statistics(self) -> GraphStatistics:
        """Current graph statistics (recomputed when the edge count changes)."""
        version = self.graph.size()
        if self._statistics is None or self._statistics_version != version:
            self._statistics = GraphStatistics(self.graph)
            self._statistics_version = version
        return self._statistics

    def compile(self, query: Union[str, RegexExpr]) -> RegexExpr:
        """PathQL text -> AST (ASTs pass through), algebraically normalized.

        Normalization (see :mod:`repro.engine.rewrite`) simplifies, folds
        constant sub-expressions, and factors shared union prefixes —
        language-preserving by construction and by property test.
        """
        from repro.engine.rewrite import normalize
        expression = parse(query) if isinstance(query, str) else query
        return normalize(expression)

    def plan(self, query: Union[str, RegexExpr],
             max_length: Optional[int] = None) -> PlanNode:
        """The physical plan the materialized strategy would run."""
        expression = self.compile(query)
        planner = Planner(self.statistics(),
                          max_length=max_length or self.default_max_length,
                          optimize_joins=self.optimize)
        return planner.plan(expression)

    def explain(self, query: Union[str, RegexExpr],
                max_length: Optional[int] = None) -> str:
        """EXPLAIN: the annotated plan tree as text."""
        return self.plan(query, max_length).explain()

    def query(self, query: Union[str, RegexExpr], strategy: str = "materialized",
              max_length: Optional[int] = None,
              limit: Optional[int] = None) -> QueryResult:
        """Run a query and return its :class:`QueryResult`.

        ``strategy`` is one of ``materialized`` (planned, set-at-a-time),
        ``streaming`` (lazy pipeline, respects ``limit`` early),
        ``automaton`` (per-path product BFS) or ``stack`` (the paper's
        section IV-B construction).
        """
        if strategy not in STRATEGIES:
            raise ExecutionError(
                "unknown strategy {!r}; expected one of {}".format(
                    strategy, STRATEGIES))
        expression = self.compile(query)
        bound = max_length if max_length is not None else self.default_max_length
        cacheable = self.cache is not None and limit is None
        if cacheable:
            cached = self.cache.get(expression, bound, self.graph.version(),
                                    strategy)
            if cached is not None:
                return QueryResult(paths=cached, expression=expression,
                                   strategy=strategy, max_length=bound,
                                   elapsed=0.0, plan=None)
        plan = None
        if strategy == "materialized":
            planner = Planner(self.statistics(), max_length=bound,
                              optimize_joins=self.optimize)
            plan = planner.plan(expression)
        started = time.perf_counter()
        paths = run_strategy(strategy, self.graph, expression, plan, bound, limit)
        elapsed = time.perf_counter() - started
        if cacheable:
            self.cache.put(expression, bound, self.graph.version(),
                           strategy, paths)
        return QueryResult(paths=paths, expression=expression,
                           strategy=strategy, max_length=bound,
                           elapsed=elapsed, plan=plan)

    def recognize(self, query: Union[str, RegexExpr], path: Path) -> bool:
        """Section IV-A recognition: is ``path`` in the query's language?"""
        expression = self.compile(query)
        return Recognizer(expression, self.graph).accepts(path)

    def project(self, query: Union[str, RegexExpr],
                max_length: Optional[int] = None,
                strategy: str = "automaton",
                description: str = "") -> BinaryProjection:
        """Section IV-C: run a query and project its paths to a binary edge set."""
        result = self.query(query, strategy=strategy, max_length=max_length)
        return result.projection(description=description)

    def __repr__(self) -> str:
        return "Engine<{!r}, default_max_length={}, optimize={}>".format(
            self.graph, self.default_max_length, self.optimize)
