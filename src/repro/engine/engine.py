"""The multi-relational graph traversal engine — the paper's closing goal.

:class:`Engine` ties the layers together: PathQL text (or a regex AST) in,
paths out, with strategy selection, cost-based planning, EXPLAIN output and
section IV-C projection as a first-class operation.

The pairs fast path
-------------------
Beyond the four path-materializing strategies, :meth:`Engine.pairs` answers
the *reachability* question — which ``(source, target)`` pairs are connected
by a matching path — without materializing any path.  When the compiled
expression is **label-only** (every atom is ``[_, a, _]``, combined by
union/join/star/bounded repeat — detected by
:func:`repro.rpq.lower_to_label_expression`), it is lowered to the label
formulation and evaluated by the compact frontier-BFS kernel of
:mod:`repro.graph.compact`: a DFA is compiled once, the graph's
integer-indexed CSR snapshot is fetched from the version-keyed cache
(rebuilt lazily only after a mutation), and one stamped product BFS sweeps
all sources.  That path is *unbounded* (true Kleene-star reachability) and
allocation-free per lookup; passing an explicit ``max_length`` opts out of
it, since a bound changes the semantics.  Expressions that bind endpoint
vertices, use literals or products fall back to the bounded ``automaton``
strategy and project endpoints from the witness paths.
``EXPLAIN`` output reports which of the two applies (the trailing
``pairs fast path`` line).

Example
-------
>>> from repro.datasets import figure1_graph
>>> from repro.engine import Engine
>>> engine = Engine(figure1_graph())
>>> result = engine.query(
...     "[i, alpha, _] . [_, beta, _]* . "
...     "(([_, alpha, j] . {(j, alpha, i)}) | [_, alpha, k])",
...     max_length=6)
>>> len(result.paths) > 0
True
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.automata.recognizer import Recognizer
from repro.core.path import Path
from repro.core.pathset import PathSet
from repro.core.projection import BinaryProjection, project_paths
from repro.engine.executor import STRATEGIES, run_strategy
from repro.engine.plan import PlanNode
from repro.engine.planner import Planner
from repro.engine.stats import GraphStatistics
from repro.errors import ExecutionError
from repro.graph.graph import MultiRelationalGraph
from repro.lang.parser import parse
from repro.regex.ast import RegexExpr

__all__ = ["Engine", "QueryResult"]


@dataclass
class QueryResult:
    """The outcome of one engine query.

    ``paths`` is the matched path set; ``elapsed`` the wall-clock seconds;
    ``plan`` the physical plan (populated for the materialized strategy, or
    whenever ``explain=True`` was requested); ``strategy`` what ran it.
    """

    paths: PathSet
    expression: RegexExpr
    strategy: str
    max_length: int
    elapsed: float
    plan: Optional[PlanNode] = None

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self):
        return iter(self.paths)

    def heads(self):
        """``{gamma+(a)}`` over the results."""
        return self.paths.heads()

    def tails(self):
        """``{gamma-(a)}`` over the results."""
        return self.paths.tails()

    def projection(self, description: str = "") -> BinaryProjection:
        """Section IV-C projection of the result paths to a binary edge set."""
        return project_paths(self.paths, description=description)

    def explain(self) -> str:
        """The EXPLAIN tree (or a note when the strategy is planless)."""
        if self.plan is None:
            return "(no plan: strategy {!r} executes the expression directly)".format(
                self.strategy)
        return self.plan.explain()

    def __repr__(self) -> str:
        return "QueryResult<{} paths via {} in {:.4f}s>".format(
            len(self.paths), self.strategy, self.elapsed)


class Engine:
    """A traversal engine bound to one graph.

    Parameters
    ----------
    graph:
        The multi-relational graph to query.
    default_max_length:
        Bound applied when a query does not specify one (stars make
        unbounded result sets possible, so a bound always exists).
    optimize:
        Whether the planner reorders join chains (turn off to measure the
        optimizer's benefit — experiment E9 does exactly that).
    """

    def __init__(self, graph: MultiRelationalGraph,
                 default_max_length: int = 8, optimize: bool = True,
                 cache: Optional["QueryCache"] = None):
        self.graph = graph
        self.default_max_length = default_max_length
        self.optimize = optimize
        self.cache = cache
        self._statistics: Optional[GraphStatistics] = None
        self._statistics_version: Optional[int] = None

    # ------------------------------------------------------------------

    def statistics(self) -> GraphStatistics:
        """Current graph statistics (recomputed when the edge count changes)."""
        version = self.graph.size()
        if self._statistics is None or self._statistics_version != version:
            self._statistics = GraphStatistics(self.graph)
            self._statistics_version = version
        return self._statistics

    def compile(self, query: Union[str, RegexExpr]) -> RegexExpr:
        """PathQL text -> AST (ASTs pass through), algebraically normalized.

        Normalization (see :mod:`repro.engine.rewrite`) simplifies, folds
        constant sub-expressions, and factors shared union prefixes —
        language-preserving by construction and by property test.
        """
        from repro.engine.rewrite import normalize
        expression = parse(query) if isinstance(query, str) else query
        return normalize(expression)

    def plan(self, query: Union[str, RegexExpr],
             max_length: Optional[int] = None) -> PlanNode:
        """The physical plan the materialized strategy would run."""
        expression = self.compile(query)
        planner = Planner(self.statistics(),
                          max_length=max_length or self.default_max_length,
                          optimize_joins=self.optimize)
        return planner.plan(expression)

    def explain(self, query: Union[str, RegexExpr],
                max_length: Optional[int] = None) -> str:
        """EXPLAIN: the annotated plan tree, plus pairs-fast-path eligibility.

        The trailing lines report whether :meth:`pairs` would route this
        query through the compact frontier-BFS kernel (label-only
        expressions) or fall back to bounded path materialization, and the
        state of the graph's compact snapshot cache (cold, base CSR, or
        delta overlay awaiting compaction) so staleness is visible next to
        the plan.
        """
        from repro.graph.compact import snapshot_state
        from repro.rpq.evaluation import lower_to_label_expression
        expression = self.compile(query)
        text = self.plan(expression, max_length).explain()
        if lower_to_label_expression(expression) is not None:
            note = ("pairs fast path: eligible — label-only expression; "
                    "Engine.pairs() runs the compact frontier-BFS kernel "
                    "(unbounded, no path materialization)")
        else:
            note = ("pairs fast path: not eligible — expression is not "
                    "label-only; Engine.pairs() falls back to bounded "
                    "automaton evaluation")
        snapshot_note = "compact snapshot: " + snapshot_state(self.graph)
        return text + "\n" + note + "\n" + snapshot_note

    def pairs(self, query: Union[str, RegexExpr],
              sources: Optional[frozenset] = None,
              max_length: Optional[int] = None) -> frozenset:
        """All ``(source, target)`` pairs connected by a matching path.

        Label-only expressions (see module docstring) run the compact
        frontier-BFS kernel: exact, *unbounded* reachability semantics with
        the DFA and adjacency snapshot shared across all sources.  The fast
        path therefore only applies when no ``max_length`` is given — an
        explicit bound is honored by routing through the bounded
        ``automaton`` strategy instead, like every expression that needs
        the edge-set algebra (vertex-bound atoms, literals, products),
        projecting endpoint pairs from the length-limited witness paths.

        ``sources=None`` means all vertices; otherwise only pairs whose
        source is in ``sources`` are returned.
        """
        from repro.rpq.evaluation import lower_to_label_expression, rpq_pairs
        expression = self.compile(query)
        if max_length is None:
            label_expression = lower_to_label_expression(expression)
            if label_expression is not None:
                return rpq_pairs(self.graph, label_expression, sources=sources)
        result = self.query(expression, strategy="automaton",
                            max_length=max_length)
        wanted = None if sources is None else set(sources)
        answers = {(p.tail, p.head) for p in result.paths
                   if p and (wanted is None or p.tail in wanted)}
        if expression.nullable:
            reflexive = self.graph.vertices() if wanted is None \
                else (v for v in wanted if self.graph.has_vertex(v))
            answers.update((v, v) for v in reflexive)
        return frozenset(answers)

    def query(self, query: Union[str, RegexExpr], strategy: str = "materialized",
              max_length: Optional[int] = None,
              limit: Optional[int] = None) -> QueryResult:
        """Run a query and return its :class:`QueryResult`.

        ``strategy`` is one of ``materialized`` (planned, set-at-a-time),
        ``streaming`` (lazy pipeline, respects ``limit`` early),
        ``automaton`` (per-path product BFS) or ``stack`` (the paper's
        section IV-B construction).
        """
        if strategy not in STRATEGIES:
            raise ExecutionError(
                "unknown strategy {!r}; expected one of {}".format(
                    strategy, STRATEGIES))
        expression = self.compile(query)
        bound = max_length if max_length is not None else self.default_max_length
        cacheable = self.cache is not None and limit is None
        if cacheable:
            cached = self.cache.get(expression, bound, self.graph.version(),
                                    strategy)
            if cached is not None:
                return QueryResult(paths=cached, expression=expression,
                                   strategy=strategy, max_length=bound,
                                   elapsed=0.0, plan=None)
        plan = None
        if strategy == "materialized":
            planner = Planner(self.statistics(), max_length=bound,
                              optimize_joins=self.optimize)
            plan = planner.plan(expression)
        started = time.perf_counter()
        paths = run_strategy(strategy, self.graph, expression, plan, bound, limit)
        elapsed = time.perf_counter() - started
        if cacheable:
            self.cache.put(expression, bound, self.graph.version(),
                           strategy, paths)
        return QueryResult(paths=paths, expression=expression,
                           strategy=strategy, max_length=bound,
                           elapsed=elapsed, plan=plan)

    def recognize(self, query: Union[str, RegexExpr], path: Path) -> bool:
        """Section IV-A recognition: is ``path`` in the query's language?"""
        expression = self.compile(query)
        return Recognizer(expression, self.graph).accepts(path)

    def project(self, query: Union[str, RegexExpr],
                max_length: Optional[int] = None,
                strategy: str = "automaton",
                description: str = "") -> BinaryProjection:
        """Section IV-C: run a query and project its paths to a binary edge set."""
        result = self.query(query, strategy=strategy, max_length=max_length)
        return result.projection(description=description)

    def __repr__(self) -> str:
        return "Engine<{!r}, default_max_length={}, optimize={}>".format(
            self.graph, self.default_max_length, self.optimize)
