"""The multi-relational graph traversal engine — the paper's closing goal.

:class:`Engine` ties the layers together: PathQL text (or a regex AST) in,
paths out, with strategy selection, cost-based planning, EXPLAIN output and
section IV-C projection as a first-class operation.

The pairs fast path
-------------------
Beyond the four path-materializing strategies, :meth:`Engine.pairs` answers
the *reachability* question — which ``(source, target)`` pairs are connected
by a matching path — without materializing any path.  When the compiled
expression lowers to a :class:`~repro.rpq.ConstrainedQuery` (every atom is
``[_, a, _]``, except that the *first* may bind its tail and the *last* its
head — detected by :func:`repro.rpq.lower_to_constrained_query`), it is
evaluated by the compact product-BFS kernels of :mod:`repro.graph.compact`:
the DFA comes from a per-engine compilation cache keyed on ``(expression,
label alphabet)``, the graph's integer-indexed CSR snapshot from the
version-keyed snapshot cache (patched incrementally after mutations), and
a **direction cost model** (:meth:`Planner.choose_rpq_direction`, driven
by the statistics' per-label degree profiles) picks among three kernels:

* **forward** — stamped product BFS from the sources over the forward CSR,
* **backward** — stamped product BFS from the targets over the reverse CSR
  with the DFA's transitions reversed,
* **bidirectional** — meet-in-the-middle between explicit source and
  target sets, expanding whichever frontier is smaller and joining on
  (vertex, state) meets — the point-to-point fast path.

This covers vertex-bound prefix/suffix queries (``[i, a, _] · R``,
``R · [_, a, j]``) that previously materialized bounded witness paths.
The fast path is *unbounded* (true Kleene-star reachability); passing an
explicit ``max_length`` opts out of it, since a bound changes the
semantics.  Expressions binding interior vertices, literals and products
fall back to the bounded ``automaton`` strategy and project endpoints from
the witness paths (:func:`repro.engine.executor.endpoint_pairs` keeps the
two paths' filter/reflexive semantics identical).  ``EXPLAIN`` reports
which applies and the chosen direction (the trailing ``pairs fast path`` /
``pairs direction`` lines).

Example
-------
>>> from repro.datasets import figure1_graph
>>> from repro.engine import Engine
>>> engine = Engine(figure1_graph())
>>> result = engine.query(
...     "[i, alpha, _] . [_, beta, _]* . "
...     "(([_, alpha, j] . {(j, alpha, i)}) | [_, alpha, k])",
...     max_length=6)
>>> len(result.paths) > 0
True
"""

from __future__ import annotations

import itertools
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.automata.recognizer import Recognizer
from repro.concurrency import ordered_lock
from repro.core.path import Path
from repro.core.pathset import PathSet
from repro.core.projection import BinaryProjection, project_paths
from repro.engine.executor import STRATEGIES, run_strategy
from repro.engine.plan import PlanNode
from repro.engine.planner import Planner
from repro.engine.stats import GraphStatistics
from repro.errors import ExecutionError
from repro.graph.graph import MultiRelationalGraph
from repro.lang.parser import parse
from repro.regex.ast import RegexExpr

__all__ = ["Engine", "QueryResult"]

#: Fallback identity mint for duck-typed graphs without ``graph_token()``.
#: Never ``id(graph)``: CPython recycles addresses, so a collected graph's
#: id can be reissued to a new one with a matching fresh ``version()`` —
#: exactly the shared-cache collision the token exists to prevent.
_ANONYMOUS_TOKENS = itertools.count(1)


@dataclass
class QueryResult:
    """The outcome of one engine query.

    ``paths`` is the matched path set; ``elapsed`` the wall-clock seconds;
    ``plan`` the physical plan (populated for the materialized strategy, or
    whenever ``explain=True`` was requested); ``strategy`` what ran it.
    """

    paths: PathSet
    expression: RegexExpr
    strategy: str
    max_length: int
    elapsed: float
    plan: Optional[PlanNode] = None

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self):
        return iter(self.paths)

    def heads(self):
        """``{gamma+(a)}`` over the results."""
        return self.paths.heads()

    def tails(self):
        """``{gamma-(a)}`` over the results."""
        return self.paths.tails()

    def projection(self, description: str = "") -> BinaryProjection:
        """Section IV-C projection of the result paths to a binary edge set."""
        return project_paths(self.paths, description=description)

    def explain(self) -> str:
        """The EXPLAIN tree (or a note when the strategy is planless)."""
        if self.plan is None:
            return "(no plan: strategy {!r} executes the expression directly)".format(
                self.strategy)
        return self.plan.explain()

    def __repr__(self) -> str:
        return "QueryResult<{} paths via {} in {:.4f}s>".format(
            len(self.paths), self.strategy, self.elapsed)


class Engine:
    """A traversal engine bound to one graph.

    Parameters
    ----------
    graph:
        The multi-relational graph to query.
    default_max_length:
        Bound applied when a query does not specify one (stars make
        unbounded result sets possible, so a bound always exists).
    optimize:
        Whether the planner reorders join chains (turn off to measure the
        optimizer's benefit — experiment E9 does exactly that).
    """

    #: Compiled-DFA cache capacity (LRU) — bounds memory on engines serving
    #: many distinct query shapes.
    _DFA_CACHE_CAP = 128

    def __init__(self, graph: MultiRelationalGraph,
                 default_max_length: int = 8, optimize: bool = True,
                 cache: Optional["QueryCache"] = None):
        self.graph = graph
        self.default_max_length = default_max_length
        self.optimize = optimize
        self.cache = cache
        # Graph identity for shared result caches: version() alone cannot
        # distinguish two graphs, so cache keys carry this token too.
        token = getattr(graph, "graph_token", None)
        self._graph_token = token() if callable(token) \
            else ("anon", next(_ANONYMOUS_TOKENS))
        self._statistics: Optional[GraphStatistics] = None
        self._statistics_version: Optional[int] = None
        # (label expression, label alphabet) -> compiled DFA, LRU-bounded.
        self._dfa_cache: "OrderedDict" = OrderedDict()
        self._dfa_cache_hits = 0
        self._dfa_cache_misses = 0
        # Lazily created fan-out executor (see repro.engine.parallel);
        # rebuilt when a call asks for a different worker count.  The lock
        # keeps the swap-and-close safe when a service tier drives one
        # engine from several executor threads.
        self._parallel = None
        self._parallel_lock = ordered_lock("engine.parallel")

    # ------------------------------------------------------------------

    @classmethod
    def open(cls, directory: str, default_max_length: int = 8,
             optimize: bool = True, cache=None) -> "Engine":
        """An engine over a durable graph store (see :mod:`repro.storage`).

        Opens the store at ``directory`` — mapping its latest CSR snapshot
        and replaying the write-ahead-log suffix — materializes the dict
        indices the path-materializing strategies need (the mapped snapshot
        is adopted as the compact cache, so the ``pairs`` fast path still
        serves from mmap), and binds the engine to the result.  Mutations
        through ``engine.graph`` keep appending to the store's WAL; the
        store handle is exposed as ``engine.store`` for ``checkpoint()`` /
        ``close()``.
        """
        from repro.storage import PersistentGraph
        store = PersistentGraph.open(directory, materialize=True)
        engine = cls(store.graph(), default_max_length=default_max_length,
                     optimize=optimize, cache=cache)
        engine.store = store
        return engine

    def statistics(self) -> GraphStatistics:
        """Current graph statistics, refreshed on ``graph.version()``.

        Keyed on the mutation counter rather than the edge count: a
        remove+add cycle leaves ``size()`` unchanged while shifting label
        histograms and degree profiles, and version-keying also means one
        rebuild per mutation batch instead of comparing structure on every
        access.
        """
        version = self.graph.version()
        if self._statistics is None or self._statistics_version != version:
            self._statistics = GraphStatistics(self.graph)
            self._statistics_version = version
        return self._statistics

    def preflight(self, label_expression) -> "QueryDiagnostics":
        """Pre-flight analysis for a label expression, via the LRU cache.

        Compiles the expression (subset construction), then runs
        :func:`repro.analysis.query.analyze_compiled_query` over it:
        dead/unreachable DFA states are pruned (language-preserving),
        unknown labels become warnings, and provable emptiness — an empty
        language, or no accepting state reachable through labels the graph
        actually carries — becomes a verdict :meth:`pairs` /
        :meth:`pairs_batch` short-circuit on.

        Keyed by ``(expression, label alphabet)`` — the alphabet frozenset
        is the "alphabet version": mutations that do not add or retire a
        label keep every cached entry valid, so steady-state repeated
        queries pay neither re-determinization nor re-analysis.
        """
        from repro.analysis.query import analyze_compiled_query
        from repro.rpq.evaluation import compile_rpq
        key = (label_expression, self.graph.labels())
        diagnostics = self._dfa_cache.get(key)
        if diagnostics is None:
            self._dfa_cache_misses += 1
            dfa = compile_rpq(label_expression, self.graph)
            diagnostics = analyze_compiled_query(
                dfa, label_expression, self.graph.labels())
            self._dfa_cache[key] = diagnostics
            if len(self._dfa_cache) > self._DFA_CACHE_CAP:
                self._dfa_cache.popitem(last=False)
        else:
            self._dfa_cache_hits += 1
            self._dfa_cache.move_to_end(key)
        return diagnostics

    def compiled_dfa(self, label_expression):
        """The (pruned) DFA for a label expression, via the LRU cache.

        The automaton comes out of :meth:`preflight`, so dead and
        unreachable states are already pruned — same language, smaller
        product space for the kernels.
        """
        return self.preflight(label_expression).dfa

    def dfa_cache_info(self) -> Tuple[int, int, int]:
        """``(hits, misses, current size)`` of the compiled-DFA cache."""
        return self._dfa_cache_hits, self._dfa_cache_misses, \
            len(self._dfa_cache)

    def cache_stats(self) -> dict:
        """Combined hit/miss/occupancy stats for both engine caches.

        ``dfa_cache`` covers compiled-query reuse (per engine);
        ``query_cache`` covers whole-result reuse (``None`` when the engine
        was built without one).  Surfaced in :meth:`explain` so cache wins
        are observable next to the parallelism decision.
        """
        hits, misses, entries = self.dfa_cache_info()
        stats = {
            "dfa_cache": {"hits": hits, "misses": misses,
                          "entries": entries,
                          "capacity": self._DFA_CACHE_CAP},
            "query_cache": None,
        }
        if self.cache is not None:
            stats["query_cache"] = self.cache.stats()
        return stats

    # -- parallel fan-out plumbing -------------------------------------

    def _executor(self, choice):
        """The engine's :class:`ParallelExecutor`, matched to ``choice``.

        One executor (and its worker pool) persists across calls; asking
        for a different worker or shard count replaces it.
        """
        from repro.engine.parallel import ParallelExecutor
        with self._parallel_lock:
            executor = self._parallel
            if executor is not None \
                    and executor.processes == choice.processes \
                    and executor.num_shards == choice.shards:
                return executor
            if executor is not None:
                executor.close()
            executor = ParallelExecutor(self.graph,
                                        processes=choice.processes,
                                        num_shards=choice.shards)
            self._parallel = executor
            return executor

    def pool_healthy(self) -> bool:
        """Whether the lazy parallel pool (if started) has no dead workers.

        ``True`` when no pool was ever started — a cold engine is healthy,
        not broken.  Used by the service readiness probe.
        """
        with self._parallel_lock:
            executor = self._parallel
        return executor is None or executor.healthy()

    def parallel_stats(self) -> Optional[dict]:
        """Self-healing counters of the live executor, ``None`` if cold."""
        with self._parallel_lock:
            executor = self._parallel
        return None if executor is None else executor.stats()

    def close(self) -> None:
        """Release the parallel worker pool (if one was ever started).

        Idempotent and thread-safe: a server shutdown may race a late
        query's executor swap, and both may run `close` more than once —
        the pool is drained gracefully exactly once either way (see
        :meth:`ParallelExecutor.close`), so no semaphores or workers leak.
        """
        with self._parallel_lock:
            executor, self._parallel = self._parallel, None
        if executor is not None:
            executor.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def compile(self, query: Union[str, RegexExpr]) -> RegexExpr:
        """PathQL text -> AST (ASTs pass through), algebraically normalized.

        Normalization (see :mod:`repro.engine.rewrite`) simplifies, folds
        constant sub-expressions, and factors shared union prefixes —
        language-preserving by construction and by property test.
        """
        from repro.engine.rewrite import normalize
        expression = parse(query) if isinstance(query, str) else query
        return normalize(expression)

    def plan(self, query: Union[str, RegexExpr],
             max_length: Optional[int] = None) -> PlanNode:
        """The physical plan the materialized strategy would run."""
        expression = self.compile(query)
        planner = Planner(self.statistics(),
                          max_length=max_length or self.default_max_length,
                          optimize_joins=self.optimize)
        return planner.plan(expression)

    def explain(self, query: Union[str, RegexExpr],
                max_length: Optional[int] = None,
                sources: Optional[frozenset] = None,
                targets: Optional[frozenset] = None,
                processes: Optional[int] = None) -> str:
        """EXPLAIN: the annotated plan tree, plus pairs-fast-path routing.

        The trailing lines report whether :meth:`pairs` would route this
        query through the compact product-BFS kernels (label-only or
        vertex-bound-end expressions) or fall back to bounded path
        materialization, the direction the cost model would pick for the
        given endpoint filters (with its frontier-work estimates), whether
        the sharded fan-out executor would run it (and over how many
        processes and shards), the state of the graph's compact snapshot
        cache (cold, base CSR, or delta overlay awaiting compaction), and
        the engine's cache hit rates — so staleness, parallelism and cache
        wins are all visible next to the plan.

        The output closes with a ``diagnostics:`` section from pre-flight
        analysis (see :mod:`repro.analysis.query`): star-height and DFA
        state-count complexity estimates, pruned-state counts, warnings
        about labels the graph has never seen, and — when the analysis can
        prove it — a "provably empty" verdict, which :meth:`pairs`,
        :meth:`pairs_batch` and :meth:`query` short-circuit on without a
        kernel dispatch.
        """
        from repro.analysis.query import analyze_expression
        from repro.graph.compact import snapshot_state
        from repro.rpq.evaluation import lower_to_constrained_query
        expression = self.compile(query)
        text = self.plan(expression, max_length).explain()
        constrained = lower_to_constrained_query(expression)
        if constrained is not None:
            diagnostics = self.preflight(constrained.label_expression)
            note = ("pairs fast path: eligible — {}; Engine.pairs() runs "
                    "the compact product-BFS kernels (unbounded, no path "
                    "materialization)").format(constrained.describe())
            merged = self._constrained_filters(constrained, sources, targets)
            if merged is None:
                direction_note = ("pairs direction: n/a — endpoint filters "
                                  "exclude the bound vertex (empty result)")
                parallel_note = "pairs parallelism: n/a (empty result)"
            elif diagnostics.empty:
                direction_note = ("pairs direction: n/a — pre-flight "
                                  "analysis proved the result empty "
                                  "(short-circuit, no kernel dispatch)")
                parallel_note = "pairs parallelism: n/a (empty result)"
            else:
                choice = self._direction_choice(
                    constrained, *merged,
                    states=diagnostics.dfa.num_states)
                direction_note = "pairs direction: " + choice.describe()
                parallelism = self._parallelism_choice(
                    merged[0], processes, choice.direction)
                parallel_note = "pairs parallelism: " + parallelism.describe()
            note = note + "\n" + direction_note + "\n" + parallel_note
        else:
            diagnostics = analyze_expression(expression, self.graph)
            note = ("pairs fast path: not eligible — expression binds "
                    "interior vertices or needs the edge-set algebra; "
                    "Engine.pairs() falls back to bounded automaton "
                    "evaluation")
        snapshot_note = "compact snapshot: " + snapshot_state(self.graph)
        return text + "\n" + note + "\n" + snapshot_note \
            + "\n" + self._cache_note() + "\n" + diagnostics.describe()

    def _cache_note(self) -> str:
        """The EXPLAIN line summarizing :meth:`cache_stats`."""
        stats = self.cache_stats()
        dfa = stats["dfa_cache"]
        note = "caches: dfa {}/{} hit/miss, {}/{} entries".format(
            dfa["hits"], dfa["misses"], dfa["entries"], dfa["capacity"])
        results = stats["query_cache"]
        if results is None:
            return note + "; results uncached"
        return note + "; results {}/{} hit/miss, {}/{} entries".format(
            results["hits"], results["misses"], results["entries"],
            results["capacity"])

    # -- pairs fast-path plumbing --------------------------------------

    @staticmethod
    def _constrained_filters(constrained, sources, targets):
        """Merge caller endpoint filters with the lowering's bound vertices.

        Returns ``(sources, targets)`` as Optional[frozenset]s, or ``None``
        when a bound vertex is excluded by the corresponding filter (the
        result is provably empty).
        """
        if constrained.source is not None:
            if sources is not None and constrained.source not in frozenset(sources):
                return None
            sources = frozenset((constrained.source,))
        elif sources is not None:
            sources = frozenset(sources)
        if constrained.target is not None:
            if targets is not None and constrained.target not in frozenset(targets):
                return None
            targets = frozenset((constrained.target,))
        elif targets is not None:
            targets = frozenset(targets)
        return sources, targets

    def _direction_choice(self, constrained, sources, targets,
                          states: int = 1):
        """The cost model's pick for one constrained query + filters.

        ``states`` is the pruned DFA state count from :meth:`preflight`;
        the planner caps per-level frontiers at ``|V| x states`` (the
        product space the kernels actually walk).
        """
        planner = Planner(self.statistics(),
                          max_length=self.default_max_length,
                          optimize_joins=self.optimize)
        return planner.choose_rpq_direction(
            constrained.label_expression,
            None if sources is None else len(sources),
            None if targets is None else len(targets),
            states=states)

    def _parallelism_choice(self, sources, processes, direction="forward"):
        """The planner's sharded-parallel threshold for one pairs call."""
        planner = Planner(self.statistics(),
                          max_length=self.default_max_length,
                          optimize_joins=self.optimize)
        return planner.choose_parallelism(
            num_sources=None if sources is None else len(sources),
            processes=processes, direction=direction)

    def pairs(self, query: Union[str, RegexExpr],
              sources: Optional[frozenset] = None,
              targets: Optional[frozenset] = None,
              max_length: Optional[int] = None,
              processes: Optional[int] = None) -> frozenset:
        """All ``(source, target)`` pairs connected by a matching path.

        Expressions lowering to a constrained label RPQ (label-only, or
        vertex-bound only at the ends — see module docstring) run the
        compact product-BFS kernels: exact, *unbounded* reachability
        semantics, with the compiled DFA served from the engine's cache
        and the traversal direction (forward / backward / bidirectional)
        chosen by the statistics-driven cost model.  The fast path only
        applies when no ``max_length`` is given — an explicit bound is
        honored by routing through the bounded ``automaton`` strategy
        instead, like every expression that needs the edge-set algebra
        (interior-bound atoms, literals, products), projecting endpoint
        pairs from the length-limited witness paths with identical
        filter/reflexive semantics (:func:`~repro.engine.executor.endpoint_pairs`).

        ``sources``/``targets`` of ``None`` mean all vertices; otherwise
        only pairs whose endpoints are in the given sets are returned.

        ``processes`` controls the sharded fan-out of broad forward sweeps
        (see :mod:`repro.engine.parallel`): ``None`` lets the planner's
        cost threshold decide from graph and source-set size, ``1`` forces
        single-core, ``N > 1`` requests N workers.  Selective directions
        (backward / bidirectional) always stay single-core — they were
        chosen precisely because little work remains to split.

        When the engine carries a :class:`QueryCache`, the returned pair
        set is cached under ``(expression, max_length, sources, targets,
        graph version+token)`` — every parameter that can change the
        answer (``processes`` only changes the wall-clock, never the set,
        so it is deliberately not in the key).
        """
        expression = self.compile(query)
        sources_key = None if sources is None else frozenset(sources)
        targets_key = None if targets is None else frozenset(targets)
        # The version is read once, before evaluation: a mutation racing
        # the kernel must not let a result computed at version N be
        # stored — and later served — under version N+1.
        version = self.graph.version()
        if self.cache is not None:
            cached = self.cache.get(
                expression, max_length, version, "pairs",
                graph_token=self._graph_token, sources=sources_key,
                targets=targets_key, kind="pairs")
            if cached is not None:
                return cached
        result = self._pairs_computed(expression, sources_key, targets_key,
                                      max_length, processes)
        if self.cache is not None:
            self.cache.put(
                expression, max_length, version, "pairs",
                result, graph_token=self._graph_token, sources=sources_key,
                targets=targets_key, kind="pairs")
        return result

    def cached_pairs(self, query: Union[str, RegexExpr],
                     sources: Optional[frozenset] = None,
                     targets: Optional[frozenset] = None,
                     max_length: Optional[int] = None) -> Optional[frozenset]:
        """The cached :meth:`pairs` result, or ``None`` — pure O(lookup).

        Never dispatches a kernel; the service tier probes this in the
        event loop before paying an executor round trip.
        """
        if self.cache is None:
            return None
        expression = self.compile(query)
        return self.cache.get(
            expression, max_length, self.graph.version(), "pairs",
            graph_token=self._graph_token,
            sources=None if sources is None else frozenset(sources),
            targets=None if targets is None else frozenset(targets),
            kind="pairs")

    def _pairs_computed(self, expression: RegexExpr,
                        sources: Optional[frozenset],
                        targets: Optional[frozenset],
                        max_length: Optional[int],
                        processes: Optional[int]) -> frozenset:
        """The uncached :meth:`pairs` evaluation (see its docstring)."""
        from repro.engine.executor import endpoint_pairs
        from repro.graph.compact import (
            rpq_pairs_backward,
            rpq_pairs_bidirectional,
            rpq_pairs_compact,
        )
        from repro.rpq.evaluation import lower_to_constrained_query
        if max_length is None:
            constrained = lower_to_constrained_query(expression)
            if constrained is not None:
                merged = self._constrained_filters(constrained, sources,
                                                  targets)
                if merged is None:
                    return frozenset()
                merged_sources, merged_targets = merged
                diagnostics = self.preflight(constrained.label_expression)
                if diagnostics.empty:
                    # Pre-flight proved the answer is empty (empty
                    # language, or no accepting state reachable through
                    # labels the graph carries): no kernel dispatch.
                    return frozenset()
                dfa = diagnostics.dfa
                choice = self._direction_choice(constrained, merged_sources,
                                                merged_targets,
                                                states=dfa.num_states)
                if choice.direction == "bidirectional":
                    return rpq_pairs_bidirectional(
                        self.graph, dfa, merged_sources, merged_targets)
                if choice.direction == "backward":
                    return rpq_pairs_backward(
                        self.graph, dfa, merged_targets,
                        sources=merged_sources)
                parallelism = self._parallelism_choice(
                    merged_sources, processes, choice.direction)
                if parallelism.parallel:
                    return self._executor(parallelism).rpq_pairs(
                        dfa, sources=merged_sources,
                        targets=merged_targets)
                return rpq_pairs_compact(self.graph, dfa, merged_sources,
                                         targets=merged_targets)
        result = self.query(expression, strategy="automaton",
                            max_length=max_length)
        return endpoint_pairs(result.paths, expression, self.graph,
                              sources=sources, targets=targets)

    def pairs_batch(self, queries, sources: Optional[frozenset] = None,
                    targets: Optional[frozenset] = None,
                    max_length: Optional[int] = None,
                    processes: Optional[int] = None) -> list:
        """:meth:`pairs` for many expressions, amortizing one fan-out.

        Every query that lowers to a forward-direction constrained RPQ is
        compiled up front and evaluated in **one** pool dispatch over one
        shared snapshot — (query, shard) tasks interleave, so a batch of
        small sweeps still keeps every worker busy.  Queries that need
        another direction or the bounded fallback are answered through the
        ordinary :meth:`pairs` path.  Results keep the input order.
        """
        from repro.rpq.evaluation import lower_to_constrained_query
        expressions = [self.compile(query) for query in queries]
        results: list = [None] * len(expressions)
        fan_out = []  # (index, dfa) for the batched forward sweeps
        version = self.graph.version()
        if max_length is None and sources is None and targets is None:
            for index, expression in enumerate(expressions):
                if self.cache is not None:
                    cached = self.cache.get(
                        expression, None, version, "pairs",
                        graph_token=self._graph_token, kind="pairs")
                    if cached is not None:
                        results[index] = cached
                        continue
                constrained = lower_to_constrained_query(expression)
                if constrained is None or not constrained.label_only:
                    continue
                diagnostics = self.preflight(constrained.label_expression)
                if diagnostics.empty:
                    # Provably empty: answer inline, keep it out of the
                    # fan-out (zero kernel dispatch for this query).
                    results[index] = frozenset()
                    continue
                choice = self._direction_choice(
                    constrained, None, None,
                    states=diagnostics.dfa.num_states)
                if choice.direction == "forward":
                    fan_out.append((index, diagnostics.dfa))
        if fan_out:
            parallelism = self._parallelism_choice(None, processes)
            if parallelism.parallel:
                merged = self._executor(parallelism).rpq_pairs_batch(
                    [dfa for _, dfa in fan_out])
            else:
                from repro.graph.compact import rpq_pairs_compact
                merged = [rpq_pairs_compact(self.graph, dfa)
                          for _, dfa in fan_out]
            for (index, _), answer in zip(fan_out, merged):
                results[index] = answer
                if self.cache is not None:
                    self.cache.put(expressions[index], None, version,
                                   "pairs", answer,
                                   graph_token=self._graph_token,
                                   kind="pairs")
        for index, expression in enumerate(expressions):
            if results[index] is None:
                # Hand pairs() the compiled AST, not the source string —
                # the eligibility probe above already paid the parse.
                results[index] = self.pairs(expression, sources=sources,
                                            targets=targets,
                                            max_length=max_length,
                                            processes=processes)
        return results

    def query(self, query: Union[str, RegexExpr], strategy: str = "materialized",
              max_length: Optional[int] = None,
              limit: Optional[int] = None,
              processes: Optional[int] = None) -> QueryResult:
        """Run a query and return its :class:`QueryResult`.

        ``strategy`` is one of ``materialized`` (planned, set-at-a-time),
        ``streaming`` (lazy pipeline, respects ``limit`` early),
        ``automaton`` (per-path product BFS) or ``stack`` (the paper's
        section IV-B construction).

        ``processes > 1`` fans the ``automaton`` strategy out over
        first-edge-tail partitions (identical result set, merged by
        union); it is explicit-only here — materializing and pickling
        whole path sets is only worth it when the caller says so — and is
        ignored for the other strategies and for ``limit`` queries.
        """
        if strategy not in STRATEGIES:
            raise ExecutionError(
                "unknown strategy {!r}; expected one of {}".format(
                    strategy, STRATEGIES))
        from repro.analysis.query import analyze_expression
        expression = self.compile(query)
        bound = max_length if max_length is not None else self.default_max_length
        diagnostics = analyze_expression(expression, self.graph)
        if diagnostics.empty:
            # Structural pre-flight proved the language empty over this
            # graph (absent labels/vertices, empty literals, ...): skip
            # planning, caching and execution entirely.
            return QueryResult(paths=PathSet(), expression=expression,
                               strategy=strategy, max_length=bound,
                               elapsed=0.0, plan=None)
        cacheable = self.cache is not None and limit is None
        if cacheable:
            cached = self.cache.get(expression, bound, self.graph.version(),
                                    strategy, graph_token=self._graph_token)
            if cached is not None:
                return QueryResult(paths=cached, expression=expression,
                                   strategy=strategy, max_length=bound,
                                   elapsed=0.0, plan=None)
        plan = None
        if strategy == "materialized":
            planner = Planner(self.statistics(), max_length=bound,
                              optimize_joins=self.optimize)
            plan = planner.plan(expression)
        fan_out = (strategy == "automaton" and limit is None
                   and processes is not None and processes > 1)
        started = time.perf_counter()
        if fan_out:
            from repro.engine.planner import ParallelismChoice
            choice = ParallelismChoice(
                processes, processes,
                "explicit processes={}".format(processes))
            paths = self._executor(choice).generate_paths(expression, bound)
        else:
            paths = run_strategy(strategy, self.graph, expression, plan,
                                 bound, limit)
        elapsed = time.perf_counter() - started
        if cacheable:
            self.cache.put(expression, bound, self.graph.version(),
                           strategy, paths, graph_token=self._graph_token)
        return QueryResult(paths=paths, expression=expression,
                           strategy=strategy, max_length=bound,
                           elapsed=elapsed, plan=plan)

    def recognize(self, query: Union[str, RegexExpr], path: Path) -> bool:
        """Section IV-A recognition: is ``path`` in the query's language?"""
        expression = self.compile(query)
        return Recognizer(expression, self.graph).accepts(path)

    def project(self, query: Union[str, RegexExpr],
                max_length: Optional[int] = None,
                strategy: str = "automaton",
                description: str = "") -> BinaryProjection:
        """Section IV-C: run a query and project its paths to a binary edge set."""
        result = self.query(query, strategy=strategy, max_length=max_length)
        return result.projection(description=description)

    def __repr__(self) -> str:
        return "Engine<{!r}, default_max_length={}, optimize={}>".format(
            self.graph, self.default_max_length, self.optimize)
