"""Physical plan nodes for the materialized execution strategy.

A plan is a binary tree whose leaves scan edge sets (atom patterns or
literal path sets) and whose internal nodes combine child path sets with
the algebra's operations.  Because the concatenative join is associative,
a chain ``a1 . a2 . ... . an`` admits many trees with identical results but
very different intermediate sizes — the planner's job (matrix-chain style
dynamic programming in :mod:`repro.engine.planner`) is choosing among them.

Every node carries the planner's cardinality/cost annotations and renders
itself for ``EXPLAIN`` output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.regex.ast import Atom, Literal, RegexExpr

__all__ = [
    "PlanNode",
    "AtomScan",
    "LiteralScan",
    "EpsilonScan",
    "EmptyScan",
    "JoinPlan",
    "ProductPlan",
    "UnionPlan",
    "StarPlan",
]


@dataclass
class PlanNode:
    """Base plan node: estimated output rows and cumulative cost."""

    estimated_rows: float = 0.0
    estimated_cost: float = 0.0

    def children(self) -> Tuple["PlanNode", ...]:
        """Child plan nodes."""
        return ()

    def label(self) -> str:
        """One-line description used by :meth:`explain`."""
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        """An EXPLAIN-style indented tree with row/cost annotations."""
        pad = "  " * indent
        line = "{}{} (rows~{:.1f}, cost~{:.1f})".format(
            pad, self.label(), self.estimated_rows, self.estimated_cost)
        parts = [line]
        for child in self.children():
            parts.append(child.explain(indent + 1))
        return "\n".join(parts)

    def operator_count(self) -> int:
        """Number of plan nodes in this subtree."""
        return 1 + sum(child.operator_count() for child in self.children())


@dataclass
class AtomScan(PlanNode):
    """Leaf: resolve one set-builder pattern through the graph indices."""

    atom: Atom = None  # type: ignore[assignment]

    def label(self) -> str:
        return "AtomScan {}".format(self.atom)


@dataclass
class LiteralScan(PlanNode):
    """Leaf: a constant path set."""

    literal: Literal = None  # type: ignore[assignment]

    def label(self) -> str:
        return "LiteralScan {} paths".format(len(self.literal.path_set))


@dataclass
class EpsilonScan(PlanNode):
    """Leaf: the constant ``{epsilon}``."""

    def label(self) -> str:
        return "Epsilon"


@dataclass
class EmptyScan(PlanNode):
    """Leaf: the constant empty set."""

    def label(self) -> str:
        return "EmptySet"


@dataclass
class JoinPlan(PlanNode):
    """Binary concatenative hash-join of two child path sets."""

    left: PlanNode = None  # type: ignore[assignment]
    right: PlanNode = None  # type: ignore[assignment]

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return "Join"


@dataclass
class ProductPlan(PlanNode):
    """Binary concatenative product (all pairs, disjoint allowed)."""

    left: PlanNode = None  # type: ignore[assignment]
    right: PlanNode = None  # type: ignore[assignment]

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return "Product"


@dataclass
class UnionPlan(PlanNode):
    """N-ary set union of child path sets."""

    parts: Tuple[PlanNode, ...] = ()

    def children(self) -> Tuple[PlanNode, ...]:
        return self.parts

    def label(self) -> str:
        return "Union[{}]".format(len(self.parts))


@dataclass
class StarPlan(PlanNode):
    """Bounded Kleene fixpoint over the child's result."""

    inner: PlanNode = None  # type: ignore[assignment]

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.inner,)

    def label(self) -> str:
        return "Star (bounded fixpoint)"
