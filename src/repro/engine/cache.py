"""Query result caching keyed on the graph's mutation version.

Traversal workloads repeat queries (dashboards, recommendation batches), so
the engine supports an optional LRU result cache.  Correctness hinges on
invalidation: every :class:`MultiRelationalGraph` mutation bumps a version
counter, and cache keys embed it — any stale entry simply never matches
again and ages out of the LRU.

The cache stores whole immutable results — :class:`PathSet` for ``query()``
entries, frozen pair sets for ``pairs()`` entries (keyed apart by ``kind``).
Only full-result calls use it; ``limit`` queries bypass caching (a truncated
result is not reusable).

Key audit (PR 7)
----------------
The key must cover **every parameter that can change the result**.  PRs 3-6
added ``sources``/``targets`` endpoint filters to the pairs path, so the key
now embeds them (``None`` = unfiltered keeps its own slot).  Two parameters
are deliberately *not* in the key: ``processes`` (the fan-out merges to the
same answer set by construction — tests/test_parallel.py pins that) and the
traversal direction (derived from expression + filters + statistics, all of
which the key already covers through expression/filters/version).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, FrozenSet, Hashable, Optional, Tuple

from repro.concurrency import ordered_lock
from repro.regex.ast import RegexExpr

__all__ = ["QueryCache"]


class QueryCache:
    """A bounded LRU of ``(kind, expression, bound, filters, graph identity+version) -> result``.

    The key embeds a **per-graph token** besides the mutation version: one
    cache instance may be shared by engines over different graphs, and two
    graphs easily agree on ``version()`` (every fresh graph starts at the
    same counter) while holding different edges — without the token they
    would serve each other's results.

    All operations are thread-safe: the service tier's
    :class:`~repro.service.AsyncEngine` probes and fills one shared cache
    from multiple executor threads.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, Any]" = OrderedDict()
        # A leaf in the witness's lock hierarchy: nothing else is ever
        # acquired while a cache bucket operation holds this.
        self._lock = ordered_lock("engine.query_cache")
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(expression: RegexExpr, max_length: Optional[int],
             graph_version: int, strategy: str, graph_token,
             sources: Optional[FrozenSet[Hashable]],
             targets: Optional[FrozenSet[Hashable]],
             kind: str) -> Tuple:
        # Strategy is part of the key only to keep benchmark comparisons
        # honest; all strategies return equal sets, so sharing across them
        # would also be sound.  The token is NOT optional soundness-wise —
        # see the class docstring — and neither are the endpoint filters:
        # two pairs() calls differing only in sources/targets return
        # different sets, so each filter combination gets its own slot.
        sources = None if sources is None else frozenset(sources)
        targets = None if targets is None else frozenset(targets)
        return (kind, expression, max_length, graph_version, strategy,
                graph_token, sources, targets)

    def get(self, expression: RegexExpr, max_length: Optional[int],
            graph_version: int, strategy: str,
            graph_token=None,
            sources: Optional[FrozenSet[Hashable]] = None,
            targets: Optional[FrozenSet[Hashable]] = None,
            kind: str = "paths") -> Optional[Any]:
        """The cached result, or None; a hit refreshes LRU recency."""
        key = self._key(expression, max_length, graph_version, strategy,
                        graph_token, sources, targets, kind)
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def put(self, expression: RegexExpr, max_length: Optional[int],
            graph_version: int, strategy: str, result: Any,
            graph_token=None,
            sources: Optional[FrozenSet[Hashable]] = None,
            targets: Optional[FrozenSet[Hashable]] = None,
            kind: str = "paths") -> None:
        """Insert a result, evicting the least recently used beyond capacity."""
        key = self._key(expression, max_length, graph_version, strategy,
                        graph_token, sources, targets, kind)
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def stats(self) -> dict:
        """Hit/miss/occupancy counters (``Engine.cache_stats`` feeds on
        this shape for both of its caches)."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "entries": len(self._entries), "capacity": self.capacity}

    def clear(self) -> None:
        """Drop all entries and reset counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return "QueryCache<{}/{} entries, {} hits, {} misses>".format(
            len(self._entries), self.capacity, self.hits, self.misses)
