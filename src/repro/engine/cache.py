"""Query result caching keyed on the graph's mutation version.

Traversal workloads repeat queries (dashboards, recommendation batches), so
the engine supports an optional LRU result cache.  Correctness hinges on
invalidation: every :class:`MultiRelationalGraph` mutation bumps a version
counter, and cache keys embed it — any stale entry simply never matches
again and ages out of the LRU.

The cache stores whole :class:`PathSet` results (immutable, so sharing is
safe).  Only full-result strategies use it; ``limit`` queries bypass caching
(a truncated result is not reusable).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.core.pathset import PathSet
from repro.regex.ast import RegexExpr

__all__ = ["QueryCache"]


class QueryCache:
    """A bounded LRU of ``(expression, bound, graph identity+version) -> PathSet``.

    The key embeds a **per-graph token** besides the mutation version: one
    cache instance may be shared by engines over different graphs, and two
    graphs easily agree on ``version()`` (every fresh graph starts at the
    same counter) while holding different edges — without the token they
    would serve each other's results.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, PathSet]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _key(self, expression: RegexExpr, max_length: int,
             graph_version: int, strategy: str, graph_token) -> Tuple:
        # Strategy is part of the key only to keep benchmark comparisons
        # honest; all strategies return equal sets, so sharing across them
        # would also be sound.  The token is NOT optional soundness-wise —
        # see the class docstring.
        return (expression, max_length, graph_version, strategy, graph_token)

    def get(self, expression: RegexExpr, max_length: int,
            graph_version: int, strategy: str,
            graph_token=None) -> Optional[PathSet]:
        """The cached result, or None; a hit refreshes LRU recency."""
        key = self._key(expression, max_length, graph_version, strategy,
                        graph_token)
        result = self._entries.get(key)
        if result is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return result

    def put(self, expression: RegexExpr, max_length: int,
            graph_version: int, strategy: str, result: PathSet,
            graph_token=None) -> None:
        """Insert a result, evicting the least recently used beyond capacity."""
        key = self._key(expression, max_length, graph_version, strategy,
                        graph_token)
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def stats(self) -> dict:
        """Hit/miss/occupancy counters (``Engine.cache_stats`` feeds on
        this shape for both of its caches)."""
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._entries), "capacity": self.capacity}

    def clear(self) -> None:
        """Drop all entries and reset counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return "QueryCache<{}/{} entries, {} hits, {} misses>".format(
            len(self._entries), self.capacity, self.hits, self.misses)
