"""The parallel fan-out/merge query executor over vertex-range shards.

One :class:`ParallelExecutor` binds a graph to a persistent
``multiprocessing`` worker pool and fans the embarrassingly parallel
all-sources / batch kernels out over the vertex-range partition of
:mod:`repro.graph.sharding`:

* **RPQ sweeps** (:meth:`ParallelExecutor.rpq_pairs`) — each worker runs
  the stamped product-BFS for the sources its shard owns (over the shared
  full CSR; a sweep's cone crosses shard boundaries, its *seeds* do not)
  and the per-shard pair sets merge by union — order-free, deterministic.
* **BFS batches** (:meth:`ParallelExecutor.bfs_distances`) — the source
  batch splits evenly, each worker runs the vectorized per-source kernel,
  distance maps merge disjointly.
* **Pagerank power iteration** (:meth:`ParallelExecutor.pagerank`) — the
  one *scatter-style* kernel: each worker reads **only its own shard's
  rows** (cross-shard edges live on the source side), returning a partial
  rank-mass vector per iteration; the master sums partials in shard order,
  so the merged floats are bit-for-bit identical to the serial fallback.

Worker state and fork safety
----------------------------
Workers never pickle a graph.  In the default **inline** mode the pool is
forked *after* the parent stages the snapshot payload in a module-level
registry, so children inherit the CSR arrays copy-on-write (zero copy, and
mmap-backed arrays stay shared through the page cache); every task carries
the executor's registry token, so a pool repopulated after another
executor forked cannot adopt the wrong payload.  In **file** mode
(``shard_dir=``) tasks carry only a directory + version and workers lazily
``mmap`` the shard files they are asked about — each worker faults in just
the rows it owns, and the mode works under any multiprocessing start
method.  Mutating the graph invalidates stale state by ``version()``: the
inline pool is re-forked over a fresh payload, the file mode rewrites the
shard directory and keeps the pool.

Serial fallback
---------------
``processes=1``, a tiny graph (below ``min_edges``), a single shard, or a
platform without ``fork`` (in inline mode) all run the *same* per-shard
tasks in-process through the same merge — the parallel path can never
change an answer, only its wall-clock.  The planner's
:meth:`~repro.engine.planner.Planner.choose_parallelism` decides when the
fan-out is worth it; see ``docs/sharding.md``.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from array import array
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from repro.concurrency import ordered_lock, release_resource, track_resource
from repro.errors import (
    AlgorithmError,
    ConvergenceError,
    ExecutionError,
    WorkerPoolError,
)
from repro.faults import worker_fault_point
from repro.graph.compact import (
    HAVE_NUMPY,
    adjacency_snapshot,
    digraph_snapshot,
    rpq_pairs_on_snapshot,
)
from repro.graph.sharding import (
    live_ids_in_range,
    row_degrees,
    scatter_rank_mass,
    shard_ranges,
    sharded_snapshot,
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

__all__ = ["ParallelExecutor", "PARALLEL_MIN_EDGES", "fork_available"]

#: Below this many edges the fan-out's fixed costs (task pickling, pool
#: scheduling) outweigh any parallel win and every call runs serially.
PARALLEL_MIN_EDGES = 512

#: Default worker count: the machine's cores, capped — query fan-out past
#: this sees diminishing returns against merge and pickling costs.
_MAX_DEFAULT_WORKERS = 8

#: Registry of live executors' fork payloads, keyed by executor token.
#: Children inherit the whole dict at fork time; tasks resolve their own
#: token, so concurrent executors (and late pool repopulation) stay safe.
_FORK_PAYLOADS: Dict[int, Dict[str, object]] = {}

#: Worker-side cache of lazily opened shard/full snapshot files, keyed by
#: ``(directory, version, which)``; stale versions of the same directory
#: are dropped as fresh ones arrive.
_FILE_CACHE: Dict[Tuple, object] = {}

_EXECUTOR_TOKENS = itertools.count(1)


def fork_available() -> bool:
    """True when the zero-copy inline worker mode can be used."""
    import multiprocessing
    return "fork" in multiprocessing.get_all_start_methods()


# ----------------------------------------------------------------------
# Worker side (top-level so tasks resolve by name under any start method)
# ----------------------------------------------------------------------

def _resolve_payload(ctx: Dict) -> Dict[str, object]:
    payload = _FORK_PAYLOADS.get(ctx["token"])
    if payload is None or payload["version"] != ctx["version"]:
        raise ExecutionError(
            "worker holds no payload for executor token {} at version {} "
            "(stale pool?)".format(ctx["token"], ctx["version"]))
    return payload


def _open_cached(directory: str, version: int, num_shards: int, which):
    """Worker-side lazy mmap of one shard (or the full snapshot) file.

    The cache key carries the shard *layout* (``num_shards``) besides the
    version: a directory rewritten with a different shard count at the
    same graph version must never serve the old layout's row slices (a
    2-shard ``shard-0001`` owns different rows than a 4-shard one).
    """
    from repro.storage.snapshots import (
        open_adjacency_snapshot,
        open_shard,
        read_shard_manifest,
    )
    key = (directory, version, num_shards, which)
    cached = _FILE_CACHE.get(key)
    if cached is not None:
        return cached
    manifest = read_shard_manifest(directory)
    if manifest["version"] != version or \
            manifest["num_shards"] != num_shards:
        raise ExecutionError(
            "shard directory {} holds version {} x {} shards, task wants "
            "version {} x {} shards".format(
                directory, manifest["version"], manifest["num_shards"],
                version, num_shards))
    if which == "full":
        if not manifest.get("full"):
            raise ExecutionError(
                "shard directory {} has no full snapshot file".format(
                    directory))
        opened, _ = open_adjacency_snapshot(
            os.path.join(directory, manifest["full"]), mmap=True)
        if opened.version != version:
            raise ExecutionError(
                "{}/{} is at version {}, task wants {} (directory "
                "partially rewritten?)".format(
                    directory, manifest["full"], opened.version, version))
    else:
        opened, _ = open_shard(directory, which, mmap=True)
    for stale in [k for k in _FILE_CACHE
                  if k[0] == directory and k[1:3] != (version, num_shards)]:
        del _FILE_CACHE[stale]
    _FILE_CACHE[key] = opened
    return opened


def _full_snapshot(ctx: Dict):
    if ctx["mode"] == "files":
        return _open_cached(ctx["dir"], ctx["version"], ctx["shards"],
                            "full")
    return _resolve_payload(ctx)["snapshot"]


def _shard_snapshot(ctx: Dict, index: int):
    if ctx["mode"] == "files":
        return _open_cached(ctx["dir"], ctx["version"], ctx["shards"],
                            index)
    return _resolve_payload(ctx)["sharded"].shards[index]


def _run_task(task):
    """Execute one fan-out task; runs identically in-pool and in-process.

    The ``pool.task`` fault site fires only inside a forked worker (the
    plan pins the arming pid), so the serial fallback re-running these
    very tasks in the parent cannot be killed by the fault it is healing.
    """
    worker_fault_point("pool.task")
    ctx, kind, args = task
    if kind == "rpq":
        dfa, source_spec, targets = args
        snapshot = _full_snapshot(ctx)
        if source_spec[0] == "range":
            source_ids = live_ids_in_range(snapshot, source_spec[1],
                                           source_spec[2])
        else:
            source_ids = source_spec[1]
        return rpq_pairs_on_snapshot(snapshot, dfa, source_ids=source_ids,
                                     targets=targets)
    if kind == "scatter":
        index, lo, hi, coefficients = args
        shard = _shard_snapshot(ctx, index)
        return scatter_rank_mass(shard, lo, hi, coefficients)
    if kind == "bfs":
        sources = args
        dsnap = _resolve_payload(ctx)["digraph"]
        return {source: dsnap.bfs_distances(source) for source in sources}
    if kind == "paths":
        expression, max_length, tails = args
        from repro.automata.generator import generate_paths
        graph = _resolve_payload(ctx)["graph"]
        return generate_paths(graph, expression, max_length,
                              first_edge_tails=tails)
    raise ExecutionError("unknown parallel task kind {!r}".format(kind))


# ----------------------------------------------------------------------
# Master side
# ----------------------------------------------------------------------

def _chunks(items: List, parts: int) -> List[List]:
    """Split ``items`` into up to ``parts`` contiguous near-equal chunks."""
    parts = max(1, min(parts, len(items)))
    size, extra = divmod(len(items), parts)
    out = []
    cursor = 0
    for index in range(parts):
        step = size + (1 if index < extra else 0)
        if step:
            out.append(items[cursor:cursor + step])
        cursor += step
    return out


class ParallelExecutor:
    """A persistent fan-out/merge pool bound to one graph.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.graph.MultiRelationalGraph` (RPQ sweeps,
        pagerank) or :class:`~repro.algorithms.digraph.DiGraph` (BFS
        batches).
    processes:
        Worker count; ``None`` uses ``os.cpu_count()`` (capped — see
        ``_MAX_DEFAULT_WORKERS``), ``1`` forces the serial fallback.
    num_shards:
        Vertex-range shard count (defaults to ``processes``).
    min_edges:
        Graphs below this edge count always run serially.
    shard_dir:
        Switch to file mode: shard snapshot files are written to (and
        refreshed in) this directory and workers mmap them lazily instead
        of inheriting forked memory.
    max_task_retries:
        How many times a fan-out whose worker died (or stalled past
        ``stall_timeout``) is retried on a freshly respawned pool before
        the executor gives up on parallelism and runs the same tasks
        in-process.  Every fan-out is a pure function of its task list
        and the merge is deterministic, so a retry — parallel or serial —
        can only change wall-clock, never the answer.
    stall_timeout:
        Seconds a fan-out may make no progress before it is declared
        wedged (a worker hung in a kernel).  ``None`` disables the watch
        (then only worker *death* triggers self-healing).
    """

    def __init__(self, graph, processes: Optional[int] = None,
                 num_shards: Optional[int] = None,
                 min_edges: int = PARALLEL_MIN_EDGES,
                 shard_dir: Optional[str] = None,
                 max_task_retries: int = 2,
                 stall_timeout: Optional[float] = 60.0):
        cpu = os.cpu_count() or 1
        self.graph = graph
        self.processes = max(1, processes if processes is not None
                             else min(cpu, _MAX_DEFAULT_WORKERS))
        self.num_shards = max(1, num_shards if num_shards is not None
                              else self.processes)
        self.min_edges = min_edges
        self.shard_dir = shard_dir
        self.max_task_retries = max(0, max_task_retries)
        self.stall_timeout = stall_timeout
        # Self-healing telemetry (see stats()): how often workers died
        # and were respawned, fan-outs were retried, and the serial
        # fallback had to finish a fan-out.
        self.workers_respawned = 0
        self.tasks_retried = 0
        self.serial_fallbacks = 0
        self._token = next(_EXECUTOR_TOKENS)
        self._pool = None
        self._pool_key: Optional[Tuple] = None
        self._pool_pids: FrozenSet[int] = frozenset()
        self._pool_leak_token: Optional[int] = None
        # Guards pool spawn/teardown: the service tier can drive a close
        # (engine swap or shutdown) while a fan-out respawns the pool.
        # Witness-ordered below engine.parallel (the Engine's swap lock).
        self._pool_lock = ordered_lock("engine.pool")
        self._files_version: Optional[int] = None
        # Shard count actually written to shard_dir: shard_ranges clamps
        # to the vertex count, so this can be lower than num_shards.
        self._files_shards: Optional[int] = None
        # (version, num_shards) -> source ranges over the live snapshot
        # view: the O(labels*V) degree pass only re-runs after mutations.
        self._range_cache: Optional[Tuple] = None

    # -- lifecycle -----------------------------------------------------

    @property
    def mode(self) -> str:
        """``files``, ``inline`` or ``serial`` (no fork, no shard_dir)."""
        if self.shard_dir is not None:
            return "files"
        return "inline" if fork_available() else "serial"

    def describe(self) -> str:
        """One line for EXPLAIN output."""
        return "{} process(es) x {} shard(s), {} mode".format(
            self.processes, self.num_shards, self.mode)

    #: How long a graceful shutdown waits for in-flight tasks before
    #: falling back to ``terminate()``.
    SHUTDOWN_TIMEOUT = 5.0

    def close(self, timeout: Optional[float] = None) -> None:
        """Drain the pool and drop the staged fork payload (idempotent).

        Workers are asked to finish their current task (``Pool.close`` +
        ``join``); only when the join has not completed after ``timeout``
        seconds (default :data:`SHUTDOWN_TIMEOUT`) are they terminated.
        Going straight to ``terminate()`` used to kill workers mid-task,
        which under heavy load leaked semaphores and left zombie
        processes behind a server shutdown.
        """
        self._teardown_pool(timeout=timeout)
        _FORK_PAYLOADS.pop(self._token, None)

    def healthy(self) -> bool:
        """True when the executor can serve: no live pool, or an intact one.

        An executor with no pool is healthy by definition — the next
        fan-out forks a fresh one (and the serial fallback needs no pool
        at all).
        """
        pool = self._pool
        return pool is None or not self._pool_damaged(pool)

    def stats(self) -> Dict[str, object]:
        """Self-healing telemetry, JSON-ready (surfaced via ``/stats``)."""
        return {
            "mode": self.mode,
            "processes": self.processes,
            "pool_live": self._pool is not None,
            "healthy": self.healthy(),
            "workers_respawned": self.workers_respawned,
            "tasks_retried": self.tasks_retried,
            "serial_fallbacks": self.serial_fallbacks,
        }

    def _teardown_pool(self, timeout: Optional[float] = None) -> None:
        with self._pool_lock:
            self._teardown_pool_locked(timeout)

    def _teardown_pool_locked(self, timeout: Optional[float] = None) -> None:  # guarded-by: _pool_lock
        pool, self._pool, self._pool_key = self._pool, None, None
        self._pool_pids = frozenset()
        release_resource(self._pool_leak_token)
        self._pool_leak_token = None
        if pool is None:
            return
        timeout = self.SHUTDOWN_TIMEOUT if timeout is None else timeout
        pool.close()
        # Pool.join has no timeout parameter: join from a helper thread
        # and escalate to terminate() only if the drain outlives the
        # budget (a worker wedged in a kernel, or an abandoned map).
        joiner = threading.Thread(target=pool.join, daemon=True)
        joiner.start()
        joiner.join(timeout)
        if joiner.is_alive():
            pool.terminate()
            joiner.join(self.SHUTDOWN_TIMEOUT)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown guard
        try:
            self.close()
        except Exception:
            pass

    # -- state staging -------------------------------------------------

    def _stage_payload(self, need: str, version: int) -> Dict:
        """(Re)build the master-side payload for ``need`` at ``version``.

        The payload accumulates what past calls needed, so a pool rebuilt
        for pagerank still serves RPQ tasks without another rebuild.
        """
        payload = _FORK_PAYLOADS.get(self._token)
        if payload is None or payload["version"] != version:
            payload = {"version": version}
        if need == "rpq" and "snapshot" not in payload:
            payload["snapshot"] = adjacency_snapshot(self.graph)
        if need == "scatter" and "sharded" not in payload:
            payload["sharded"] = sharded_snapshot(self.graph, self.num_shards)
        if need == "bfs" and "digraph" not in payload:
            payload["digraph"] = digraph_snapshot(self.graph)
        if need == "paths" and "graph" not in payload:
            payload["graph"] = self.graph
        _FORK_PAYLOADS[self._token] = payload
        return payload

    def _ensure_files(self, version: int) -> None:
        """Refresh the shard directory when the graph has moved past it.

        A directory that is already at (version, shard count) — spilled
        by ``repro db shard`` or a previous executor — is adopted as-is;
        only staleness triggers the O(V + E) fold-and-rewrite.
        """
        from repro.storage.snapshots import (
            read_shard_manifest,
            write_sharded_snapshots,
        )
        if self._files_version == version:
            return
        manifest = None
        try:
            manifest = read_shard_manifest(self.shard_dir)
        except Exception:
            pass
        if manifest is None or manifest["version"] != version \
                or manifest["num_shards"] != min(
                    self.num_shards, max(manifest["num_vertices"], 1)):
            manifest = write_sharded_snapshots(
                self.shard_dir, sharded_snapshot(self.graph, self.num_shards))
        self._files_version = version
        self._files_shards = manifest["num_shards"]

    def _context(self, need: str, version: int) -> Dict:
        if self.mode == "files" and need in ("rpq", "scatter"):
            self._ensure_files(version)
            # The *written* shard count: shard_ranges clamps to the vertex
            # count, so a 3-vertex graph under processes=4 still works.
            return {"mode": "files", "dir": self.shard_dir,
                    "version": version, "shards": self._files_shards}
        self._stage_payload(need, version)
        return {"mode": "inline", "token": self._token, "version": version}

    #: How often the self-healing poll wakes to look for dead workers.
    _POLL_INTERVAL = 0.05

    def _map(self, need: str, ctx: Dict, tasks: List, num_edges: int) -> List:
        """Run tasks through the pool, or in-process when serial is right.

        The parallel path self-heals: a fan-out whose worker died (or
        that stalled past ``stall_timeout``) tears the pool down,
        respawns it, and retries the *whole* task list up to
        ``max_task_retries`` times; when even that fails, the same tasks
        run in-process through the same deterministic merge.  Lost work
        is therefore only ever wall-clock — a fan-out either returns the
        exact same result as the serial path or keeps failing loudly.
        """
        parallel = (self.processes > 1 and len(tasks) > 1
                    and num_edges >= self.min_edges)
        if parallel and ctx["mode"] == "inline" and not fork_available():
            parallel = False
        if not parallel:
            return [_run_task(task) for task in tasks]
        for attempt in range(self.max_task_retries + 1):
            self._ensure_pool(ctx)
            try:
                return self._map_once(tasks)
            except WorkerPoolError:
                self.workers_respawned += 1
                if attempt < self.max_task_retries:
                    self.tasks_retried += len(tasks)
                # A dead or wedged pool drains slowly at best: give the
                # close a short grace, then terminate.
                self._teardown_pool(timeout=self._POLL_INTERVAL * 4)
        self.serial_fallbacks += 1
        return [_run_task(task) for task in tasks]

    def _map_once(self, tasks: List) -> List:
        """One pool fan-out, watched for worker death and stalls."""
        import multiprocessing
        pool = self._pool
        result = pool.map_async(_run_task, tasks)
        deadline = (None if self.stall_timeout is None
                    else time.monotonic() + self.stall_timeout)
        while True:
            try:
                return result.get(self._POLL_INTERVAL)
            except multiprocessing.TimeoutError:
                pass
            if self._pool_damaged(pool):
                raise WorkerPoolError(
                    "a pool worker died mid-task (fan-out of {} task(s) "
                    "lost)".format(len(tasks)))
            if deadline is not None and time.monotonic() > deadline:
                raise WorkerPoolError(
                    "pool fan-out of {} task(s) stalled past {:.1f}s"
                    .format(len(tasks), self.stall_timeout))

    def _pool_damaged(self, pool) -> bool:
        """True when any worker died since this pool was forked.

        ``Pool`` quietly repopulates dead workers (fresh pids, exitcode
        None again) but the task the dead worker held is lost forever,
        so both signals matter: an exitcode catches a death before
        repopulation, a pid-set change catches it after.
        """
        workers = list(pool._pool)
        if any(worker.exitcode is not None for worker in workers):
            return True
        return {worker.pid for worker in workers} != self._pool_pids

    def _ensure_pool(self, ctx: Dict) -> None:
        """Fork (or keep) the worker pool matching ``ctx``.

        File-mode pools survive graph mutations (workers resolve versions
        per task); inline pools are re-forked whenever the staged payload
        changes, because children hold a copy-on-write image frozen at
        fork time.
        """
        import multiprocessing
        if ctx["mode"] == "files":
            key: Tuple = ("files",)
        else:
            payload = _FORK_PAYLOADS[self._token]
            key = ("inline", ctx["version"], frozenset(payload))
        with self._pool_lock:
            if self._pool is not None and self._pool_key == key:
                return
            self._teardown_pool_locked()
            context = multiprocessing.get_context(
                "fork" if fork_available() else None)
            self._pool = context.Pool(self.processes)
            self._pool_leak_token = track_resource(
                "worker-pool", "{} process(es)".format(self.processes))
            self._pool_key = key
            self._pool_pids = frozenset(
                worker.pid for worker in self._pool._pool)

    def _source_ranges(self, snapshot, version: int):
        """Out-degree-balanced source ranges over the live snapshot view,
        memoized per (version, shard count)."""
        key = (version, self.num_shards)
        if self._range_cache is not None and self._range_cache[0] == key:
            return self._range_cache[1]
        ranges = shard_ranges(row_degrees(snapshot), self.num_shards)
        self._range_cache = (key, ranges)
        return ranges

    # -- kernels -------------------------------------------------------

    def rpq_pairs(self, dfa, sources: Optional[Iterable[Hashable]] = None,
                  targets: Optional[Iterable[Hashable]] = None
                  ) -> FrozenSet[Tuple[Hashable, Hashable]]:
        """All-sources (or batch-source) RPQ pairs, fanned out and unioned."""
        return self.rpq_pairs_batch([dfa], sources=sources,
                                    targets=targets)[0]

    def rpq_pairs_batch(self, dfas: List,
                        sources: Optional[Iterable[Hashable]] = None,
                        targets: Optional[Iterable[Hashable]] = None
                        ) -> List[FrozenSet[Tuple[Hashable, Hashable]]]:
        """One fan-out for many compiled queries over one snapshot.

        The batch amortizes pool setup and snapshot staging: every
        (query, shard) pair becomes one task in a single ``pool.map``, so
        a dashboard's expression batch keeps all workers busy even when
        individual queries are small.  Results keep the input order.
        """
        version = self.graph.version()
        ctx = self._context("rpq", version)
        if ctx["mode"] == "files":
            sharded = sharded_snapshot(self.graph, self.num_shards)
            vertex_ids = sharded.vertex_ids
            ranges = sharded.ranges
            num_edges = sharded.num_edges
        else:
            snapshot = _FORK_PAYLOADS[self._token]["snapshot"]
            vertex_ids = snapshot.vertex_ids
            ranges = self._source_ranges(snapshot, version)
            num_edges = snapshot.num_edges
        if sources is None:
            specs = [("range", lo, hi) for lo, hi in ranges if hi > lo]
        else:
            ids = sorted({vertex_ids[v] for v in sources if v in vertex_ids})
            specs = [("ids", chunk) for chunk in _chunks(ids, self.num_shards)]
        if targets is not None:
            targets = frozenset(targets)
        if not specs:
            return [frozenset() for _ in dfas]
        tasks = [(ctx, "rpq", (dfa, spec, targets))
                 for dfa in dfas for spec in specs]
        results = self._map("rpq", ctx, tasks, num_edges)
        merged = []
        per_query = len(specs)
        for index in range(len(dfas)):
            block = results[index * per_query:(index + 1) * per_query]
            merged.append(frozenset().union(*block))
        return merged

    def bfs_distances(self, sources: Iterable[Hashable]
                      ) -> Dict[Hashable, Dict[Hashable, int]]:
        """``{source: {vertex: hops}}`` for a batch of BFS sources.

        The executor must be bound to a :class:`DiGraph`; sources split
        evenly across workers (each BFS costs the whole graph, so balance
        is by count) and the per-source maps merge disjointly.  Unknown
        source vertices raise exactly as ``DiGraph.bfs_distances`` would —
        a batch wrapper must not silently shrink its result.  Without
        numpy the batch runs serially through the graph's own kernel.
        """
        from repro.errors import VertexNotFoundError
        source_list = list(sources)
        for source in source_list:
            if not self.graph.has_vertex(source):
                raise VertexNotFoundError(source)
        if not HAVE_NUMPY:
            return {s: self.graph.bfs_distances(s) for s in source_list}
        version = self.graph.version()
        ctx = self._context("bfs", version)
        tasks = [(ctx, "bfs", chunk)
                 for chunk in _chunks(source_list, self.processes)]
        if not tasks:
            return {}
        results = self._map("bfs", ctx, tasks, self.graph.size())
        merged: Dict[Hashable, Dict[Hashable, int]] = {}
        for block in results:
            merged.update(block)
        return merged

    def generate_paths(self, expression, max_length: int):
        """The ``automaton`` strategy fanned out over first-edge tails.

        Every accepted path has a unique first edge, so partitioning the
        *initial* expansion by the first edge's tail partitions the result
        set; workers run the unrestricted product BFS from there and the
        path sets merge by union.  Serial fallback returns the plain
        single-process evaluation (identical by construction).
        """
        from repro.automata.generator import generate_paths
        from repro.core.pathset import PathSet
        version = self.graph.version()
        ctx = self._context("paths", version)
        vertices = sorted(self.graph.vertices(), key=repr)
        chunks = [frozenset(chunk)
                  for chunk in _chunks(vertices, self.processes)]
        if len(chunks) <= 1:
            return generate_paths(self.graph, expression, max_length)
        tasks = [(ctx, "paths", (expression, max_length, chunk))
                 for chunk in chunks]
        results = self._map("paths", ctx, tasks, self.graph.size())
        merged = frozenset().union(*(r.paths for r in results))
        return PathSet(merged)

    def pagerank(self, damping: float = 0.85,
                 personalization: Optional[Dict[Hashable, float]] = None,
                 max_iterations: int = 200,
                 tolerance: float = 1.0e-10) -> Dict[Hashable, float]:
        """Label-blind pagerank over the multi-relational graph's shards.

        Same semantics as :func:`repro.algorithms.pagerank.pagerank` with
        every edge (any label) weighted 1: damped walk, dangling-mass
        redistribution, optional personalization, L1 convergence scaled by
        n, :class:`ConvergenceError` at the iteration cap.  Each iteration
        fans one scatter task per shard (workers read only their own rows)
        and sums the partial mass vectors in shard order — serial and
        parallel runs produce bit-identical ranks.
        """
        if not 0.0 <= damping <= 1.0:
            raise AlgorithmError("damping must be within [0, 1]")
        version = self.graph.version()
        ctx = self._context("scatter", version)
        sharded = sharded_snapshot(self.graph, self.num_shards)
        n = sharded.num_vertices
        if n == 0:
            return {}
        vertex_of = sharded.vertex_of
        if personalization is None:
            teleport = [1.0 / n] * n
        else:
            total = float(sum(personalization.values()))
            if total <= 0.0:
                raise AlgorithmError(
                    "personalization must have positive total mass")
            teleport = [personalization.get(v, 0.0) / total
                        for v in vertex_of]
        degrees = sharded.degrees
        ranges = sharded.ranges
        num_edges = sharded.num_edges
        ranks = list(teleport)
        for _ in range(max_iterations):
            previous = ranks
            coefficients = [
                damping * previous[v] / degrees[v] if degrees[v] else 0.0
                for v in range(n)]
            dangling_mass = sum(previous[v] for v in range(n)
                                if not degrees[v])
            # array('d') slices pickle as flat buffers — the per-iteration
            # task payloads stay a fraction of the scatter work they buy.
            tasks = [(ctx, "scatter",
                      (index, lo, hi, array("d", coefficients[lo:hi])))
                     for index, (lo, hi) in enumerate(ranges)]
            partials = self._map("scatter", ctx, tasks, num_edges)
            base = damping * dangling_mass + (1.0 - damping)
            ranks = self._merge_mass(partials, teleport, base, n)
            if self._l1_delta(ranks, previous, n) < n * tolerance:
                return dict(zip(vertex_of, ranks))
        raise ConvergenceError("pagerank", max_iterations, tolerance)

    @staticmethod
    def _merge_mass(partials: List[List[float]], teleport: List[float],
                    base: float, n: int) -> List[float]:
        """Sum shard partials in shard order, then add the teleport term.

        numpy only accelerates the element-wise adds; the addition order is
        the same as the scalar fallback's, so both produce identical bits.
        """
        if _np is not None:
            accumulated = _np.asarray(partials[0], dtype=_np.float64)
            for partial in partials[1:]:
                accumulated = accumulated + _np.asarray(partial,
                                                        dtype=_np.float64)
            accumulated = accumulated + base * _np.asarray(
                teleport, dtype=_np.float64)
            return accumulated.tolist()
        ranks = list(partials[0])
        for partial in partials[1:]:
            for v in range(n):
                ranks[v] += partial[v]
        for v in range(n):
            ranks[v] += base * teleport[v]
        return ranks

    @staticmethod
    def _l1_delta(ranks: List[float], previous: List[float], n: int) -> float:
        if _np is not None:
            return float(_np.abs(_np.asarray(ranks)
                                 - _np.asarray(previous)).sum())
        return sum(abs(ranks[v] - previous[v]) for v in range(n))

    def __repr__(self) -> str:
        return "ParallelExecutor<{}, pool={}>".format(
            self.describe(), "live" if self._pool is not None else "idle")
