"""Algebraic rewrite rules for regular path expressions.

:meth:`RegexExpr.simplified` handles local identities (units, zeros,
flattening, star idempotence).  This module adds the *global* rewrites a
query optimizer wants, each justified by an algebraic law of section II:

* :func:`fold_literals` — joins/products/unions of constant path sets are
  computed at rewrite time (constant folding; literals are
  graph-independent, so this is always sound),
* :func:`distribute_joins` — ``(A U B) >< C  ->  (A >< C) U (B >< C)``
  (distributivity), which exposes per-branch selectivity to the planner,
* :func:`factor_unions` — the inverse: ``(A >< C) U (B >< C) -> (A U B) >< C``
  when branches share a prefix or suffix, shrinking repeated work,
* :func:`normalize` — simplification + literal folding to a fixpoint, the
  default pipeline the engine can run before planning.

Every rewrite preserves the expression's language; the property tests
evaluate original vs rewritten on random graphs to enforce that.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.core.pathset import PathSet
from repro.regex.ast import (
    EMPTY,
    EPSILON,
    Atom,
    Empty,
    Epsilon,
    Join,
    Literal,
    Product,
    RegexExpr,
    Repeat,
    Star,
    Union,
)

__all__ = ["fold_literals", "distribute_joins", "factor_unions", "normalize"]


def _rebuild(expr: RegexExpr, rewrite: Callable[[RegexExpr], RegexExpr]) -> RegexExpr:
    """Apply ``rewrite`` bottom-up to every node."""
    if isinstance(expr, Union):
        return rewrite(Union(tuple(_rebuild(p, rewrite) for p in expr.parts)))
    if isinstance(expr, Join):
        return rewrite(Join(tuple(_rebuild(p, rewrite) for p in expr.parts)))
    if isinstance(expr, Product):
        return rewrite(Product(tuple(_rebuild(p, rewrite) for p in expr.parts)))
    if isinstance(expr, Star):
        return rewrite(Star(_rebuild(expr.inner, rewrite)))
    if isinstance(expr, Repeat):
        return rewrite(Repeat(_rebuild(expr.inner, rewrite),
                              expr.minimum, expr.maximum))
    return rewrite(expr)


def _is_constant(expr: RegexExpr) -> bool:
    """True for nodes whose language is graph-independent and finite."""
    return isinstance(expr, (Literal, Epsilon, Empty))


def _constant_value(expr: RegexExpr) -> PathSet:
    if isinstance(expr, Literal):
        return expr.path_set
    if isinstance(expr, Epsilon):
        return PathSet.epsilon()
    return PathSet.empty()


def fold_literals(expression: RegexExpr) -> RegexExpr:
    """Compute constant sub-expressions now (joins/products/unions of literals).

    Only *adjacent* constant operands are folded inside joins/products
    (associativity allows grouping neighbours; reordering would not be
    sound since the operations are non-commutative).
    """

    def fold(expr: RegexExpr) -> RegexExpr:
        if isinstance(expr, Union):
            constants = [p for p in expr.parts if _is_constant(p)]
            others = [p for p in expr.parts if not _is_constant(p)]
            if len(constants) >= 2:
                merged = PathSet.empty()
                for part in constants:
                    merged = merged | _constant_value(part)
                folded = Literal(merged) if merged else EMPTY
                return Union(tuple(others) + (folded,)) if others else folded
            return expr
        if isinstance(expr, (Join, Product)):
            combine = PathSet.join if isinstance(expr, Join) else PathSet.product
            parts: List[RegexExpr] = []
            for part in expr.parts:
                if (_is_constant(part) and parts
                        and _is_constant(parts[-1])):
                    merged = combine(_constant_value(parts[-1]),
                                     _constant_value(part))
                    # An empty constant annihilates the whole join/product.
                    parts[-1] = Literal(merged) if merged else EMPTY
                    if not merged:
                        return EMPTY
                else:
                    parts.append(part)
            if len(parts) == 1:
                return parts[0]
            if len(parts) != len(expr.parts):
                return type(expr)(tuple(parts))
            return expr
        return expr

    return _rebuild(expression, fold).simplified()


def distribute_joins(expression: RegexExpr) -> RegexExpr:
    """Distribute joins (and products) over immediate union operands.

    ``(A U B) >< C -> (A >< C) U (B >< C)`` and symmetrically on the right.
    Only the first union operand is expanded per pass (full expansion is
    exponential); call repeatedly or via :func:`normalize` if deeper
    expansion is wanted.
    """

    def distribute(expr: RegexExpr) -> RegexExpr:
        if not isinstance(expr, (Join, Product)):
            return expr
        node_type = type(expr)
        for position, part in enumerate(expr.parts):
            if isinstance(part, Union):
                prefix = expr.parts[:position]
                suffix = expr.parts[position + 1:]
                branches = tuple(
                    node_type(prefix + (branch,) + suffix).simplified()
                    for branch in part.parts)
                return Union(branches)
        return expr

    return _rebuild(expression, distribute).simplified()


def factor_unions(expression: RegexExpr) -> RegexExpr:
    """Factor shared prefixes/suffixes out of unions of joins.

    ``(A >< C) U (B >< C) -> (A U B) >< C`` — the planner then evaluates the
    shared operand once.  Prefix factoring is tried first, then suffix.
    """

    def split(part: RegexExpr) -> Tuple[RegexExpr, ...]:
        if isinstance(part, Join):
            return part.parts
        return (part,)

    def factor(expr: RegexExpr) -> RegexExpr:
        if not isinstance(expr, Union) or len(expr.parts) < 2:
            return expr
        sequences = [split(p) for p in expr.parts]
        # Longest common prefix across all branches.
        prefix_length = 0
        while all(len(s) > prefix_length for s in sequences):
            heads = {s[prefix_length] for s in sequences}
            if len(heads) != 1:
                break
            prefix_length += 1
        # Leave at least one element per branch un-factored.
        while prefix_length > 0 and any(len(s) == prefix_length for s in sequences):
            prefix_length -= 1
        if prefix_length > 0:
            shared = sequences[0][:prefix_length]
            rests = tuple(
                Join(s[prefix_length:]) if len(s) - prefix_length > 1
                else s[prefix_length]
                for s in sequences)
            return Join(shared + (Union(rests),)).simplified()
        # Longest common suffix.
        suffix_length = 0
        while all(len(s) > suffix_length for s in sequences):
            tails = {s[-1 - suffix_length] for s in sequences}
            if len(tails) != 1:
                break
            suffix_length += 1
        while suffix_length > 0 and any(len(s) == suffix_length for s in sequences):
            suffix_length -= 1
        if suffix_length > 0:
            shared = sequences[0][len(sequences[0]) - suffix_length:]
            rests = tuple(
                Join(s[:len(s) - suffix_length]) if len(s) - suffix_length > 1
                else s[len(s) - suffix_length - 1]
                for s in sequences)
            return Join((Union(rests),) + shared).simplified()
        return expr

    return _rebuild(expression, factor).simplified()


def normalize(expression: RegexExpr, max_passes: int = 8) -> RegexExpr:
    """Simplify + fold literals + factor unions, iterated to a fixpoint.

    Distribution is *not* part of normalization (it can grow the tree); the
    planner may request it separately when branch selectivity matters.
    """
    current = expression.simplified()
    for _ in range(max_passes):
        rewritten = factor_unions(fold_literals(current))
        if rewritten == current:
            return current
        current = rewritten
    return current
