"""Deterministic fault injection: the robustness test harness's sharp end.

See :mod:`repro.faults.plan` for the model (sites, kinds, determinism)
and ``docs/robustness.md`` for the site inventory and the
fail-stop-or-correct contract the chaos suite enforces.
"""

from repro.faults.plan import (
    KILL_EXIT_CODE,
    Fault,
    FaultPlan,
    clear_plan,
    fault_hook,
    fault_point,
    fault_scope,
    install_plan,
    installed_plan,
    worker_fault_point,
)

__all__ = [
    "KILL_EXIT_CODE",
    "Fault",
    "FaultPlan",
    "clear_plan",
    "fault_hook",
    "fault_point",
    "fault_scope",
    "install_plan",
    "installed_plan",
    "worker_fault_point",
]
