"""Deterministic, seed-driven fault injection for robustness testing.

The production contract is **fail-stop-or-correct**: under any injected
fault the system either raises a typed error / degrades explicitly, or
returns exactly what the dict reference returns — never a silently wrong
answer.  This module supplies the injection half of that bargain: named
*sites* compiled into the hot paths of the storage, pool and service
tiers, armed by a :class:`FaultPlan`, and **zero-overhead when disarmed**
(the hook is one module-global load and an ``is None`` test; the E13
benchmark gates it at <= 2% of a hot query).

Sites and kinds
---------------
A site is a dotted name at one failure point (``"wal.fsync"``,
``"pool.task"``, ``"http.connection_drop"``; see ``docs/robustness.md``
for the full inventory).  A :class:`Fault` armed at a site has a *kind*
that the site interprets:

``eio`` / ``enospc``
    The hook raises the matching :class:`OSError` (``enospc`` with
    ``fraction`` set models a short write: the site writes that fraction
    of its buffer first, then raises — a torn frame on disk).
``kill`` / ``hang``
    Worker-process faults: ``kill`` hard-exits the process
    (``os._exit``), ``hang`` sleeps ``seconds``.  They only ever fire in
    a *forked child* (the plan records the arming pid), so a serial
    fallback re-running the same task in the parent is safe by
    construction.
``drop`` / ``delay``
    Service faults: the HTTP tier aborts the connection mid-response, or
    stalls ``seconds`` before reading/writing (a slow client).
``torn`` / ``dup``
    Replication-ship faults: ``torn`` truncates a shipped byte run to
    ``fraction`` of its length (a segment cut mid-frame, or a snapshot
    fetch interrupted by primary death); ``dup`` re-serves an
    already-shipped batch (the feed hands back the *request* cursor as
    the next cursor, so the replica fetches the same run twice —
    duplicate/reordered delivery the apply path must absorb).

Determinism
-----------
Nothing here is time- or randomness-dependent: a fault fires on exact
call counts (``after`` skips the first N hits, ``times`` bounds how often
it fires), so a chaos schedule derived from a seeded RNG replays
identically.  For fire-*once-across-processes* semantics (kill exactly
one pool worker no matter which one gets the task first) a fault can
carry a ``token`` file path: firing requires atomically unlinking the
file, which exactly one process can win.

Arming
------
:func:`install_plan` / :func:`fault_scope` arm a plan in-process;
``REPRO_FAULTS`` (parsed by :meth:`FaultPlan.from_spec`, e.g.
``"wal.fsync:eio:times=1;http.connection_drop:drop"``) arms one inside a
``repro serve`` subprocess.  Plans are inherited through ``fork`` — that
is how pool-worker faults reach the workers.
"""

from __future__ import annotations

import errno
import os
import time
from typing import Callable, Dict, Iterator, List, Optional

from contextlib import contextmanager

from repro.concurrency import ordered_lock
from repro.errors import StorageError

__all__ = [
    "Fault",
    "FaultPlan",
    "fault_hook",
    "fault_point",
    "worker_fault_point",
    "install_plan",
    "clear_plan",
    "fault_scope",
    "installed_plan",
]

#: Fault kinds -> the errno a raise-style site surfaces.
_ERRNO_OF_KIND = {"eio": errno.EIO, "enospc": errno.ENOSPC}

_KINDS = ("eio", "enospc", "kill", "hang", "drop", "delay", "torn", "dup")

#: Exit status a ``kill`` fault dies with — distinguishable from a real
#: segfault (negative signal) and from a clean exit in pool post-mortems.
KILL_EXIT_CODE = 17


class Fault:
    """One armed fault: a site name, a kind, and firing bounds.

    ``after`` hits at the site pass through before the fault starts
    firing; it then fires ``times`` times (``None`` = every hit).  A
    ``token`` path makes firing conditional on atomically unlinking that
    file — fire-once semantics that hold across forked processes, where
    plain counters are per-process copies.
    """

    __slots__ = ("site", "kind", "after", "times", "seconds", "fraction",
                 "token", "calls", "fired")

    def __init__(self, site: str, kind: str, after: int = 0,
                 times: Optional[int] = 1, seconds: float = 0.05,
                 fraction: float = 0.5, token: Optional[str] = None):
        if kind not in _KINDS:
            raise ValueError("unknown fault kind {!r}; expected one of {}"
                             .format(kind, ", ".join(_KINDS)))
        self.site = site
        self.kind = kind
        self.after = after
        self.times = times
        self.seconds = seconds
        self.fraction = fraction
        self.token = token
        self.calls = 0
        self.fired = 0

    def _take(self) -> bool:
        """Consume one hit; True when this hit fires the fault."""
        self.calls += 1
        if self.calls <= self.after:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        if self.token is not None:
            try:
                os.unlink(self.token)
            except OSError:
                return False  # another process won the token
        self.fired += 1
        return True

    def to_error(self) -> OSError:
        """The :class:`OSError` an ``eio``/``enospc`` site raises."""
        code = _ERRNO_OF_KIND.get(self.kind, errno.EIO)
        return OSError(code, "injected fault at {} ({})".format(
            self.site, self.kind))

    def __repr__(self) -> str:
        return "Fault<{} {} after={} times={} fired={}>".format(
            self.site, self.kind, self.after, self.times, self.fired)


class FaultPlan:
    """A deterministic schedule of faults, armed per site name.

    ``hits`` counts every hook crossing while the plan is installed
    (armed or not) — the E13 bench uses an *empty* installed plan to
    count crossings per query when pricing the disarmed hook.  The plan
    records the pid that armed it; :func:`worker_fault_point` only fires
    process-lethal kinds in a *different* pid (a forked worker), never in
    the arming process itself.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.hits = 0
        self._faults: Dict[str, List[Fault]] = {}
        self._pid = os.getpid()
        # A leaf under storage.wal: WAL flushes cross fault hooks while
        # holding the WAL lock, so this must never acquire anything.
        self._lock = ordered_lock("faults.plan")

    def arm(self, site: str, kind: str, **options: object) -> Fault:
        """Arm one fault at ``site``; returns it for later inspection."""
        fault = Fault(site, kind, **options)  # type: ignore[arg-type]
        self._faults.setdefault(site, []).append(fault)
        return fault

    def check(self, site: str) -> Optional[Fault]:
        """One hook crossing: the firing fault for this hit, or None."""
        with self._lock:
            self.hits += 1
            for fault in self._faults.get(site, ()):
                if fault._take():
                    return fault
        return None

    def fired(self, site: Optional[str] = None) -> int:
        """Total fires, at one site or across the plan."""
        faults: Iterator[Fault] = (
            iter(self._faults.get(site, ())) if site is not None
            else (f for group in self._faults.values() for f in group))
        return sum(fault.fired for fault in faults)

    def sites(self) -> List[str]:
        return sorted(self._faults)

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse ``"site:kind[:key=val]*;..."`` (the ``REPRO_FAULTS`` form).

        Example: ``"wal.fsync:eio:times=1;http.connection_drop:drop:after=2"``.
        Numeric values are parsed (``times=none`` arms an unbounded
        fault); ``token`` stays a path string.  A malformed spec raises
        :class:`StorageError` naming the bad clause — a typo in a chaos
        schedule must fail loudly, not silently arm nothing.
        """
        plan = cls(seed=seed)
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            parts = clause.split(":")
            if len(parts) < 2:
                raise StorageError(
                    "bad REPRO_FAULTS clause {!r}: expected "
                    "site:kind[:key=val]*".format(clause))
            site, kind = parts[0], parts[1]
            options: Dict[str, object] = {}
            for item in parts[2:]:
                key, _, value = item.partition("=")
                if not _ or key not in ("after", "times", "seconds",
                                        "fraction", "token"):
                    raise StorageError(
                        "bad REPRO_FAULTS option {!r} in clause {!r}"
                        .format(item, clause))
                if key == "token":
                    options[key] = value
                elif key == "times" and value.lower() == "none":
                    options[key] = None
                elif key in ("after", "times"):
                    options[key] = int(value)
                else:
                    options[key] = float(value)
            try:
                plan.arm(site, kind, **options)  # type: ignore[arg-type]
            except ValueError as exc:
                raise StorageError(
                    "bad REPRO_FAULTS clause {!r}: {}".format(clause, exc)) \
                    from exc
        return plan

    def __repr__(self) -> str:
        return "FaultPlan<seed={} sites={} hits={} fired={}>".format(
            self.seed, self.sites(), self.hits, self.fired())


#: The installed plan.  ``None`` in production: the hooks below reduce to
#: one global load + identity test, which the E13 bench prices at <= 2%
#: of a hot query.
_PLAN: Optional[FaultPlan] = None


def install_plan(plan: FaultPlan) -> None:
    """Arm ``plan`` process-wide (inherited by subsequently forked pools)."""
    global _PLAN
    _PLAN = plan


def clear_plan() -> None:
    """Disarm fault injection (back to the zero-overhead path)."""
    global _PLAN
    _PLAN = None


def installed_plan() -> Optional[FaultPlan]:
    """The currently armed plan, or None."""
    return _PLAN


@contextmanager
def fault_scope(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for a ``with`` block, restoring the previous plan."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    try:
        yield plan
    finally:
        _PLAN = previous


def fault_hook(site: str) -> Optional[Fault]:
    """The firing fault at ``site`` for this hit, or None.

    This is the raw hook for sites that interpret the fault themselves
    (short writes, connection drops).  The disarmed path is the
    production hot path: one global load, one ``is None`` test.
    """
    plan = _PLAN
    if plan is None:
        return None
    return plan.check(site)


def fault_point(site: str) -> None:
    """Raise-style site: surfaces ``eio``/``enospc`` faults as OSError."""
    plan = _PLAN
    if plan is None:
        return
    fault = plan.check(site)
    if fault is not None and fault.kind in _ERRNO_OF_KIND:
        raise fault.to_error()


def worker_fault_point(site: str,
                       _exit: Callable[[int], None] = os._exit) -> None:
    """Process-lethal site for pool workers: ``kill`` and ``hang`` kinds.

    Fires only when the current pid differs from the plan's arming pid —
    i.e. only inside a forked worker.  The serial fallback re-running the
    same task in the arming process therefore can never be killed or hung
    by the very fault it is recovering from.
    """
    plan = _PLAN
    if plan is None:
        return
    if os.getpid() == plan._pid:
        return
    fault = plan.check(site)
    if fault is None:
        return
    if fault.kind == "kill":
        _exit(KILL_EXIT_CODE)
    elif fault.kind == "hang":
        time.sleep(fault.seconds)
