"""Pre-flight RPQ query analysis: reject or shrink queries before dispatch.

The paper's path-algebra framing makes query expressions first-class
algebraic objects — which means they can be *analyzed* as objects, before
any kernel runs.  This module implements the three pre-flight passes the
engine performs on every compiled query:

* **Unknown-label detection** — labels the expression mentions that carry
  no edge in the graph can never fire; they are reported as warnings and
  drive the emptiness analysis below.
* **DFA pruning** (:func:`prune_dfa`) — subset construction can emit
  states that are unreachable from the start state or *dead* (no path to
  an accepting state).  Both are removed, preserving the language exactly:
  a product-BFS config ``(vertex, state)`` on a pruned state could never
  contribute a result pair, so pruning shrinks the product space the
  kernels sweep.
* **Provable emptiness** — a query whose language is empty, or whose
  every accepting run requires a label absent from the graph, provably
  answers the empty set.  ``Engine.pairs`` / ``Engine.query`` /
  ``Engine.pairs_batch`` short-circuit such queries to ∅ with **zero**
  kernel dispatch; the differential and hypothesis suites pin the verdict
  to the ground truth.

Complexity estimates (star height, DFA state count, expression size) ride
along in the diagnostics and feed the planner's direction cost model —
the product space is ``|V| x |Q|``, so the state count scales the frontier
cap (:meth:`repro.engine.planner.Planner.choose_rpq_direction`).

Everything here is pure and cheap — O(states x alphabet) on the DFA, one
walk over the AST — so the engine runs it on every compiled query and
caches the result alongside the DFA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    List,
    Optional,
    Tuple,
)

from repro.regex.ast import (
    Atom,
    Empty,
    Join,
    Literal,
    Product,
    RegexExpr,
    Repeat,
    Star,
    Union,
)
from repro.rpq.labelregex import (
    LabelConcat,
    LabelDFA,
    LabelExpr,
    LabelStar,
    LabelUnion,
)

__all__ = [
    "QueryDiagnostics",
    "ExpressionDiagnostics",
    "analyze_compiled_query",
    "analyze_expression",
    "prune_dfa",
    "star_height",
    "label_expression_size",
]


# ----------------------------------------------------------------------
# Expression-shape measures
# ----------------------------------------------------------------------

def star_height(expression: object) -> int:
    """Maximum star-nesting depth of an expression (label- or edge-level).

    Unbounded repeats (``R+``, ``R{n,}``) count as stars — they expand to
    one — while bounded repeats do not add nesting.  Star height is the
    classical driver of RPQ product-space blowup: each star level lets
    the DFA revisit states, so it is surfaced as a complexity estimate in
    the EXPLAIN diagnostics.
    """
    expr = expression
    if isinstance(expr, (LabelStar, Star)):
        return 1 + star_height(expr.inner)
    if isinstance(expr, Repeat):
        inner = star_height(expr.inner)
        return (1 + inner) if expr.maximum is None else inner
    if isinstance(expr, (LabelUnion, LabelConcat)):
        return max(star_height(part) for part in expr.parts)
    if isinstance(expr, RegexExpr):
        children = expr.children()
        if children:
            return max(star_height(child) for child in children)
    return 0


def label_expression_size(expression: LabelExpr) -> int:
    """Node count of a label expression tree (the AST complexity measure)."""
    expr = expression
    if isinstance(expr, (LabelUnion, LabelConcat)):
        return 1 + sum(label_expression_size(part) for part in expr.parts)
    if isinstance(expr, LabelStar):
        return 1 + label_expression_size(expr.inner)
    return 1


# ----------------------------------------------------------------------
# DFA pruning
# ----------------------------------------------------------------------

def _reachable(transitions: List[Dict[Hashable, int]], start: int,
               allowed: Optional[FrozenSet[Hashable]] = None
               ) -> FrozenSet[int]:
    """States reachable from ``start``; ``allowed`` restricts the labels
    the walk may follow (``None`` = every transition)."""
    seen = {start}
    stack = [start]
    while stack:
        state = stack.pop()
        for label, target in transitions[state].items():
            if allowed is not None and label not in allowed:
                continue
            if target not in seen:
                seen.add(target)
                stack.append(target)
    return frozenset(seen)


def _co_reachable(transitions: List[Dict[Hashable, int]],
                  accepting: FrozenSet[int]) -> FrozenSet[int]:
    """States from which some accepting state is reachable."""
    inverse: List[List[int]] = [[] for _ in transitions]
    for source, row in enumerate(transitions):
        for target in row.values():
            inverse[target].append(source)
    seen = set(accepting)
    stack = list(accepting)
    while stack:
        state = stack.pop()
        for source in inverse[state]:
            if source not in seen:
                seen.add(source)
                stack.append(source)
    return frozenset(seen)


def prune_dfa(dfa: LabelDFA) -> Tuple[LabelDFA, int]:
    """Remove unreachable and dead DFA states, preserving the language.

    A state is *useful* when it is reachable from the start state and can
    still reach an accepting state.  Transitions into non-useful states
    are dropped (they become the implicit dead state — exactly the
    semantics :meth:`LabelDFA.step` already gives missing entries), and
    the useful states are renumbered densely with the start state first.

    Returns ``(pruned_dfa, removed_state_count)``.  When the start state
    itself is useless (the language is empty) the result is the canonical
    one-state reject-everything DFA.
    """
    useful = (_reachable(dfa.transitions, dfa.start)
              & _co_reachable(dfa.transitions, dfa.accepting))
    if dfa.start not in useful:
        # Empty language: nothing is useful, keep a lone rejecting state.
        return LabelDFA(0, frozenset(), [{}]), max(dfa.num_states - 1, 0)
    removed = dfa.num_states - len(useful)
    if not removed:
        return dfa, 0
    order = [dfa.start] + sorted(s for s in useful if s != dfa.start)
    renumber = {old: new for new, old in enumerate(order)}
    transitions: List[Dict[Hashable, int]] = []
    for old in order:
        transitions.append({label: renumber[target]
                            for label, target in dfa.transitions[old].items()
                            if target in useful})
    accepting = frozenset(renumber[s] for s in dfa.accepting if s in useful)
    return LabelDFA(0, accepting, transitions), removed


# ----------------------------------------------------------------------
# Diagnostics containers
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class QueryDiagnostics:
    """The pre-flight verdict for one compiled (label-level) query.

    ``empty`` is a *proof*, not a heuristic: when True the query's answer
    is the empty set on the graph whose label alphabet was analyzed, and
    the engine returns ∅ without dispatching a kernel.  ``dfa`` is the
    pruned, language-equivalent automaton the kernels should run when the
    query is satisfiable.
    """

    dfa: LabelDFA
    unknown_labels: FrozenSet[Hashable]
    empty: bool
    empty_reason: Optional[str]
    original_states: int
    pruned_states: int
    star_height: int
    expression_size: int
    warnings: Tuple[str, ...]

    @property
    def state_count(self) -> int:
        """States the (pruned) automaton actually serves."""
        return self.dfa.num_states

    def describe(self) -> str:
        """The EXPLAIN ``diagnostics:`` section (multi-line, indented)."""
        lines = ["diagnostics:"]
        lines.append("  complexity: star-height {}, expression size {}, "
                     "dfa {} state(s)".format(
                         self.star_height, self.expression_size,
                         self.state_count))
        if self.pruned_states:
            lines.append("  dfa pruning: {} of {} state(s) were dead or "
                         "unreachable and were removed".format(
                             self.pruned_states, self.original_states))
        for warning in self.warnings:
            lines.append("  warning: {}".format(warning))
        if self.empty:
            lines.append("  verdict: provably empty — {}; the engine "
                         "short-circuits to the empty result with no "
                         "kernel dispatch".format(self.empty_reason))
        else:
            lines.append("  verdict: satisfiable (no pre-flight "
                         "obstruction found)")
        return "\n".join(lines)


@dataclass(frozen=True)
class ExpressionDiagnostics:
    """Pre-flight verdict for a general edge-set expression.

    The structural analogue of :class:`QueryDiagnostics` for expressions
    that do not lower to a label RPQ (interior vertex bindings, literals,
    products): emptiness is proved by structural recursion — an atom over
    a label or vertex the graph has never seen resolves to ∅, and ∅
    propagates through joins and non-nullable repeats.
    """

    unknown_labels: FrozenSet[Hashable]
    unknown_vertices: FrozenSet[Hashable]
    empty: bool
    empty_reason: Optional[str]
    star_height: int
    expression_size: int
    warnings: Tuple[str, ...]

    def describe(self) -> str:
        """The EXPLAIN ``diagnostics:`` section (multi-line, indented)."""
        lines = ["diagnostics:"]
        lines.append("  complexity: star-height {}, expression size {}"
                     .format(self.star_height, self.expression_size))
        for warning in self.warnings:
            lines.append("  warning: {}".format(warning))
        if self.empty:
            lines.append("  verdict: provably empty — {}; the engine "
                         "short-circuits to the empty result with no "
                         "kernel dispatch".format(self.empty_reason))
        else:
            lines.append("  verdict: satisfiable (no pre-flight "
                         "obstruction found)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Label-level (DFA) analysis — the pairs fast path's pre-flight
# ----------------------------------------------------------------------

def analyze_compiled_query(dfa: LabelDFA, expression: LabelExpr,
                           graph_labels: FrozenSet[Hashable]
                           ) -> QueryDiagnostics:
    """Analyze one compiled label query against a graph's label alphabet.

    ``graph_labels`` must be the set of labels carrying at least one edge
    (exactly what ``MultiRelationalGraph.labels()`` returns) — the
    analysis is valid for any graph with that alphabet, which is why the
    engine caches it under the same ``(expression, alphabet)`` key as the
    DFA itself.

    The emptiness proof is a reachability argument: any non-empty path
    matched in the graph spells a word over ``graph_labels``, so if no
    accepting state is reachable from the start state using only those
    labels — and the start state is not itself accepting (the empty word)
    — no pair can ever be produced.
    """
    mentioned = expression.symbols()
    unknown = frozenset(mentioned - graph_labels)
    pruned, removed = prune_dfa(dfa)
    warnings: List[str] = []
    if unknown:
        warnings.append("label(s) {} never occur in this graph".format(
            ", ".join(sorted(repr(label) for label in unknown))))

    empty = False
    reason: Optional[str] = None
    if not pruned.accepting:
        # prune_dfa collapsed everything: no accepting state was reachable
        # at all, so the language itself is empty on every graph.
        empty = True
        reason = "the expression's language is empty"
    else:
        alive = _reachable(pruned.transitions, pruned.start,
                           allowed=graph_labels)
        if not (alive & pruned.accepting):
            empty = True
            reason = ("no accepting state is reachable using labels that "
                      "occur in the graph")
    return QueryDiagnostics(
        dfa=pruned,
        unknown_labels=unknown,
        empty=empty,
        empty_reason=reason,
        original_states=dfa.num_states,
        pruned_states=removed,
        star_height=star_height(expression),
        expression_size=label_expression_size(expression),
        warnings=tuple(warnings))


# ----------------------------------------------------------------------
# Edge-level (structural) analysis — every other expression's pre-flight
# ----------------------------------------------------------------------

def _structurally_empty(expression: RegexExpr, graph: Any) -> Optional[str]:
    """A reason string when ``expression`` provably matches no path in
    ``graph``, else ``None``.

    Sound by construction: atoms naming an absent label or an absent
    bound vertex resolve to ∅; ∅ is absorbing for join and product,
    neutral for union, and survives repeats only when at least one
    repetition is required.  Literals are graph-independent (the paper's
    explicit path sets), so only a literally-empty literal is empty.
    """
    expr = expression
    if isinstance(expr, Empty):
        return "the expression is the empty language {}"
    if isinstance(expr, Atom):
        if expr.label is not None and not graph.has_label(expr.label):
            return "atom {} names label {!r}, which carries no edge".format(
                expr, expr.label)
        if expr.tail is not None and not graph.has_vertex(expr.tail):
            return "atom {} binds tail vertex {!r}, which is not in the " \
                "graph".format(expr, expr.tail)
        if expr.head is not None and not graph.has_vertex(expr.head):
            return "atom {} binds head vertex {!r}, which is not in the " \
                "graph".format(expr, expr.head)
        return None
    if isinstance(expr, Literal):
        if not expr.path_set:
            return "the literal path set is empty"
        return None
    if isinstance(expr, Union):
        reasons = [_structurally_empty(part, graph) for part in expr.parts]
        if all(reason is not None for reason in reasons):
            return "every union branch is empty (first: {})".format(
                reasons[0])
        return None
    if isinstance(expr, (Join, Product)):
        for part in expr.parts:
            reason = _structurally_empty(part, graph)
            if reason is not None:
                return reason
        return None
    if isinstance(expr, Star):
        return None  # stars always contain epsilon
    if isinstance(expr, Repeat):
        if expr.minimum == 0:
            return None
        return _structurally_empty(expr.inner, graph)
    return None


def _expression_labels(expression: RegexExpr) -> FrozenSet[Hashable]:
    """All labels named by the expression's atoms (wildcards excluded)."""
    labels = set()
    for atom in expression.atoms():
        if isinstance(atom, Atom) and atom.label is not None:
            labels.add(atom.label)
        elif isinstance(atom, Literal):
            for path in atom.path_set:
                for edge in path:
                    labels.add(edge.label)
    return frozenset(labels)


def _expression_vertices(expression: RegexExpr) -> FrozenSet[Hashable]:
    """All vertices bound by the expression's atoms."""
    vertices = set()
    for atom in expression.atoms():
        if isinstance(atom, Atom):
            if atom.tail is not None:
                vertices.add(atom.tail)
            if atom.head is not None:
                vertices.add(atom.head)
    return frozenset(vertices)


def analyze_expression(expression: RegexExpr, graph: Any) -> ExpressionDiagnostics:
    """Pre-flight analysis of a general edge-set expression against a graph.

    Used by ``Engine.query`` for every expression (including those that
    also get the sharper DFA analysis through the pairs fast path) and by
    ``Engine.explain`` for the diagnostics section of non-lowerable
    queries.
    """
    mentioned = _expression_labels(expression)
    unknown = frozenset(label for label in mentioned
                        if not graph.has_label(label))
    bound = _expression_vertices(expression)
    missing = frozenset(vertex for vertex in bound
                        if not graph.has_vertex(vertex))
    warnings: List[str] = []
    if unknown:
        warnings.append("label(s) {} never occur in this graph".format(
            ", ".join(sorted(repr(label) for label in unknown))))
    if missing:
        warnings.append("bound vertex(es) {} are not in this graph".format(
            ", ".join(sorted(repr(vertex) for vertex in missing))))
    reason = _structurally_empty(expression, graph)
    return ExpressionDiagnostics(
        unknown_labels=unknown,
        unknown_vertices=missing,
        empty=reason is not None,
        empty_reason=reason,
        star_height=star_height(expression),
        expression_size=expression.size(),
        warnings=tuple(warnings))
