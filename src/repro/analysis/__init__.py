"""Static analysis for the path-algebra engine.

Two analyzers live here, both pre-flight — they inspect expressions and
source code *before* anything runs, so bad queries are rejected (or
short-circuited) without a kernel dispatch and repo invariants are
machine-checked instead of remembered:

* :mod:`repro.analysis.query` — pre-flight RPQ analysis: unknown-label
  detection, dead/unreachable DFA state pruning (language-preserving),
  provable-emptiness verdicts, and star-height / state-count complexity
  estimates.  Wired into ``Engine.pairs`` / ``Engine.query`` /
  ``Engine.pairs_batch`` (provably-empty queries return the empty result
  with zero kernel work), ``Engine.explain`` (the ``diagnostics:``
  section) and the ``repro lint-query`` CLI.
* :mod:`repro.analysis.lint` — **reprolint**, an AST-walking checker for
  repo-specific invariants generic linters cannot express (numpy gating,
  kernel purity, pool-payload pickle safety, storage tmp+rename writes).
  Runnable as ``python -m repro.analysis.lint src/repro``; see
  ``docs/static_analysis.md`` for the rule catalog and suppression
  syntax.
* :mod:`repro.analysis.concurrency` — **reprorace**, the lock-discipline
  and resource-lifecycle checker: guarded-attribute inference with
  unguarded-write detection, nested-acquire (self-deadlock) detection, a
  static cross-module lock-order graph with cycle reporting, and
  must-close lifecycle rules for ``storage/`` and ``service/``.
  Runnable as ``python -m repro.analysis.concurrency src/repro``; its
  dynamic counterpart is the runtime witness in
  :mod:`repro.concurrency`.
"""

from typing import Any

from repro.analysis.query import (
    ExpressionDiagnostics,
    QueryDiagnostics,
    analyze_compiled_query,
    analyze_expression,
    prune_dfa,
    star_height,
)

__all__ = [
    "ExpressionDiagnostics",
    "QueryDiagnostics",
    "RACE_RULES",
    "RULES",
    "Violation",
    "analyze_compiled_query",
    "analyze_expression",
    "analyze_paths",
    "lint_paths",
    "prune_dfa",
    "star_height",
]

#: Lazily-resolved re-exports.  ``lint`` and ``concurrency`` are also
#: ``python -m`` entry points; importing them eagerly here would load
#: them twice under runpy (sys.modules warning), so resolve on demand.
_LAZY = {
    "RACE_RULES": "repro.analysis.concurrency",
    "analyze_paths": "repro.analysis.concurrency",
    "RULES": "repro.analysis.lint",
    "Violation": "repro.analysis.lint",
    "lint_paths": "repro.analysis.lint",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            "module {!r} has no attribute {!r}".format(__name__, name))
    import importlib

    return getattr(importlib.import_module(module_name), name)
