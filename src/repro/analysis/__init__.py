"""Static analysis for the path-algebra engine.

Two analyzers live here, both pre-flight — they inspect expressions and
source code *before* anything runs, so bad queries are rejected (or
short-circuited) without a kernel dispatch and repo invariants are
machine-checked instead of remembered:

* :mod:`repro.analysis.query` — pre-flight RPQ analysis: unknown-label
  detection, dead/unreachable DFA state pruning (language-preserving),
  provable-emptiness verdicts, and star-height / state-count complexity
  estimates.  Wired into ``Engine.pairs`` / ``Engine.query`` /
  ``Engine.pairs_batch`` (provably-empty queries return the empty result
  with zero kernel work), ``Engine.explain`` (the ``diagnostics:``
  section) and the ``repro lint-query`` CLI.
* :mod:`repro.analysis.lint` — **reprolint**, an AST-walking checker for
  repo-specific invariants generic linters cannot express (numpy gating,
  kernel purity, pool-payload pickle safety, storage tmp+rename writes).
  Runnable as ``python -m repro.analysis.lint src/repro``; see
  ``docs/static_analysis.md`` for the rule catalog and suppression
  syntax.
"""

from repro.analysis.query import (
    ExpressionDiagnostics,
    QueryDiagnostics,
    analyze_compiled_query,
    analyze_expression,
    prune_dfa,
    star_height,
)

__all__ = [
    "ExpressionDiagnostics",
    "QueryDiagnostics",
    "analyze_compiled_query",
    "analyze_expression",
    "prune_dfa",
    "star_height",
]
