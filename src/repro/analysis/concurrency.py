"""reprorace — static lock-discipline and resource-lifecycle analysis.

PR 6's reprolint proves repo *conventions* on the AST; this module
proves the repo's *concurrency story* the same way.  It is the static
half of a two-part design — the dynamic half is the runtime lock-order
witness in :mod:`repro.concurrency`, which watches real schedules under
the chaos suite.  Four rules:

``unguarded-write``
    Per class, reprorace infers the **guarded set**: attributes written
    under a held ``with self._lock`` scope (any lock attribute assigned
    from ``threading.Lock()`` / ``threading.RLock()`` /
    :func:`~repro.concurrency.ordered_lock` /
    :func:`~repro.concurrency.ordered_rlock` /
    :class:`~repro.concurrency.OrderedLock`), outside ``__init__`` /
    ``__new__``.  Any write to a guarded attribute (assignment,
    augmented assignment, subscript store, ``del``, or an in-place
    mutator call such as ``.append``) from a method scope holding no
    lock is flagged.  Construction-time writes are exempt: an object
    under construction is thread-confined.
``nested-acquire``
    Acquiring a non-reentrant lock whose scope is already held — either
    a directly nested ``with``, or a one-level ``self.method()`` call
    whose callee acquires the held lock at its top level.  Re-entrant
    locks (``RLock`` / ``ordered_rlock``) are exempt by design.
``lock-order-cycle``
    Every nested acquisition (direct, via one-level self-call, or via a
    one-level call through an attribute whose class is known from
    ``self.x = ClassName(...)`` or an annotated ``__init__`` parameter)
    contributes an edge ``held-lock -> acquired-lock`` to one static
    order graph across all analyzed modules.  A cycle is a potential
    deadlock and is reported at the edge that closes it.  The static
    graph is knowingly incomplete (it cannot see through registries or
    callbacks) — the armed runtime witness completes the picture.
``must-close``
    In ``storage/`` and ``service/`` modules, every tracked resource
    constructor — ``open()``, ``np.memmap``, ``*.Pool(...)``,
    ``ThreadPoolExecutor`` — must be context-managed, closed on some
    path in its function, stored on ``self`` of a class that defines a
    close-like method, returned, or handed to another owner.  A
    constructor whose result can only leak is flagged.  (The runtime
    :class:`~repro.concurrency.LeakRegistry` is the dynamic counterpart,
    asserted empty at the end of the service and chaos suites.)

Annotations
-----------
``# guarded-by: <lockattr>`` on a ``def`` signature line (the ``def``
itself, or any continuation line of a wrapped signature) asserts the *caller*
holds ``self.<lockattr>`` for the whole method — the repo's private
``_do_x_locked``-style helpers carry it, and reprorace then both treats
their writes as guarded and flags any re-acquisition of that lock
inside them.  On an attribute-assignment line (conventionally in
``__init__``) it declares that attribute guarded by the named lock even
if no locked write is visible to inference.

``# reprorace: ignore[rule]`` / ``# reprorace: skip-file`` reuse
reprolint's suppression machinery under this tool's own namespace —
a reprorace suppression never silences a reprolint finding.

Usage::

    python -m repro.analysis.concurrency src/repro
    python -m repro.analysis.concurrency --json src tests
    python -m repro.analysis.concurrency --list-rules

Exit status matches reprolint: 0 clean, 1 violations, 2 usage/parse
errors; findings print as ``path:line: rule: message``.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Union

from repro.analysis.lint import (
    _MUTATORS,
    Violation,
    _Module,
    _collect_modules,
    _iter_comments,
    emit_report,
)

__all__ = ["RACE_RULES", "analyze_paths", "main"]

#: rule name -> one-line description (the ``--list-rules`` catalog).
RACE_RULES: Dict[str, str] = {
    "unguarded-write": "attributes written under a lock are guarded; "
                       "writing them with no lock held is a race",
    "nested-acquire": "re-acquiring a held non-reentrant lock (directly "
                      "or via a one-level self-call) self-deadlocks",
    "lock-order-cycle": "the static cross-module lock-order graph must "
                        "stay acyclic (cycles are potential deadlocks)",
    "must-close": "storage/service resource constructors must be closed, "
                  "context-managed, or ownership-transferred",
}

_RACE_ALL = frozenset(RACE_RULES)

_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: Constructors recognised as lock factories: call shape -> reentrant?
_LOCK_CTORS: Dict[str, bool] = {
    "Lock": False, "RLock": True,
    "ordered_lock": False, "ordered_rlock": True,
}

#: Method names that close/tear down a resource.
_CLOSERS = frozenset({"close", "shutdown", "terminate", "aclose", "stop"})

#: Roots `X.memmap(...)` is recognised under (numpy-gate aliasing).
_NUMPY_ROOTS = frozenset({"np", "_np", "numpy"})

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class _Lock:
    """One lock attribute of one class."""

    attr: str       #: attribute name on ``self``
    node: str       #: order-graph node (the ordered_lock name, or Class.attr)
    reentrant: bool


@dataclass
class _Class:
    """Everything reprorace knows about one class."""

    name: str
    module: _Module
    tree: ast.ClassDef
    locks: Dict[str, _Lock] = field(default_factory=dict)
    methods: Dict[str, _FunctionNode] = field(default_factory=dict)
    #: method name -> lock attr asserted held by ``# guarded-by:`` def lines.
    method_guards: Dict[str, str] = field(default_factory=dict)
    #: attribute -> guarding lock attr (inferred + declared).
    guarded: Dict[str, str] = field(default_factory=dict)
    #: method name -> lock attrs it acquires with nothing held (its
    #: "acquisition signature" as seen by a one-level caller).
    outermost: Dict[str, Set[str]] = field(default_factory=dict)
    #: ``self.<attr>`` -> class name, from ctor calls and annotated params.
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class _Edge:
    """One static order edge plus where it was observed."""

    source: str
    target: str
    path: str
    line: int


# ----------------------------------------------------------------------
# Class discovery
# ----------------------------------------------------------------------

def _call_name(func: ast.AST) -> Optional[str]:
    """The trailing name of a call target: ``a.b.C(...)`` -> ``C``."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _lock_from_value(cls_name: str, attr: str,
                     value: ast.AST) -> Optional[_Lock]:
    if not isinstance(value, ast.Call):
        return None
    name = _call_name(value.func)
    if name == "OrderedLock":
        reentrant = any(
            kw.arg == "reentrant" and isinstance(kw.value, ast.Constant)
            and bool(kw.value.value)
            for kw in value.keywords)
    elif name in _LOCK_CTORS:
        reentrant = _LOCK_CTORS[name]
    else:
        return None
    node = "{}.{}".format(cls_name, attr)
    if name in ("OrderedLock", "ordered_lock", "ordered_rlock") \
            and value.args and isinstance(value.args[0], ast.Constant) \
            and isinstance(value.args[0].value, str):
        node = value.args[0].value  # share the runtime witness's node name
    return _Lock(attr=attr, node=node, reentrant=reentrant)


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``X`` (one level only), else None."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def _annotation_name(annotation: Optional[ast.AST]) -> Optional[str]:
    if annotation is None:
        return None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and \
            isinstance(annotation.value, str):
        tail = annotation.value.rsplit(".", 1)[-1].strip()
        return tail or None
    return None


def _guard_comments(module: _Module) -> Dict[int, str]:
    """line -> lock attr named by a ``# guarded-by:`` comment."""
    guards: Dict[int, str] = {}
    for number, text in _iter_comments(module.source):
        match = _GUARDED_BY_RE.search(text)
        if match is not None:
            guards[number] = match.group(1)
    return guards


def _collect_classes(modules: List[_Module]) -> Dict[str, _Class]:
    classes: Dict[str, _Class] = {}
    for module in modules:
        guards = _guard_comments(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = _Class(name=node.name, module=module, tree=node)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.methods[item.name] = item
                    # The guard comment may sit on any signature line —
                    # wrapped defs put it after the closing paren.
                    body_start = item.body[0].lineno if item.body \
                        else item.lineno + 1
                    body_start = max(body_start, item.lineno + 1)
                    for line in range(item.lineno, body_start):
                        guard = guards.get(line)
                        if guard is not None:
                            info.method_guards[item.name] = guard
                            break
            init = info.methods.get("__init__")
            param_types: Dict[str, str] = {}
            if init is not None:
                for arg in init.args.args + init.args.kwonlyargs:
                    type_name = _annotation_name(arg.annotation)
                    if type_name is not None:
                        param_types[arg.arg] = type_name
            for method in info.methods.values():
                for stmt in ast.walk(method):
                    if not isinstance(stmt, ast.Assign):
                        continue
                    for target in stmt.targets:
                        attr = _self_attr(target)
                        if attr is None:
                            continue
                        lock = _lock_from_value(node.name, attr, stmt.value)
                        if lock is not None:
                            info.locks[attr] = lock
                            continue
                        if isinstance(stmt.value, ast.Call):
                            type_name = _call_name(stmt.value.func)
                            if type_name is not None and \
                                    type_name[:1].isupper():
                                info.attr_types[attr] = type_name
                        elif isinstance(stmt.value, ast.Name) and \
                                stmt.value.id in param_types:
                            info.attr_types[attr] = param_types[stmt.value.id]
                        # An annotated declaration guards even what
                        # inference cannot see.
                        declared = guards.get(stmt.lineno)
                        if declared is not None:
                            info.guarded[attr] = declared
            classes[node.name] = info
    return classes


# ----------------------------------------------------------------------
# Lock-scope walking
# ----------------------------------------------------------------------

def _held_locks_for(info: _Class,
                    method: _FunctionNode) -> Tuple[str, ...]:
    """Lock attrs a method's body starts out holding (guarded-by)."""
    guard = info.method_guards.get(method.name)
    if guard is not None and guard in info.locks:
        return (guard,)
    return ()


def _iter_lock_scopes(
        info: _Class, method: _FunctionNode
) -> Iterable[Tuple[ast.AST, Tuple[str, ...]]]:
    """Yield ``(node, held_lock_attrs)`` over a method, shallowly.

    ``held`` reflects ``with self.<lockattr>`` nesting (plus the
    method's ``guarded-by`` assertion); nested function and class
    definitions are not entered — their bodies run on their own
    schedule, not under the enclosing ``with``.
    """

    def walk(nodes: Iterable[ast.AST],
             held: Tuple[str, ...]) -> Iterable[
                 Tuple[ast.AST, Tuple[str, ...]]]:
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner = held
                for item in node.items:
                    attr = _self_attr(item.context_expr)
                    yield item.context_expr, inner
                    if attr is not None and attr in info.locks:
                        inner = inner + (attr,)
                for result in walk(node.body, inner):
                    yield result
                continue
            yield node, held
            for result in walk(ast.iter_child_nodes(node), held):
                yield result

    base = _held_locks_for(info, method)
    for result in walk(method.body, base):
        yield result


def _attr_writes(node: ast.AST) -> Iterable[Tuple[str, int]]:
    """``(attr, line)`` for each ``self.<attr>`` store in one statement."""
    targets: List[ast.AST] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = list(node.targets)
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr in _MUTATORS:
        attr = _self_attr(node.func.value)
        if attr is not None:
            yield attr, node.lineno
        return
    for target in targets:
        base = target
        while isinstance(base, ast.Subscript):
            base = base.value
        attr = _self_attr(base)
        if attr is not None:
            yield attr, node.lineno


_CONSTRUCTORS = frozenset({"__init__", "__new__"})


# ----------------------------------------------------------------------
# Passes: guarded-set inference, write/acquire flags, order edges
# ----------------------------------------------------------------------

def _infer_guarded(info: _Class) -> None:
    for name, method in info.methods.items():
        if name in _CONSTRUCTORS:
            continue
        for node, held in _iter_lock_scopes(info, method):
            if not held:
                continue
            for attr, _ in _attr_writes(node):
                if attr not in info.locks:
                    info.guarded.setdefault(attr, held[-1])


def _acquisition_signatures(info: _Class) -> None:
    """Fill ``info.outermost``: locks a plain call into a method takes."""
    for name, method in info.methods.items():
        acquired: Set[str] = set()
        base = _held_locks_for(info, method)
        for attr, held in _iter_with_items(info, method):
            if held == base:
                acquired.add(attr)
        info.outermost[name] = acquired


def _iter_with_items(
        info: _Class, method: _FunctionNode
) -> Iterable[Tuple[str, Tuple[str, ...]]]:
    """``(lock_attr, held_before)`` for every ``with self.<lock>`` item."""

    def walk(nodes: Iterable[ast.AST],
             held: Tuple[str, ...]) -> Iterable[
                 Tuple[str, Tuple[str, ...]]]:
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner = held
                for item in node.items:
                    attr = _self_attr(item.context_expr)
                    if attr is not None and attr in info.locks:
                        yield attr, inner
                        inner = inner + (attr,)
                for result in walk(node.body, inner):
                    yield result
                continue
            for result in walk(ast.iter_child_nodes(node), held):
                yield result

    for result in walk(method.body, _held_locks_for(info, method)):
        yield result


def _check_unguarded_writes(info: _Class, out: List[Violation]) -> None:
    for name, method in info.methods.items():
        if name in _CONSTRUCTORS:
            continue
        for node, held in _iter_lock_scopes(info, method):
            if held:
                continue
            for attr, line in _attr_writes(node):
                guard = info.guarded.get(attr)
                if guard is None:
                    continue
                info.module.report(
                    out, line, "unguarded-write",
                    "{}.{} writes {!r} with no lock held, but {!r} is "
                    "guarded by self.{} elsewhere; hold the lock or "
                    "annotate the method '# guarded-by: {}'".format(
                        info.name, name, attr, attr, guard, guard))


def _check_acquires_and_edges(info: _Class, classes: Dict[str, _Class],
                              edges: List[_Edge],
                              out: List[Violation]) -> None:
    path = info.module.path

    def note_acquire(lock: _Lock, held: Tuple[str, ...], line: int,
                     via: str) -> None:
        held_locks = [info.locks[a] for a in held if a in info.locks]
        if any(h.node == lock.node for h in held_locks):
            if not lock.reentrant:
                info.module.report(
                    out, line, "nested-acquire",
                    "{} is acquired{} while already held — a "
                    "non-reentrant lock self-deadlocks here".format(
                        lock.node, via))
            return
        for h in held_locks:
            edges.append(_Edge(h.node, lock.node, path, line))

    for name, method in info.methods.items():
        for node, held in _iter_lock_scopes(info, method):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and held:
                    # One-level self-call: self.m() under a held lock.
                    if isinstance(func.value, ast.Name) \
                            and func.value.id == "self" \
                            and func.attr in info.methods:
                        for attr in sorted(
                                info.outermost.get(func.attr, ())):
                            note_acquire(
                                info.locks[attr], held, node.lineno,
                                " via self.{}()".format(func.attr))
                    # One-level call through a typed attribute:
                    # self.store.m() where self.store: PersistentGraph.
                    else:
                        owner = _self_attr(func.value)
                        target = classes.get(
                            info.attr_types.get(owner, "")) \
                            if owner is not None else None
                        if target is not None:
                            for attr in sorted(
                                    target.outermost.get(func.attr, ())):
                                note_acquire(
                                    target.locks[attr], held, node.lineno,
                                    " via self.{}.{}()".format(
                                        owner, func.attr))

    # Direct `with` nesting, with precise pre-acquire held sets.
    for name, method in info.methods.items():
        for (lock_attr, line), held in _iter_with_lines(info, method):
            note_acquire(info.locks[lock_attr], held, line, "")


def _iter_with_lines(
        info: _Class, method: _FunctionNode
) -> Iterable[Tuple[Tuple[str, int], Tuple[str, ...]]]:
    """Like :func:`_iter_with_items` but carrying source lines."""

    def walk(nodes: Iterable[ast.AST],
             held: Tuple[str, ...]) -> Iterable[
                 Tuple[Tuple[str, int], Tuple[str, ...]]]:
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner = held
                for item in node.items:
                    attr = _self_attr(item.context_expr)
                    if attr is not None and attr in info.locks:
                        yield (attr, item.context_expr.lineno), inner
                        inner = inner + (attr,)
                for result in walk(node.body, inner):
                    yield result
                continue
            for result in walk(ast.iter_child_nodes(node), held):
                yield result

    for result in walk(method.body, _held_locks_for(info, method)):
        yield result


def _check_order_cycles(edges: List[_Edge], modules: List[_Module],
                        out: List[Violation]) -> None:
    """Insert edges one at a time; report the edge that closes a cycle."""
    by_path = {module.path: module for module in modules}
    graph: Dict[str, Set[str]] = {}

    def reaches(source: str, target: str,
                seen: Optional[Set[str]] = None) -> Optional[List[str]]:
        if source == target:
            return [source]
        seen = seen if seen is not None else set()
        seen.add(source)
        for successor in sorted(graph.get(source, ())):
            if successor in seen:
                continue
            tail = reaches(successor, target, seen)
            if tail is not None:
                return [source] + tail
        return None

    seen_edges: Set[Tuple[str, str]] = set()
    for edge in edges:
        key = (edge.source, edge.target)
        if key in seen_edges or edge.source == edge.target:
            continue
        seen_edges.add(key)
        cycle = reaches(edge.target, edge.source)
        if cycle is not None:
            module = by_path.get(edge.path)
            if module is not None:
                module.report(
                    out, edge.line, "lock-order-cycle",
                    "acquiring {} while holding {} closes the static "
                    "order cycle {}".format(
                        edge.target, edge.source,
                        " -> ".join([edge.source] + cycle)))
            continue
        graph.setdefault(edge.source, set()).add(edge.target)


# ----------------------------------------------------------------------
# must-close
# ----------------------------------------------------------------------

def _lifecycle_scope(module: _Module) -> bool:
    parts = module.path.replace("\\", "/").split("/")
    return "storage" in parts or "service" in parts


def _tracked_constructor(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "open"
        if func.id in ("ThreadPoolExecutor", "ProcessPoolExecutor"):
            return "executor"
        return None
    if isinstance(func, ast.Attribute):
        if func.attr == "memmap":
            root = func.value
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) and root.id in _NUMPY_ROOTS:
                return "memmap"
        if func.attr == "Pool":
            return "pool"
        if func.attr in ("ThreadPoolExecutor", "ProcessPoolExecutor"):
            return "executor"
    return None


def _class_of(method: _FunctionNode,
              classes: Dict[str, _Class]) -> Optional[_Class]:
    for info in classes.values():
        if info.methods.get(method.name) is method:
            return info
    return None


def _name_escapes(function: _FunctionNode, name: str,
                  after_line: int) -> bool:
    """True when a local resource name is closed or changes owner."""
    for node in ast.walk(function):
        if getattr(node, "lineno", 0) < after_line:
            continue
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id == name and func.attr in _CLOSERS:
                return True
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if any(isinstance(x, ast.Name) and x.id == name
                       for x in ast.walk(arg)):
                    return True
        elif isinstance(node, ast.Return) and node.value is not None:
            if any(isinstance(x, ast.Name) and x.id == name
                   for x in ast.walk(node.value)):
                return True
        elif isinstance(node, ast.Assign):
            if any(isinstance(x, ast.Name) and x.id == name
                   for x in ast.walk(node.value)):
                if any(isinstance(t, (ast.Attribute, ast.Subscript))
                       for t in node.targets):
                    return True
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if any(isinstance(x, ast.Name) and x.id == name
                       for x in ast.walk(item.context_expr)):
                    return True
    return False


def _check_must_close(module: _Module, classes: Dict[str, _Class],
                      out: List[Violation]) -> None:
    if not _lifecycle_scope(module):
        return
    functions: List[_FunctionNode] = [
        node for node in ast.walk(module.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))]
    for function in functions:
        parent_of: Dict[ast.AST, ast.AST] = {}
        stack: List[ast.AST] = list(function.body)
        for top in function.body:
            parent_of[top] = function
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)) and node is not function:
                continue
            for child in ast.iter_child_nodes(node):
                parent_of[child] = node
                stack.append(child)
        for node, parent in list(parent_of.items()):
            if not isinstance(node, ast.Call):
                continue
            kind = _tracked_constructor(node)
            if kind is None:
                continue
            # Conditional/boolean/walrus wrappers are ownership-neutral:
            # classify by the first structural ancestor above them.
            while isinstance(parent, (ast.IfExp, ast.BoolOp,
                                      ast.NamedExpr)):
                parent = parent_of.get(parent, function)
            if isinstance(parent, ast.withitem):
                continue  # context-managed
            if isinstance(parent, (ast.Call, ast.Return)):
                continue  # ownership transferred / handed to the caller
            if isinstance(parent, (ast.Assign, ast.AnnAssign)):
                if isinstance(parent, ast.AnnAssign):
                    target: Optional[ast.AST] = parent.target
                else:
                    target = parent.targets[0] \
                        if len(parent.targets) == 1 else None
                attr = _self_attr(target) if target is not None else None
                if attr is not None:
                    owner = _class_of(function, classes)
                    if owner is not None and not any(
                            closer in owner.methods for closer in _CLOSERS):
                        module.report(
                            out, node.lineno, "must-close",
                            "{} stores a {} resource on self but defines "
                            "no close()/shutdown() — the handle can never "
                            "be released".format(owner.name, kind))
                    continue
                if isinstance(target, ast.Name):
                    if _name_escapes(function, target.id, parent.lineno):
                        continue
                    module.report(
                        out, node.lineno, "must-close",
                        "{}() result {!r} in {!r} is never closed, "
                        "returned, stored, or passed on — wrap it in "
                        "'with' or close it on every path".format(
                            kind, target.id, function.name))
                    continue
            module.report(
                out, node.lineno, "must-close",
                "{}() result in {!r} is dropped without a close path — "
                "wrap it in 'with' or bind and close it".format(
                    kind, function.name))


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def analyze_paths(paths: Iterable[str]) -> List[Violation]:
    """Run every reprorace rule; returns violations sorted by location."""
    modules = [m for m in _collect_modules(paths, "reprorace", _RACE_ALL)
               if not m.skip]
    classes = _collect_classes(modules)
    for info in classes.values():
        _infer_guarded(info)
        _acquisition_signatures(info)
    out: List[Violation] = []
    edges: List[_Edge] = []
    for info in classes.values():
        _check_unguarded_writes(info, out)
        _check_acquires_and_edges(info, classes, edges, out)
    _check_order_cycles(edges, modules, out)
    for module in modules:
        _check_must_close(module, classes, out)
    return sorted(set(out), key=lambda v: (v.path, v.line, v.rule))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.concurrency",
        description="reprorace: lock-discipline & resource-lifecycle "
                    "static analysis")
    parser.add_argument("targets", nargs="*",
                        help="files or directories to analyze")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit violations as one structured JSON record")
    args = parser.parse_args(argv)
    if args.list_rules:
        width = max(len(name) for name in RACE_RULES)
        for name in sorted(RACE_RULES):
            print("{:<{w}}  {}".format(name, RACE_RULES[name], w=width))
        return 0
    if not args.targets:
        parser.error("no targets given (try: src/repro)")
    return emit_report("reprorace", analyze_paths(args.targets),
                       args.as_json)


if __name__ == "__main__":
    sys.exit(main())
