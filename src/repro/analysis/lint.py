"""reprolint — an AST checker for this repo's hand-rolled invariants.

Generic linters enforce style; this one enforces the *load-bearing*
conventions the kernels, storage layer and parallel executor rely on —
the ones a reviewer has to remember today and a regression would silently
break tomorrow:

``numpy-gate``
    numpy is an optional dependency.  Modules must import it under
    ``try/except ImportError`` (binding ``_np = None`` on failure), and
    every function dereferencing ``_np`` must carry a visible gate — a
    ``HAVE_NUMPY`` test or an ``_np is (not) None`` comparison — in its
    own body or an enclosing function's.  Classes that are numpy-only *by
    contract* (their constructors are unreachable without numpy) may be
    exempted with a suppression comment on the ``class`` line.
``kernel-mutation``
    The traversal kernels in ``graph/compact.py`` and
    ``graph/sharding.py`` receive live graph/snapshot objects that other
    queries share.  Module-level kernel functions must never mutate
    structures reached through their ``graph`` / ``snapshot`` / ``view``
    / ``shard`` parameters — no mutating method calls, no subscript or
    attribute assignment through those roots.  (The sanctioned snapshot
    cache goes through ``setattr``, which stays visible and greppable.)
``pickle-slots``
    Everything reachable from a :class:`~repro.engine.parallel.ParallelExecutor`
    task payload crosses a process boundary.  A class that combines
    ``__slots__`` with a raising ``__setattr__`` (the repo's immutability
    idiom) breaks pickle's default slot-state restore, so it must define
    or inherit ``__getstate__`` **and** one of ``__setstate__`` /
    ``__getnewargs__`` / ``__reduce__``.
``storage-write``
    Durable files under ``storage/`` are published atomically: writes go
    to a ``*.tmp`` sibling and ``os.replace`` into place.  Opening a
    non-tmp path for writing (unless the path is a caller-supplied
    parameter, where the call site owns the invariant) is flagged.
``bare-except``
    ``except:`` swallows ``KeyboardInterrupt``/``SystemExit``; name the
    exception type (at minimum ``Exception``).
``mutable-default``
    Mutable literals as parameter defaults alias across calls.

Suppression syntax
------------------
``# reprolint: ignore[rule, rule2]`` on (or directly above) the offending
line suppresses the named rules there; ``# reprolint: ignore`` suppresses
every rule for that line.  On a ``class``/``def`` header line the
suppression covers the whole block.  ``# reprolint: skip-file`` anywhere
in a file skips it entirely.

Usage::

    python -m repro.analysis.lint src/repro            # lint the tree
    python -m repro.analysis.lint --list-rules         # rule catalog
    python -m repro.analysis.lint --json src/repro     # structured records

Exit status is 0 when clean, 1 when violations were found, 2 on usage or
parse errors.  Every violation prints as ``path:line: rule: message``
(or, under ``--json``, as one JSON object with a flat record per
finding).  The suppression machinery here is tool-generic — the lock
discipline checker reprorace (:mod:`repro.analysis.concurrency`) reuses
it under its own ``# reprorace:`` namespace.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import os
import re
import sys
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Union

__all__ = ["Violation", "lint_paths", "emit_report", "main", "RULES"]

#: rule name -> one-line description (the ``--list-rules`` catalog).
RULES: Dict[str, str] = {
    "numpy-gate": "numpy must be imported under try/except and every "
                  "_np-using function must test HAVE_NUMPY / _np is None",
    "kernel-mutation": "compact/sharding kernel functions must not mutate "
                       "graph- or snapshot-owned structures",
    "pickle-slots": "__slots__ classes with a raising __setattr__ must "
                    "define or inherit the pickle state protocol",
    "storage-write": "storage/ writes must target a *.tmp path and publish "
                     "via os.replace",
    "bare-except": "bare except: clauses are forbidden",
    "mutable-default": "mutable literals must not be parameter defaults",
}

#: Sentinel for "every rule" in suppression tables.
_ALL = frozenset(RULES)


def _suppress_re(tool: str) -> "re.Pattern[str]":
    """The suppression-comment pattern for one tool's namespace.

    The machinery below is shared with reprorace
    (:mod:`repro.analysis.concurrency`); each tool only honours its own
    ``# <tool>: ignore[...]`` comments, so a reprorace suppression never
    silences a reprolint finding on the same line (and vice versa).
    """
    return re.compile(
        r"#\s*{}:\s*(skip-file|ignore(?:\[([^\]]+)\])?)".format(
            re.escape(tool)))

#: Method names whose call mutates the receiver in place.
_MUTATORS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "sort", "reverse",
})

#: Parameter names through which kernel functions reach shared state.
_KERNEL_ROOTS = frozenset({"graph", "snapshot", "view", "shard", "sharded"})

#: Files the kernel-mutation rule applies to.
_KERNEL_FILES = frozenset({"compact.py", "sharding.py"})


@dataclass(frozen=True)
class Violation:
    """One finding: a file, a line, a rule and what it saw."""

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return "{}:{}: {}: {}".format(self.path, self.line, self.rule,
                                      self.message)

    def to_record(self) -> Dict[str, object]:
        """The ``--json`` shape: one flat record per finding."""
        return {"path": self.path, "line": self.line, "rule": self.rule,
                "message": self.message}


@dataclass
class _Module:
    """One parsed source file plus its suppression tables."""

    path: str
    source: str
    tree: ast.Module
    skip: bool = False
    #: line -> suppressed rule names (``_ALL`` for a blanket ignore).
    line_rules: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: (first line, last line, rules) for class/def-header suppressions.
    block_rules: List[Tuple[int, int, FrozenSet[str]]] = \
        field(default_factory=list)

    def suppressed(self, line: int, rule: str) -> bool:
        for candidate in (line, line - 1):
            rules = self.line_rules.get(candidate)
            if rules is not None and rule in rules:
                return True
        for lo, hi, rules in self.block_rules:
            if lo <= line <= hi and rule in rules:
                return True
        return False

    def report(self, out: List[Violation], node_or_line: Union[ast.AST, int],
               rule: str, message: str) -> None:
        line = node_or_line if isinstance(node_or_line, int) \
            else node_or_line.lineno
        if not self.suppressed(line, rule):
            out.append(Violation(self.path, line, rule, message))


def _iter_comments(source: str) -> Iterable[Tuple[int, str]]:
    """Yield ``(line, text)`` for real comment tokens only.

    Scanning raw lines would also match suppression examples quoted in
    docstrings; tokenize keeps the match honest.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except tokenize.TokenError:  # truncated file: ast.parse already vetted
        return


def _parse_suppressions(module: _Module, tool: str = "reprolint",
                        known_rules: Optional[FrozenSet[str]] = None) -> None:
    if known_rules is None:
        known_rules = _ALL
    pattern = _suppress_re(tool)
    for number, text in _iter_comments(module.source):
        match = pattern.search(text)
        if match is None:
            continue
        if match.group(1) == "skip-file":
            module.skip = True
            return
        names = match.group(2)
        if names is None:
            rules: FrozenSet[str] = known_rules
        else:
            rules = frozenset(name.strip() for name in names.split(","))
            unknown = rules - known_rules
            if unknown:
                raise SystemExit(
                    "{}:{}: unknown {} rule(s) in suppression: {}"
                    .format(module.path, number, tool,
                            ", ".join(sorted(unknown))))
        module.line_rules[number] = module.line_rules.get(
            number, frozenset()) | rules
    # A suppression on a class/def header covers the whole block.
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.ClassDef, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            rules = module.line_rules.get(node.lineno)
            if rules:
                module.block_rules.append(
                    (node.lineno, node.end_lineno or node.lineno, rules))


def _collect_modules(paths: Iterable[str], tool: str = "reprolint",
                     known_rules: Optional[FrozenSet[str]] = None
                     ) -> List[_Module]:
    files: List[str] = []
    for target in paths:
        if os.path.isdir(target):
            for directory, _, names in sorted(os.walk(target)):
                files.extend(os.path.join(directory, name)
                             for name in sorted(names)
                             if name.endswith(".py"))
        else:
            files.append(target)
    modules = []
    for path in files:
        with open(path, "r", encoding="utf-8") as stream:
            source = stream.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            raise SystemExit("{}: cannot parse: {}".format(path, error))
        module = _Module(path=path, source=source, tree=tree)
        _parse_suppressions(module, tool, known_rules)
        modules.append(module)
    return modules


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------

def _walk_function_shallow(
        function: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested defs/classes."""
    stack = list(function.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _has_numpy_gate(
        function: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> bool:
    """True when the function body visibly tests for numpy availability."""
    for node in ast.walk(function):
        if isinstance(node, ast.Name) and node.id == "HAVE_NUMPY":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "HAVE_NUMPY":
            return True
        if isinstance(node, ast.Compare):
            operands = [node.left] + list(node.comparators)
            has_np = any(isinstance(op, ast.Name) and op.id == "_np"
                         for op in operands)
            has_none = any(isinstance(op, ast.Constant) and op.value is None
                           for op in operands)
            if has_np and has_none:
                return True
    return False


def _function_parents(tree: ast.Module) -> Dict[ast.AST, List[ast.AST]]:
    """function/method node -> chain of enclosing function nodes."""
    parents: Dict[ast.AST, List[ast.AST]] = {}

    def visit(node: ast.AST, chain: List[ast.AST]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                parents[child] = list(chain)
                visit(child, chain + [child])
            else:
                visit(child, chain)

    visit(tree, [])
    return parents


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------

def _check_numpy_gate(module: _Module, out: List[Violation]) -> None:
    guarded_lines: Set[int] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Try):
            for child in ast.walk(node):
                if isinstance(child, ast.Import):
                    guarded_lines.add(child.lineno)
    uses_numpy = False
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "numpy":
                    uses_numpy = True
                    if node.lineno not in guarded_lines:
                        module.report(
                            out, node, "numpy-gate",
                            "import numpy must sit under try/except "
                            "ImportError with a _np = None fallback")
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "numpy":
                module.report(
                    out, node, "numpy-gate",
                    "from numpy import ... cannot be gated; import the "
                    "module under try/except and alias it as _np")
    if not uses_numpy:
        return
    parents = _function_parents(module.tree)
    for function, chain in parents.items():
        np_use = None
        for node in _walk_function_shallow(function):
            if isinstance(node, ast.Name) and node.id == "_np" \
                    and isinstance(node.ctx, ast.Load):
                np_use = node
                break
        if np_use is None:
            continue
        if any(_has_numpy_gate(f) for f in chain + [function]):
            continue
        module.report(
            out, np_use.lineno, "numpy-gate",
            "function {!r} dereferences _np without a HAVE_NUMPY / "
            "_np-is-None gate in scope (numpy is optional)".format(
                function.name))


def _check_kernel_mutation(module: _Module, out: List[Violation]) -> None:
    if os.path.basename(module.path) not in _KERNEL_FILES:
        return
    for top in module.tree.body:
        if not isinstance(top, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(top):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATORS:
                root = _root_name(node.func.value)
                if root in _KERNEL_ROOTS:
                    module.report(
                        out, node, "kernel-mutation",
                        "kernel {!r} calls {}.{}(...) — kernels must "
                        "never mutate {}-owned structures".format(
                            top.name, root, node.func.attr, root))
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = _root_name(target)
                    if root in _KERNEL_ROOTS:
                        module.report(
                            out, node, "kernel-mutation",
                            "kernel {!r} assigns through {!r} — kernels "
                            "must never mutate {}-owned structures".format(
                                top.name, root, root))


@dataclass
class _ClassInfo:
    name: str
    bases: Tuple[str, ...]
    has_slots: bool
    raising_setattr: bool
    defines: FrozenSet[str]
    module: _Module
    line: int


def _index_classes(modules: List[_Module]) -> Dict[str, _ClassInfo]:
    index: Dict[str, _ClassInfo] = {}
    for module in modules:
        if module.skip:
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            defines = set()
            has_slots = False
            raising_setattr = False
            for item in node.body:
                if isinstance(item, ast.Assign):
                    for target in item.targets:
                        if isinstance(target, ast.Name) \
                                and target.id == "__slots__":
                            has_slots = True
                elif isinstance(item, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    defines.add(item.name)
                    if item.name == "__setattr__" and any(
                            isinstance(x, ast.Raise)
                            for x in ast.walk(item)):
                        raising_setattr = True
            bases = tuple(base.id for base in node.bases
                          if isinstance(base, ast.Name))
            index[node.name] = _ClassInfo(
                name=node.name, bases=bases, has_slots=has_slots,
                raising_setattr=raising_setattr,
                defines=frozenset(defines), module=module,
                line=node.lineno)
    return index


def _inherits(index: Dict[str, _ClassInfo], info: _ClassInfo,
              member: str, seen: Optional[Set[str]] = None) -> bool:
    if member in info.defines:
        return True
    seen = seen or {info.name}
    for base in info.bases:
        parent = index.get(base)
        if parent is not None and parent.name not in seen:
            seen.add(parent.name)
            if _inherits(index, parent, member, seen):
                return True
    return False


def _effective_raising_setattr(index: Dict[str, _ClassInfo],
                               info: _ClassInfo) -> bool:
    if info.raising_setattr:
        return True
    for base in info.bases:
        parent = index.get(base)
        if parent is not None and parent is not info \
                and _effective_raising_setattr(index, parent):
            return True
    return False


def _check_pickle_slots(modules: List[_Module],
                        out: List[Violation]) -> None:
    index = _index_classes(modules)
    for info in index.values():
        if not info.has_slots:
            continue
        if not _effective_raising_setattr(index, info):
            continue
        has_getstate = _inherits(index, info, "__getstate__")
        has_restore = any(_inherits(index, info, member)
                          for member in ("__setstate__", "__getnewargs__",
                                         "__reduce__", "__reduce_ex__"))
        if has_getstate and has_restore:
            continue
        info.module.report(
            out, info.line, "pickle-slots",
            "class {!r} combines __slots__ with a raising __setattr__ but "
            "defines no pickle protocol — default slot-state restore "
            "calls the raising __setattr__, so instances cannot cross "
            "ParallelExecutor process boundaries; add __getstate__ + "
            "__setstate__ (restore via object.__setattr__)".format(
                info.name))


def _check_storage_write(module: _Module, out: List[Violation]) -> None:
    if "storage" not in module.path.replace(os.sep, "/").split("/"):
        return
    parents = _function_parents(module.tree)
    param_names: Dict[ast.AST, Set[str]] = {}
    for function in parents:
        names = {arg.arg for arg in function.args.args
                 + function.args.posonlyargs + function.args.kwonlyargs}
        param_names[function] = names

    def enclosing_params(node_line: int) -> Set[str]:
        best: Set[str] = set()
        for function in parents:
            if function.lineno <= node_line \
                    <= (function.end_lineno or function.lineno):
                best |= param_names[function]
        return best

    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "open" and node.args):
            continue
        mode = None
        if len(node.args) > 1 and isinstance(node.args[1], ast.Constant) \
                and isinstance(node.args[1].value, str):
            mode = node.args[1].value
        for keyword in node.keywords:
            if keyword.arg == "mode" \
                    and isinstance(keyword.value, ast.Constant):
                mode = keyword.value.value
        if mode is None or not any(flag in mode for flag in "wx"):
            continue
        path_arg = node.args[0]
        text = ast.get_source_segment(module.source, path_arg) or ""
        if "tmp" in text.lower():
            continue
        if isinstance(path_arg, ast.Name) \
                and path_arg.id in enclosing_params(node.lineno):
            continue  # caller-supplied path: the call site owns tmp+rename
        module.report(
            out, node, "storage-write",
            "open({}, {!r}) writes a final path directly — durable "
            "storage writes must target a '*.tmp' sibling and publish "
            "with os.replace".format(text or "...", mode))


def _check_bare_except(module: _Module, out: List[Violation]) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            module.report(
                out, node, "bare-except",
                "bare 'except:' also catches KeyboardInterrupt/SystemExit; "
                "catch Exception (or something narrower) instead")


def _check_mutable_default(module: _Module, out: List[Violation]) -> None:
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set,
                                    ast.ListComp, ast.DictComp,
                                    ast.SetComp)):
                module.report(
                    out, default, "mutable-default",
                    "function {!r} uses a mutable literal as a parameter "
                    "default — it aliases across calls; default to None "
                    "and build inside".format(node.name))


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def lint_paths(paths: Iterable[str]) -> List[Violation]:
    """Lint files/directories; returns violations sorted by location."""
    modules = [m for m in _collect_modules(paths) if not m.skip]
    out: List[Violation] = []
    for module in modules:
        _check_numpy_gate(module, out)
        _check_kernel_mutation(module, out)
        _check_storage_write(module, out)
        _check_bare_except(module, out)
        _check_mutable_default(module, out)
    _check_pickle_slots(modules, out)
    return sorted(out, key=lambda v: (v.path, v.line, v.rule))


def emit_report(tool: str, violations: List[Violation],
                as_json: bool) -> int:
    """Print findings (text or ``--json``) and return the exit status.

    Shared with reprorace so both CLIs report identically: the JSON shape
    is one object with the tool name, a count, and one flat record per
    violation — stable keys for CI annotation tooling to consume.
    """
    if as_json:
        print(json.dumps({
            "tool": tool,
            "count": len(violations),
            "violations": [v.to_record() for v in violations],
        }, indent=2, sort_keys=True))
        return 1 if violations else 0
    for violation in violations:
        print(violation.format())
    if violations:
        print("{}: {} violation(s)".format(tool, len(violations)))
        return 1
    print("{}: clean".format(tool))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="reprolint: repo-specific invariant checker")
    parser.add_argument("targets", nargs="*",
                        help="files or directories to lint")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit violations as one structured JSON record")
    args = parser.parse_args(argv)
    if args.list_rules:
        width = max(len(name) for name in RULES)
        for name in sorted(RULES):
            print("{:<{w}}  {}".format(name, RULES[name], w=width))
        return 0
    if not args.targets:
        parser.error("no targets given (try: src/repro)")
    return emit_report("reprolint", lint_paths(args.targets), args.as_json)


if __name__ == "__main__":
    sys.exit(main())
