"""The path algebra core (paper section II) and its direct applications.

* :class:`Edge`, :class:`Path`, :data:`EPSILON` — the free monoid ``E*``,
* :class:`PathSet` — ``P(E*)`` with union, concatenative join, product,
* the functional operator spellings ``sigma``/``gamma_minus``/``gamma_plus``
  /``omega``/``omega_prime``,
* the section III traversal idioms and the fluent :class:`Traversal` DSL,
* the section IV-C projections (:mod:`repro.core.projection`),
* the Russling-style binary baseline (:mod:`repro.core.binary`).
"""

from repro.core.edge import Edge, edge
from repro.core.path import (
    EPSILON,
    Path,
    gamma_minus,
    gamma_plus,
    omega,
    omega_prime,
    sigma,
)
from repro.core.pathset import EMPTY, EPSILON_SET, PathSet
from repro.core.traversal import (
    Step,
    between_traversal,
    complete_traversal,
    destination_traversal,
    labeled_traversal,
    resolve_step,
    source_traversal,
    traverse,
)
from repro.core.fluent import Traversal
from repro.core.projection import (
    BinaryProjection,
    extract_relation,
    ignore_labels,
    project_label_sequence,
    project_paths,
    project_regular,
)

__all__ = [
    "Edge", "edge", "Path", "EPSILON", "sigma", "gamma_minus", "gamma_plus",
    "omega", "omega_prime", "PathSet", "EMPTY", "EPSILON_SET",
    "Step", "traverse", "resolve_step", "complete_traversal",
    "source_traversal", "destination_traversal", "between_traversal",
    "labeled_traversal", "Traversal",
    "BinaryProjection", "ignore_labels", "extract_relation",
    "project_paths", "project_label_sequence", "project_regular",
]
