"""A fluent, Gremlin-flavored traversal DSL on top of the algebra.

The paper closes by noting the algebra "provides a set of core operations
for constructing a multi-relational graph traversal engine"; the authors'
own engine was Gremlin.  This module is the corresponding user-facing
surface: a chainable :class:`Traversal` whose every step is defined by the
section II/III operations (each ``out`` step *is* a concatenative join with
a restricted edge set).

The traversal is **eager but frontier-pruned**: at each step only edges
whose tail is in the current frontier are materialized, which is exactly the
hash-equijoin the :class:`PathSet` join performs, specialized to the graph's
indices.

Example
-------
>>> from repro.datasets import software_community
>>> g = software_community()
>>> t = Traversal(g).start("person0").out("knows").out("created")
>>> software = t.heads()   # projects created by person0's acquaintances
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Hashable, Iterable, Iterator, List, Optional

from repro.core.edge import Edge
from repro.core.path import Path
from repro.core.pathset import PathSet
from repro.errors import VertexNotFoundError
from repro.graph.graph import MultiRelationalGraph

__all__ = ["Traversal"]


class Traversal:
    """A chainable traversal bound to one graph.

    A traversal carries an immutable :class:`PathSet`; every step returns a
    **new** traversal, so intermediate stages can be kept and branched
    without interference (`t2 = t.out("knows")` leaves ``t`` usable).
    """

    def __init__(self, graph: MultiRelationalGraph,
                 paths: Optional[PathSet] = None):
        self._graph = graph
        # None means "not started": start() must come before edge steps.
        self._paths = paths

    # ------------------------------------------------------------------
    # Starting
    # ------------------------------------------------------------------

    def start(self, *vertices: Hashable) -> "Traversal":
        """Begin at the given vertices (no vertices means *all* of ``V``).

        Starting materializes ``{epsilon}`` conceptually; the actual paths
        appear at the first edge step, restricted to tails in the start set
        (section III-B's left restriction).
        """
        if vertices:
            for v in vertices:
                if not self._graph.has_vertex(v):
                    raise VertexNotFoundError(v)
            starts = frozenset(vertices)
        else:
            starts = self._graph.vertices()
        t = Traversal(self._graph, PathSet.epsilon())
        t._starts = starts  # type: ignore[attr-defined]
        return t

    def start_from_paths(self, paths: PathSet) -> "Traversal":
        """Resume a traversal from an existing path set."""
        return Traversal(self._graph, paths)

    def _frontier(self) -> FrozenSet[Hashable]:
        """The set of vertices at the heads of the current paths."""
        if self._paths is None:
            raise ValueError("traversal not started; call .start() first")
        starts = getattr(self, "_starts", None)
        if self._paths == PathSet.epsilon() and starts is not None:
            return starts
        return self._paths.heads()

    # ------------------------------------------------------------------
    # Edge steps (each is one concatenative join)
    # ------------------------------------------------------------------

    def out(self, *labels: Hashable) -> "Traversal":
        """Follow out-edges (optionally restricted to the given labels).

        Equivalent algebra: join the current path set with
        ``{e | gamma-(e) in frontier, omega(e) in labels}``.
        """
        frontier = self._frontier()
        step_edges: List[Edge] = []
        for v in frontier:
            if not self._graph.has_vertex(v):
                continue
            if labels:
                for label in labels:
                    step_edges.extend(self._graph.match(tail=v, label=label))
            else:
                step_edges.extend(self._graph.match(tail=v))
        return self._joined(PathSet.from_edges(step_edges))

    def in_(self, *labels: Hashable) -> "Traversal":
        """Traverse in-edges *against* their direction.

        The appended path elements are the inverted edges (tail and head
        swapped, label preserved), so the path remains joint.  Note the
        resulting paths are paths of the inverted graph segmentwise — the
        standard Gremlin ``in()`` semantics.
        """
        frontier = self._frontier()
        step_edges: List[Edge] = []
        for v in frontier:
            if not self._graph.has_vertex(v):
                continue
            for e in self._graph.in_edges(v):
                if labels and e.label not in labels:
                    continue
                step_edges.append(e.inverted())
        return self._joined(PathSet.from_edges(step_edges))

    def both(self, *labels: Hashable) -> "Traversal":
        """Follow edges in either direction (union of :meth:`out` and :meth:`in_`)."""
        forward = self.out(*labels)
        backward = self.in_(*labels)
        merged = forward.paths() | backward.paths()
        return Traversal(self._graph, merged)

    def repeat(self, step: Callable[["Traversal"], "Traversal"],
               times: int) -> "Traversal":
        """Apply a step function ``times`` times: ``t.repeat(lambda s: s.out('knows'), 3)``."""
        if times < 0:
            raise ValueError("repeat count must be >= 0")
        current = self
        for _ in range(times):
            current = step(current)
        return current

    def _joined(self, step_set: PathSet) -> "Traversal":
        if self._paths is None:
            raise ValueError("traversal not started; call .start() first")
        starts = getattr(self, "_starts", None)
        if self._paths == PathSet.epsilon() and starts is not None:
            # First step: the epsilon join would admit every step edge, so
            # apply the start restriction explicitly.
            result = step_set.starting_in(starts)
        else:
            result = self._paths.join(step_set)
        return Traversal(self._graph, result)

    # ------------------------------------------------------------------
    # Filters
    # ------------------------------------------------------------------

    def filter(self, predicate: Callable[[Path], bool]) -> "Traversal":
        """Keep only paths satisfying ``predicate``."""
        return Traversal(self._graph, self.paths().filter(predicate))

    def simple(self) -> "Traversal":
        """Keep only simple paths (no repeated vertices) — cf. reference [8]."""
        return self.filter(lambda p: p.is_simple())

    def where_head(self, *vertices: Hashable) -> "Traversal":
        """Keep paths currently ending at one of ``vertices`` (right restriction)."""
        return Traversal(self._graph, self.paths().ending_in(set(vertices)))

    def where_head_has(self, key: str, value: Hashable) -> "Traversal":
        """Keep paths whose head vertex has property ``key == value``."""
        def check(p: Path) -> bool:
            head = p.head
            if not self._graph.has_vertex(head):
                return False
            return self._graph.vertex_properties(head).get(key) == value
        return self.filter(lambda p: bool(p) and check(p))

    def dedup_heads(self) -> "Traversal":
        """Keep one (arbitrary deterministic) path per distinct head vertex."""
        chosen = {}
        for p in self.paths():
            if p and p.head not in chosen:
                chosen[p.head] = p
        return Traversal(self._graph, PathSet(chosen.values()))

    # ------------------------------------------------------------------
    # Terminal steps
    # ------------------------------------------------------------------

    def paths(self) -> PathSet:
        """The current path set."""
        if self._paths is None:
            raise ValueError("traversal not started; call .start() first")
        return self._paths

    def heads(self) -> FrozenSet[Hashable]:
        """``{gamma+(a)}`` over the current paths."""
        return self.paths().heads()

    def tails(self) -> FrozenSet[Hashable]:
        """``{gamma-(a)}`` over the current paths."""
        return self.paths().tails()

    def count(self) -> int:
        """Number of paths currently held."""
        return len(self.paths())

    def head_histogram(self) -> dict:
        """``head vertex -> number of paths arriving there``.

        The path-counting semantics behind spreading-activation style
        rankings: more distinct paths into a vertex means more "energy".
        """
        histogram: dict = {}
        for p in self.paths():
            if p:
                histogram[p.head] = histogram.get(p.head, 0) + 1
        return histogram

    def __iter__(self) -> Iterator[Path]:
        return iter(self.paths())

    def __len__(self) -> int:
        return self.count()

    def __repr__(self) -> str:
        state = "unstarted" if self._paths is None else "{} paths".format(len(self._paths))
        return "Traversal<{} on {!r}>".format(state, self._graph.name or "graph")
