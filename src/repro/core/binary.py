"""The binary-relation path algebra of Russling [4] — the paper's baseline.

Section II closes by explaining why the paper does *not* model a
multi-relational graph as a family of binary relations: joining paths drawn
from different binary relations yields a bare vertex sequence, so the *path
label* — which relations were traversed — is unrecoverable.  This module
implements that older algebra faithfully so the deficiency is demonstrable
(experiment E7) rather than asserted:

* a **vertex path** is a string over ``V`` (``o : V* x V* -> V*``), not over
  ``E``;
* concatenative join glues vertex paths whose endpoints match, *merging* the
  shared vertex (Russling's composition), so an n-step path is n+1 vertices;
* there is no ``omega``: given a joined path, asking for its path label
  raises :class:`LabelLossError`.

The tests and E7 benchmark join the same data through both algebras and
check that (a) endpoint reachability agrees, and (b) only the ternary
algebra can answer label queries.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, Iterator, NoReturn, Tuple

from repro.errors import AlgebraError
from repro.graph.graph import MultiRelationalGraph

__all__ = ["VertexPath", "VertexPathSet", "LabelLossError", "binary_relations"]


class LabelLossError(AlgebraError):
    """Raised when a label projection is requested from the binary algebra.

    This is the deficiency the paper's section II describes: "if e and f are
    edges from two different binary relations, then e o f would only provide
    a sequence of vertices and as such would not specify from which
    relations the join was constructed."
    """


class VertexPath(tuple):
    """A path as a vertex string — the [4]-style representation.

    A single edge ``(i, j)`` is the vertex path ``(i, j)``; a 2-step path is
    ``(i, j, k)``.  Length (edge count) is ``len(vertices) - 1``.
    """

    __slots__ = ()

    def __new__(cls, vertices: Iterable[Hashable]) -> "VertexPath":
        path = tuple.__new__(cls, vertices)
        if len(path) < 1:
            raise ValueError("a vertex path needs at least one vertex")
        return path

    @property
    def tail(self) -> Hashable:
        """The first vertex (gamma-)."""
        return tuple.__getitem__(self, 0)

    @property
    def head(self) -> Hashable:
        """The last vertex (gamma+)."""
        return tuple.__getitem__(self, len(self) - 1)

    @property
    def length(self) -> int:
        """Edge count: one less than the number of vertices."""
        return len(self) - 1

    def compose(self, other: "VertexPath") -> "VertexPath":
        """Russling's join-composition: glue on the shared endpoint.

        Requires ``self.head == other.tail``; the shared vertex appears once
        in the result (``(i,j) o (j,k) = (i,j,k)``).
        """
        if self.head != other.tail:
            raise AlgebraError(
                "cannot compose: head {!r} != tail {!r}".format(self.head, other.tail))
        return VertexPath(tuple(self) + tuple(other)[1:])

    def label_path(self) -> NoReturn:
        """Always raises: the binary representation has discarded the labels."""
        raise LabelLossError(
            "vertex paths carry no edge labels; the binary-relation algebra "
            "cannot reconstruct which relations a join traversed")

    def __repr__(self) -> str:
        return "VertexPath({})".format(", ".join(repr(v) for v in self))


class VertexPathSet:
    """A set of vertex paths with union and concatenative join."""

    __slots__ = ("_paths",)

    def __init__(self, paths: Iterable = ()):  # noqa: D107
        normalized = []
        for p in paths:
            normalized.append(p if isinstance(p, VertexPath) else VertexPath(p))
        self._paths: FrozenSet[VertexPath] = frozenset(normalized)

    @classmethod
    def from_relation(cls, pairs: Iterable[Tuple[Hashable, Hashable]]) -> "VertexPathSet":
        """Lift a binary relation to its length-1 vertex paths."""
        return cls(VertexPath(pair) for pair in pairs)

    def union(self, other: "VertexPathSet") -> "VertexPathSet":
        """Set union."""
        return VertexPathSet(self._paths | other._paths)

    def __or__(self, other: "VertexPathSet") -> "VertexPathSet":
        return self.union(other)

    def join(self, other: "VertexPathSet") -> "VertexPathSet":
        """Concatenative join: compose all endpoint-matching pairs."""
        by_tail: dict = {}
        for p in other._paths:
            by_tail.setdefault(p.tail, []).append(p)
        out = []
        for a in self._paths:
            for b in by_tail.get(a.head, ()):
                out.append(a.compose(b))
        return VertexPathSet(out)

    def __matmul__(self, other: "VertexPathSet") -> "VertexPathSet":
        return self.join(other)

    def endpoint_pairs(self) -> FrozenSet[Tuple[Hashable, Hashable]]:
        """``{(tail, head)}`` over the set — comparable with the ternary algebra."""
        return frozenset((p.tail, p.head) for p in self._paths)

    def __len__(self) -> int:
        return len(self._paths)

    def __iter__(self) -> Iterator[VertexPath]:
        return iter(sorted(self._paths, key=repr))

    def __contains__(self, item: object) -> bool:
        p = item if isinstance(item, VertexPath) else VertexPath(item)
        return p in self._paths

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VertexPathSet):
            return NotImplemented
        return self._paths == other._paths

    def __hash__(self) -> int:
        return hash(self._paths)

    def __repr__(self) -> str:
        return "VertexPathSet<{} paths>".format(len(self._paths))


def binary_relations(graph: MultiRelationalGraph) -> dict:
    """Decompose a graph into the [4]-style family ``{label: VertexPathSet}``.

    This is the ``G-dot = (V, {E1..Em})`` representation: one binary
    relation per label, each lifted to length-1 vertex paths.  Joining
    across members of the family is where the label information dies.
    """
    return {
        label: VertexPathSet.from_relation(graph.relation(label))
        for label in graph.labels()
    }
