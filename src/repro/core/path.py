"""Paths: elements of the free monoid ``E*`` over edges.

Definition 1 of the paper: *a path ``a`` in a multi-relational graph is a
sequence, or string, where ``a in E*`` and ``E subseteq (V x Omega x V)``*.
Paths allow repeated edges, the path length ``||a||`` is the number of edges,
and any single edge is a path of length 1.

The Kleene star forms the free monoid ``E* = U_{n>=0} E^n`` whose identity is
the empty path ``epsilon`` — exposed here as the module constant
:data:`EPSILON`.  Concatenation ``o : E* x E* -> E*`` is associative,
non-commutative, and has ``epsilon`` as two-sided identity; in Python it is
spelled ``a + b`` (or :meth:`Path.concat`).

Projection operators from section II:

* ``sigma(a, n)``  — :meth:`Path.edge` (1-indexed, per the paper) or plain
  0-indexed ``a[i]`` indexing,
* ``gamma-(a)``    — :attr:`Path.tail`,
* ``gamma+(a)``    — :attr:`Path.head`,
* ``omega'(a)``    — :attr:`Path.label_path` (Definition 2),
* ``f(a)``         — :attr:`Path.is_joint` (Definition 3).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Tuple, Union

from repro.core.edge import Edge
from repro.errors import (
    DisjointConcatenationError,
    EmptyPathProjectionError,
    IndexOutOfRangeError,
)

__all__ = ["Path", "EPSILON", "sigma", "gamma_minus", "gamma_plus", "omega", "omega_prime"]


def _as_edge(item: Union[Edge, Tuple[Hashable, Hashable, Hashable]]) -> Edge:
    """Coerce a 3-tuple (or Edge) into an :class:`Edge`, validating arity."""
    if isinstance(item, Edge):
        return item
    if isinstance(item, tuple) and len(item) == 3:
        return Edge(item[0], item[1], item[2])
    raise TypeError(
        "path elements must be Edge or (tail, label, head) tuples, got {!r}".format(item))


class Path(tuple):
    """An immutable sequence of edges — one element of the free monoid ``E*``.

    ``Path`` subclasses :class:`tuple` (of :class:`Edge`), so equality,
    hashing, ordering and slicing behave like the underlying edge string.
    ``Path()`` is the empty path ``epsilon``; prefer the module constant
    :data:`EPSILON`.

    Examples
    --------
    >>> a = Path.of(("i", "alpha", "j"), ("j", "beta", "k"))
    >>> len(a)
    2
    >>> a.tail, a.head
    ('i', 'k')
    >>> a.label_path
    ('alpha', 'beta')
    >>> a.is_joint
    True
    >>> (a + EPSILON) == a == (EPSILON + a)
    True
    """

    __slots__ = ()

    def __new__(cls, edges: Iterable = ()) -> "Path":
        return tuple.__new__(cls, (_as_edge(e) for e in edges))

    def __getnewargs__(self) -> Tuple[Tuple[Edge, ...]]:
        # See Edge.__getnewargs__: required for pickling tuple subclasses
        # whose __new__ takes a different argument shape than the contents.
        return (tuple(self),)

    @classmethod
    def of(cls, *edges) -> "Path":
        """Build a path from edge arguments: ``Path.of(e1, e2, ...)``."""
        return cls(edges)

    @classmethod
    def single(cls, tail: Hashable, label: Hashable, head: Hashable) -> "Path":
        """Build the length-1 path for one edge ``(tail, label, head)``."""
        return cls((Edge(tail, label, head),))

    @classmethod
    def through(cls, vertices: Iterable[Hashable], labels: Iterable[Hashable]) -> "Path":
        """Build the joint path visiting ``vertices`` via ``labels``.

        ``len(labels)`` must be ``len(vertices) - 1``.  Convenient for tests
        and examples: ``Path.through("ijk", ["alpha", "beta"])`` is the path
        ``(i, alpha, j, j, beta, k)``.
        """
        vertex_list = list(vertices)
        label_list = list(labels)
        if len(label_list) != max(0, len(vertex_list) - 1):
            raise ValueError(
                "need exactly len(vertices) - 1 labels, got {} vertices / {} labels"
                .format(len(vertex_list), len(label_list)))
        edges = [
            Edge(vertex_list[n], label_list[n], vertex_list[n + 1])
            for n in range(len(label_list))
        ]
        return cls(edges)

    # ------------------------------------------------------------------
    # Monoid structure
    # ------------------------------------------------------------------

    def concat(self, other: "Path") -> "Path":
        """The paper's concatenation ``a o b`` — associative, identity epsilon.

        Concatenation never checks jointness: the concatenative product
        ``x_o`` explicitly concatenates potentially disjoint paths.  Use
        :meth:`joint_concat` when adjacency must hold.
        """
        if not isinstance(other, Path):
            other = Path(other)
        if not self:
            return other
        if not other:
            return self
        return Path(tuple.__add__(self, other))

    def joint_concat(self, other: "Path") -> "Path":
        """Concatenate, requiring ``gamma+(a) == gamma-(b)`` (join condition).

        Either operand being ``epsilon`` always succeeds, mirroring the
        ``a = epsilon or b = epsilon`` disjunct in the paper's definition of
        the concatenative join.

        Raises
        ------
        DisjointConcatenationError
            If both paths are non-empty and not adjacent.
        """
        if self and other and self.head != other.tail:
            raise DisjointConcatenationError(
                "cannot joint-concatenate: head {!r} != tail {!r}"
                .format(self.head, other.tail))
        return self.concat(other)

    def __add__(self, other: Union["Path", Iterable[Edge]]) -> "Path":  # type: ignore[override]
        return self.concat(other if isinstance(other, Path) else Path(other))

    def __radd__(self, other: Union["Path", Iterable[Edge]]) -> "Path":
        return Path(other).concat(self)

    def __mul__(self, times: int) -> "Path":  # type: ignore[override]
        """``a * n`` repeats the edge string n times (``a o a o ... o a``)."""
        if not isinstance(times, int):
            return NotImplemented
        if times < 0:
            raise ValueError("cannot repeat a path a negative number of times")
        return Path(tuple.__mul__(self, times))

    __rmul__ = __mul__

    # ------------------------------------------------------------------
    # Projections (section II)
    # ------------------------------------------------------------------

    def edge(self, n: int) -> Edge:
        """The paper's ``sigma(a, n)``: the nth edge, **1-indexed**.

        ``a.edge(1)`` is the first edge.  Use plain ``a[i]`` for 0-indexed
        Pythonic access.

        Raises
        ------
        IndexOutOfRangeError
            If ``n`` is not in ``1..len(a)``.
        """
        if not 1 <= n <= len(self):
            raise IndexOutOfRangeError(
                "sigma(a, {}) undefined for a path of length {}".format(n, len(self)))
        return tuple.__getitem__(self, n - 1)

    @property
    def tail(self) -> Hashable:
        """The paper's ``gamma-(a)``: the first vertex of the path.

        Raises
        ------
        EmptyPathProjectionError
            If the path is ``epsilon``.
        """
        if not self:
            raise EmptyPathProjectionError("gamma- is undefined for the empty path")
        return tuple.__getitem__(self, 0).tail

    @property
    def head(self) -> Hashable:
        """The paper's ``gamma+(a)``: the last vertex of the path.

        Raises
        ------
        EmptyPathProjectionError
            If the path is ``epsilon``.
        """
        if not self:
            raise EmptyPathProjectionError("gamma+ is undefined for the empty path")
        return tuple.__getitem__(self, len(self) - 1).head

    @property
    def label_path(self) -> Tuple[Hashable, ...]:
        """Definition 2, the path label ``omega'(a)``: the string over Omega.

        The path label of the empty path is the empty string ``()``; the path
        label of a single edge is a 1-tuple of its label.
        """
        return tuple(e.label for e in self)

    @property
    def is_joint(self) -> bool:
        """Definition 3, the jointness characteristic function ``f(a)``.

        True when every consecutive edge pair is adjacent
        (``gamma+(sigma(a, n)) == gamma-(sigma(a, n+1))``).  Per the paper a
        single edge is joint; we extend the convention to ``epsilon`` (the
        identity element joins with everything, so it is vacuously joint).
        """
        return all(
            tuple.__getitem__(self, n).head == tuple.__getitem__(self, n + 1).tail
            for n in range(len(self) - 1)
        )

    # ------------------------------------------------------------------
    # Derived inspection helpers
    # ------------------------------------------------------------------

    @property
    def is_epsilon(self) -> bool:
        """True for the empty path (the monoid identity)."""
        return len(self) == 0

    def vertices(self) -> Tuple[Hashable, ...]:
        """The vertex sequence visited by a joint path.

        For a joint path of length n this is the ``n + 1`` visited vertices
        in order.  For a disjoint path every edge contributes both endpoints
        (so discontinuities remain visible).  Empty for ``epsilon``.
        """
        if not self:
            return ()
        out = [tuple.__getitem__(self, 0).tail]
        for e in self:
            if e.tail != out[-1]:
                out.append(e.tail)
            out.append(e.head)
        return tuple(out)

    def visits(self, vertex: Hashable) -> bool:
        """True when ``vertex`` appears anywhere along the path."""
        return any(e.tail == vertex or e.head == vertex for e in self)

    def uses_label(self, label: Hashable) -> bool:
        """True when some edge of the path carries ``label``."""
        return any(e.label == label for e in self)

    def is_simple(self) -> bool:
        """True when the path repeats no vertex (a *regular simple path*).

        This is the restriction studied by Mendelzon & Wood (the paper's
        reference [8]).  ``epsilon`` is simple; a loop edge is not.
        """
        if not self:
            return True
        seen = {self.tail}
        for e in self:
            if e.head in seen:
                return False
            seen.add(e.head)
        return True

    def reversed(self) -> "Path":
        """The path traversed backwards, with every edge inverted.

        Reversal is an anti-automorphism: ``(a o b).reversed() ==
        b.reversed() o a.reversed()``.
        """
        return Path(tuple(e.inverted() for e in reversed(self)))

    def prefix(self, n: int) -> "Path":
        """The first ``n`` edges as a path."""
        return Path(tuple.__getitem__(self, slice(0, n)))

    def suffix(self, n: int) -> "Path":
        """The last ``n`` edges as a path."""
        if n == 0:
            return EPSILON
        return Path(tuple.__getitem__(self, slice(len(self) - n, len(self))))

    def __getitem__(self, index: Union[int, slice]) -> Union[Edge, "Path"]:  # type: ignore[override]
        result = tuple.__getitem__(self, index)
        if isinstance(index, slice):
            return Path(result)
        return result

    def __iter__(self) -> Iterator[Edge]:
        return tuple.__iter__(self)

    def __repr__(self) -> str:
        if not self:
            return "Path.epsilon"
        flat = ", ".join(
            "{!r}, {!r}, {!r}".format(e.tail, e.label, e.head) for e in self)
        return "Path({})".format(flat)

    def __str__(self) -> str:
        """Render like the paper: ``(i, alpha, j, j, beta, k)``; epsilon as its name."""
        if not self:
            return "epsilon"
        parts = []
        for e in self:
            parts.extend((str(e.tail), str(e.label), str(e.head)))
        return "({})".format(", ".join(parts))


#: The empty path ``epsilon`` — the identity of the free monoid ``E*``.
EPSILON = Path()


# ----------------------------------------------------------------------
# Functional spellings of the paper's operators, for readers following the
# notation directly.  All are thin wrappers over Path/Edge accessors.
# ----------------------------------------------------------------------

def sigma(a: Path, n: int) -> Edge:
    """``sigma(a, n)``: project the nth (1-indexed) edge of path ``a``."""
    return a.edge(n)


def gamma_minus(a: Union[Path, Edge]) -> Hashable:
    """``gamma-(a)``: the tail (first vertex) of a path or edge."""
    if isinstance(a, Edge):
        return a.tail
    return a.tail


def gamma_plus(a: Union[Path, Edge]) -> Hashable:
    """``gamma+(a)``: the head (last vertex) of a path or edge."""
    if isinstance(a, Edge):
        return a.head
    return a.head


def omega(e: Edge) -> Hashable:
    """``omega(e)``: the label of a single edge."""
    if isinstance(e, Path):
        if len(e) != 1:
            raise EmptyPathProjectionError(
                "omega is defined on single edges; use omega_prime for paths")
        return e[0].label
    return e.label


def omega_prime(a: Path) -> Tuple[Hashable, ...]:
    """``omega'(a)``: the path label (Definition 2) of path ``a``."""
    return a.label_path
